#!/usr/bin/env bash
# Run a command and append "<label>: <seconds>s" to step-times.txt, so the
# job's final step can publish a per-step timing summary.  Preserves the
# wrapped command's exit status.
#
#   .github/scripts/timed.sh "tier-1 tests" python -m pytest -x -q
#   .github/scripts/timed.sh "deep lint" bash -c 'python -m repro lint --deep'
set -uo pipefail
label="$1"
shift
start=$(date +%s)
"$@"
status=$?
echo "${label}: $(($(date +%s) - start))s" >> step-times.txt
exit "$status"
