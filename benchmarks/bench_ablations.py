"""Ablations of the reproduction's own design choices (DESIGN.md §process).

Three knobs the architecture takes a stance on, each measured with the
alternative switched off:

* **persist-per-step vs persist-per-quiescence** — the Figure 4 durability
  contract vs the in-workspace shortcut;
* **duplicate-suppression window** — what reaches the application when the
  reliable layer's memory is too small;
* **schema validation at the seams** — the cost of validating every
  document entering/leaving a mapping.
"""

from conftest import table

from repro.documents.normalized import make_purchase_order
from repro.messaging.envelope import Message
from repro.messaging.network import NetworkConditions, SimulatedNetwork
from repro.messaging.reliable import ReliableEndpoint, RetryPolicy
from repro.messaging.transport import Endpoint
from repro.sim import EventScheduler
from repro.transform.catalog import build_standard_registry
from repro.workflow.definitions import WorkflowBuilder
from repro.workflow.engine import WorkflowEngine


# -- ablation 1: persistence policy -------------------------------------------


def _chain_engine(policy: str) -> WorkflowEngine:
    engine = WorkflowEngine("abl", persistence=policy)
    builder = WorkflowBuilder("chain")
    previous = None
    for index in range(30):
        builder.activity(f"s{index}", "noop", after=previous)
        previous = f"s{index}"
    engine.deploy(builder.build())
    return engine


def bench_persistence_per_step(benchmark):
    engine = _chain_engine("per_step")
    benchmark(engine.run, "chain")


def bench_persistence_per_quiescence(benchmark):
    engine = _chain_engine("per_quiescence")
    benchmark(engine.run, "chain")


def bench_persistence_traffic_comparison(benchmark, report):
    def measure():
        rows = []
        for policy in ("per_step", "per_quiescence"):
            engine = _chain_engine(policy)
            engine.run("chain")
            rows.append(
                {
                    "policy": policy,
                    "db_loads": engine.database.instance_loads,
                    "db_stores": engine.database.instance_stores,
                    "durable_mid_run": policy == "per_step",
                }
            )
        return rows

    rows = benchmark(measure)
    report(table(rows, ["policy", "db_loads", "db_stores", "durable_mid_run"],
                 "Ablation: persistence policy (30-step instance)"))
    assert rows[0]["db_stores"] > 10 * rows[1]["db_stores"]


# -- ablation 2: duplicate-suppression window -----------------------------------


def _dedup_run(window: int, count: int = 10) -> dict:
    scheduler = EventScheduler()
    network = SimulatedNetwork(
        scheduler,
        NetworkConditions(duplicate_rate=1.0, min_latency=0.01, max_latency=0.5),
        seed=23,
    )
    sender = ReliableEndpoint(Endpoint("alpha", network),
                              RetryPolicy(ack_timeout=5.0, max_retries=0))
    receiver = ReliableEndpoint(Endpoint("beta", network), dedup_window=window)
    delivered: list[str] = []
    receiver.on_message(lambda m: delivered.append(m.message_id))
    sender.on_failure(lambda m, e: None)
    for index in range(count):
        sender.send_reliable(
            Message(message_id=f"M{index}", sender="alpha", receiver="beta", body="x")
        )
    scheduler.run_until_idle()
    return {
        "dedup_window": window,
        "sent": count,
        "deliveries_to_app": len(delivered),
        "duplicate_deliveries": len(delivered) - len(set(delivered)),
    }


def bench_dedup_window(benchmark, report):
    def sweep():
        return [_dedup_run(window) for window in (1, 4, 10_000)]

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    report(table(rows, ["dedup_window", "sent", "deliveries_to_app",
                        "duplicate_deliveries"],
                 "Ablation: duplicate-suppression window under 100% duplication"))
    # a starved window lets interleaved duplicates through; the sized one
    # keeps delivery exactly-once
    assert rows[0]["duplicate_deliveries"] > 0
    assert rows[-1]["duplicate_deliveries"] == 0


# -- ablation 3: schema validation at the seams -----------------------------------


def _registries():
    validated = build_standard_registry()
    unchecked = build_standard_registry()
    for mapping in unchecked.mappings():
        mapping.source_schema = None
        mapping.target_schema = None
    return validated, unchecked


PO = make_purchase_order(
    "PO-ABL", "TP1", "ACME",
    [{"sku": f"S{i}", "quantity": 1.0, "unit_price": 2.0} for i in range(20)],
)


def bench_transform_with_schema_validation(benchmark):
    validated, _ = _registries()
    benchmark(validated.transform, PO, "edi-x12")


def bench_transform_without_schema_validation(benchmark):
    _, unchecked = _registries()
    benchmark(unchecked.transform, PO, "edi-x12")


def bench_validation_catches_bad_documents(benchmark, report):
    """What validation buys: a malformed document is stopped at the seam
    instead of producing a corrupt wire message."""
    from repro.errors import ValidationError

    validated, unchecked = _registries()
    broken = PO.copy()
    # a business-level flaw the type converters cannot catch
    broken.set("lines[0].quantity", -5.0)

    def outcomes():
        caught = False
        try:
            validated.transform(broken, "edi-x12")
        except ValidationError:
            caught = True
        leaked = unchecked.transform(broken, "edi-x12")
        return {
            "with_validation": "rejected at the seam" if caught else "LEAKED",
            "without_validation": (
                f"leaked quantity {leaked.get('po1[0].quantity')!r} to the wire"
            ),
        }

    row = benchmark(outcomes)
    report(table([row], ["with_validation", "without_validation"],
                 "Ablation: schema validation at the mapping seams"))
    assert row["with_validation"] == "rejected at the seam"
