"""PR3 — compiled hot paths: interpreted vs compiled expression and mapping.

Paired benchmarks over identical inputs so pytest-benchmark's tables show
the compile win directly; every pair also asserts the two paths return
identical results, keeping the speedup claim tied to behavioural identity.
The machine-readable record of these numbers is produced by
``run_bench.py`` (see ``repro.analysis.bench``).
"""

from conftest import table

from repro.analysis.bench import BENCHMARKS, run_benchmarks
from repro.documents.normalized import make_purchase_order
from repro.transform.catalog import standard_mappings
from repro.workflow.expressions import Expression

LINES = [
    {"sku": "LAPTOP-15", "quantity": 50, "unit_price": 1200.0},
    {"sku": "DOCK-1", "quantity": 5, "unit_price": 150.0},
]

CONDITION = (
    "PO.amount >= 55000 and source == 'TP1' "
    "or PO.amount >= 40000 and source == 'TP2'"
)


def _variables():
    return {"PO": make_purchase_order("P1", "TP1", "ACME", LINES), "source": "TP1"}


def bench_expression_interpreted(benchmark):
    expression = Expression(CONDITION)
    variables = _variables()
    result = benchmark(expression.evaluate, variables)
    assert result is True


def bench_expression_compiled(benchmark):
    expression = Expression(CONDITION)
    variables = _variables()
    program = expression.compile()
    result = benchmark(program, variables)
    assert result is True
    assert result == expression.evaluate(variables)


def _po_mapping():
    return next(
        m
        for m in standard_mappings()
        if m.source_format == "normalized"
        and m.target_format == "edi-x12"
        and m.doc_type == "purchase_order"
    )


def bench_mapping_interpreted(benchmark):
    mapping = _po_mapping()
    document = make_purchase_order("P1", "TP1", "ACME", LINES)
    context = {"sender_id": "ACME", "receiver_id": "TP1", "now": 1.0}
    result = benchmark(mapping.apply, document, context)
    assert result.format_name == "edi-x12"


def bench_mapping_compiled(benchmark):
    mapping = _po_mapping()
    compiled = mapping.compile()
    document = make_purchase_order("P1", "TP1", "ACME", LINES)
    context = {"sender_id": "ACME", "receiver_id": "TP1", "now": 1.0}
    result = benchmark(compiled.apply, document, context)
    assert result.to_dict() == mapping.apply(document, context).to_dict()


def bench_driver_summary(benchmark, report):
    """One fast driver pass: the PR3 speedup table on this machine."""
    names = [name for name in BENCHMARKS if name != "fig14_roundtrip"]
    payload = benchmark.pedantic(
        run_benchmarks, args=(names,), kwargs={"min_time": 0.05}, rounds=1
    )
    rows = [
        {"benchmark": name, "ops_per_sec": entry["ops_per_sec"]}
        for name, entry in payload["benchmarks"].items()
    ] + [
        {"benchmark": metric, "ops_per_sec": f"{value}x"}
        for metric, value in payload["derived"].items()
    ]
    report(table(rows, ["benchmark", "ops_per_sec"], "PR3: compiled hot paths"))
    assert payload["derived"]["expression_compile_speedup"] >= 2.0
    assert payload["derived"]["mapping_compile_speedup"] >= 1.5
