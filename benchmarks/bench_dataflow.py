"""Schema dataflow pass: binding routes verified per second.

``repro lint --dataflow`` pushes an abstract document through every
mapping chain at deployment time (the B2B7xx family), so its cost — like
the conversation explorer's — is a modeling-loop latency.  These
benchmarks measure route-verification throughput over the example fleet
and the effectiveness of the chain-fingerprint verdict cache on a
registry-scale sweep.

Run standalone with the performance gate::

    PYTHONPATH=src python benchmarks/bench_dataflow.py --gate

The gate enforces the two dataflow floors mirrored by SPEEDUP_FLOORS in
``repro.analysis.bench``: >= 200 routes verified per second across the
example models, and >= 90% of route verdicts served from the digest
cache on a warm registry re-sweep.  It also proves the incremental
contract: editing one catalog mapping re-verifies only the routes whose
chains contain it.
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from conftest import table  # noqa: E402

from repro.analysis.scenarios import build_registry_model  # noqa: E402
from repro.transform.mapping import Const  # noqa: E402
from repro.verify.dataflow import (  # noqa: E402
    iter_binding_routes,
    verify_dataflow,
)
from repro.verify.incremental import VerificationCache  # noqa: E402
from repro.verify.registry import sweep_registry  # noqa: E402
from repro.verify.targets import lint_units  # noqa: E402

# Floors enforced by --gate (mirrored by SPEEDUP_FLOORS in
# repro.analysis.bench for the run_bench.py regression gate).
ROUTES_PER_SEC_FLOOR = 200.0
WARM_HIT_FLOOR = 0.9


def _fleet():
    """Every example lint unit that owns binding routes, with its count."""
    models = []
    for label, unit in lint_units(None).items():
        if not hasattr(unit, "transforms"):
            continue
        routes = len(list(iter_binding_routes(unit)))
        if routes:
            models.append((label, unit, routes))
    return models


def _routes_per_sec(min_time: float = 1.0) -> tuple[float, int]:
    models = _fleet()
    per_pass = sum(count for _label, _unit, count in models)
    for _label, unit, _count in models:  # warm-up: lazy imports, lattices
        verify_dataflow(unit)
    passes = 0
    start = time.perf_counter()
    elapsed = 0.0
    while elapsed < min_time or passes < 3:
        for _label, unit, _count in models:
            verify_dataflow(unit)
        passes += 1
        elapsed = time.perf_counter() - start
    return per_pass * passes / elapsed, per_pass


def bench_dataflow_fleet(benchmark, report):
    """Full dataflow verification of every example model with routes."""
    models = _fleet()

    def verify_fleet():
        for _label, unit, _count in models:
            if any(
                d.severity == "error" for d in verify_dataflow(unit)
            ):
                raise RuntimeError("example fleet is not dataflow-clean")

    benchmark(verify_fleet)
    report(table(
        [{"models": len(models),
          "routes": sum(count for _l, _u, count in models)}],
        ["models", "routes"],
        "Dataflow: abstract interpretation over the example fleet",
    ))


def bench_dataflow_registry_warm(benchmark, report):
    """Warm registry re-sweep: route verdicts from the digest cache."""
    model = build_registry_model(250)
    cache = VerificationCache()
    sweep_registry(model, deep=False, dataflow=True, cache=cache)

    def warm_sweep():
        return sweep_registry(model, deep=False, dataflow=True, cache=cache)

    result = benchmark(warm_sweep)
    assert result.route_cache_hit_rate >= WARM_HIT_FLOOR
    report(table(
        [{
            "routes": result.dataflow_routes,
            "hits": result.route_cache_hits,
            "hit_rate": f"{result.route_cache_hit_rate:.1%}",
        }],
        ["routes", "hits", "hit_rate"],
        "Dataflow: warm registry re-sweep (chain-fingerprint cache)",
    ))


def main(argv=None) -> int:
    import argparse
    import json
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--agreements", type=int, default=250,
        help="registry size for the cache sweep (default: 250)",
    )
    parser.add_argument(
        "--min-time", type=float, default=1.0,
        help="minimum seconds for the throughput measurement (default: 1.0)",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="enforce the routes/sec and warm hit-rate floors (exit 1)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write the raw measurement payload as JSON",
    )
    args = parser.parse_args(argv)

    routes_per_sec, fleet_routes = _routes_per_sec(args.min_time)

    model = build_registry_model(args.agreements)
    cache = VerificationCache()
    cold = sweep_registry(model, deep=False, dataflow=True, cache=cache)
    warm = sweep_registry(model, deep=False, dataflow=True, cache=cache)

    # Edit one catalog mapping in place: only the routes whose chains
    # contain it may re-verify; every other verdict must stay a hit.
    edited = next(iter(model.transforms.mappings()))
    edited.rules.append(Const("trailer.note", "bench-edit"))
    after_edit = sweep_registry(model, deep=False, dataflow=True, cache=cache)

    rows = [
        {"sweep": "cold", "routes": cold.dataflow_routes,
         "verified": cold.routes_verified, "hits": cold.route_cache_hits,
         "seconds": f"{cold.duration:.3f}"},
        {"sweep": "warm", "routes": warm.dataflow_routes,
         "verified": warm.routes_verified, "hits": warm.route_cache_hits,
         "seconds": f"{warm.duration:.3f}"},
        {"sweep": "1-edit", "routes": after_edit.dataflow_routes,
         "verified": after_edit.routes_verified,
         "hits": after_edit.route_cache_hits,
         "seconds": f"{after_edit.duration:.3f}"},
    ]
    print(table(
        rows, ["sweep", "routes", "verified", "hits", "seconds"],
        f"Dataflow sweep over {args.agreements} agreements",
    ))
    print(
        f"\nfleet throughput: {routes_per_sec:,.1f} routes/s "
        f"({fleet_routes} routes per pass)"
    )
    print(f"warm route hit rate: {warm.route_cache_hit_rate:.1%}")

    payload = {
        "schema": "repro-bench/1",
        "label": "DATAFLOW",
        "fleet": {"routes": fleet_routes},
        "registry": {
            "agreements": args.agreements,
            "cold_routes_verified": cold.routes_verified,
            "warm_route_cache_hits": warm.route_cache_hits,
            "after_edit_routes_verified": after_edit.routes_verified,
        },
        "derived": {
            "dataflow_routes_per_sec": round(routes_per_sec, 1),
            "dataflow_route_cache_hit_rate": round(
                warm.route_cache_hit_rate, 4
            ),
        },
    }
    if args.json:
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\nwrote {args.json}")

    if args.gate:
        problems = []
        if cold.diagnostics:
            problems.append(
                f"cold sweep reported {len(cold.diagnostics)} diagnostics"
            )
        if routes_per_sec < ROUTES_PER_SEC_FLOOR:
            problems.append(
                f"fleet throughput {routes_per_sec:.1f} routes/s is below "
                f"the {ROUTES_PER_SEC_FLOOR:.0f}/s floor"
            )
        if warm.route_cache_hit_rate < WARM_HIT_FLOOR:
            problems.append(
                f"warm route hit rate {warm.route_cache_hit_rate:.1%} is "
                f"below {WARM_HIT_FLOOR:.0%}"
            )
        if not 0 < after_edit.routes_verified < after_edit.dataflow_routes:
            problems.append(
                f"single-mapping edit re-verified "
                f"{after_edit.routes_verified} of "
                f"{after_edit.dataflow_routes} routes (expected a strict "
                "subset, at least one)"
            )
        if problems:
            print("\nDATAFLOW GATE FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(
            f"\ndataflow gate OK ({routes_per_sec:,.0f} routes/s >= "
            f"{ROUTES_PER_SEC_FLOOR:.0f}, warm "
            f"{warm.route_cache_hit_rate:.1%} hits, 1-edit re-verified "
            f"{after_edit.routes_verified}/{after_edit.dataflow_routes})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
