"""F1 — Figure 1: the PO-POA round trip between two enterprises.

Measures the full inter-organizational exchange — extract, transform,
send/receive over the network, approvals, ERP booking, acknowledgment
return — for each B2B protocol, and reports the per-protocol message and
transformation economics.
"""

from conftest import table

from repro.analysis.scenarios import build_two_enterprise_pair
from repro.core.enterprise import run_community

LINES = [
    {"sku": "LAPTOP-15", "quantity": 10, "unit_price": 1200.0},
    {"sku": "DOCK-1", "quantity": 5, "unit_price": 150.0},
]


def _run_roundtrip(protocol: str) -> dict:
    pair = build_two_enterprise_pair(protocol, seller_delay=0.5)
    counter = len(pair.buyer.b2b.conversations)
    instance_id = pair.buyer.submit_order("SAP", "ACME", f"PO-{protocol}-{counter}", LINES)
    run_community(pair.enterprises())
    assert pair.buyer.instance(instance_id).status == "completed"
    return {
        "protocol": protocol,
        "business_messages": pair.buyer.b2b.messages_sent + pair.seller.b2b.messages_sent,
        "network_messages": pair.network.stats.sent,
        "transformations": (
            pair.buyer.model.transforms.applications()
            + pair.seller.model.transforms.applications()
        ),
        "logical_latency": round(pair.scheduler.clock.now(), 3),
    }


def bench_roundtrip_edi_van(benchmark, report):
    row = benchmark(_run_roundtrip, "edi-van")
    report(table([row], ["protocol", "business_messages", "network_messages",
                         "transformations", "logical_latency"],
                 "F1: PO-POA round trip (EDI over VAN)"))


def bench_roundtrip_rosettanet(benchmark, report):
    row = benchmark(_run_roundtrip, "rosettanet")
    report(table([row], ["protocol", "business_messages", "network_messages",
                         "transformations", "logical_latency"],
                 "F1: PO-POA round trip (RosettaNet / RNIF)"))


def bench_roundtrip_oagis(benchmark, report):
    row = benchmark(_run_roundtrip, "oagis-http")
    report(table([row], ["protocol", "business_messages", "network_messages",
                         "transformations", "logical_latency"],
                 "F1: PO-POA round trip (OAGIS over plain transport)"))
