"""F2/F3 — Figures 2-3: the round trip as one (sub)structured workflow.

Builds and executes the combined inter-organizational workflow type on a
*single* engine — the structure the paper starts from before rejecting it —
and reports its construction and execution cost.
"""

from conftest import table

from repro.backend import OracleSimulator, SapSimulator
from repro.baselines.distributed_interorg import (
    build_interorg_roundtrip_types,
    make_participant_engine,
)
from repro.sim import Clock


def _types():
    return build_interorg_roundtrip_types(
        "BuyerCo", "SellerCo", "SAP", "sap-idoc", "Oracle", "oracle-oif",
        left_threshold=10000, right_thresholds={"BuyerCo": 550000},
    )


def bench_build_combined_type(benchmark, report):
    types = benchmark(_types)
    combined = types[0]
    rows = [
        {
            "workflow_type": workflow.name,
            "owner": workflow.owner,
            "steps": workflow.step_count(),
            "transitions": workflow.transition_count(),
        }
        for workflow in types
    ]
    report(table(rows, ["workflow_type", "owner", "steps", "transitions"],
                 "F2/F3: the combined workflow and its subworkflows"))
    assert combined.step_count() == 5


def _run_on_single_engine():
    clock = Clock()
    left_erp = SapSimulator("SAP")
    right_erp = OracleSimulator("Oracle")
    engine = make_participant_engine("single", left_erp, clock)
    engine.services["backends"]["Oracle"] = right_erp
    right_erp.on_document_ready(lambda *args: None)
    types = _types()
    engine.deploy_all(types)
    left_erp.enter_order(
        "PO-F2", "BuyerCo", "SellerCo",
        [{"sku": "X", "quantity": 1, "unit_price": 20000.0}],
    )
    instance_id = engine.create_instance(
        "interorg-roundtrip",
        variables={"po_number": "PO-F2", "amount": 20000.0, "source": "BuyerCo"},
    )
    engine.start(instance_id)
    engine.complete_waiting_step(f"{instance_id}/handover_to_right", {})
    engine.complete_waiting_step(f"{instance_id}/handover_back", {})
    instance = engine.get_instance(instance_id)
    assert instance.status == "completed"
    return engine


def bench_execute_combined_workflow(benchmark, report):
    engine = benchmark(_run_on_single_engine)
    report(table(
        [{
            "steps_executed": engine.steps_executed,
            "instances_completed": engine.instances_completed,
            "db_loads": engine.database.instance_loads,
            "db_stores": engine.database.instance_stores,
        }],
        ["steps_executed", "instances_completed", "db_loads", "db_stores"],
        "F2/F3: single-engine execution of the combined round trip",
    ))
