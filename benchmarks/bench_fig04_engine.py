"""F4 — Figure 4: engine + database architecture.

Measures the persist-advance-persist cycle: instance creation/finish-step
throughput and the database traffic each advance generates (the paper's
"retrieve ... advance ... store back" loop).
"""

from conftest import table

from repro.workflow.definitions import WorkflowBuilder
from repro.workflow.engine import WorkflowEngine


def _engine_with_type(step_count: int) -> WorkflowEngine:
    engine = WorkflowEngine("bench")
    builder = WorkflowBuilder(f"chain-{step_count}")
    previous = None
    for index in range(step_count):
        builder.activity(f"s{index}", "noop", after=previous)
        previous = f"s{index}"
    engine.deploy(builder.build())
    return engine


def bench_instance_lifecycle_short(benchmark):
    engine = _engine_with_type(5)
    result = benchmark(engine.run, "chain-5")
    assert result.status == "completed"


def bench_instance_lifecycle_long(benchmark):
    engine = _engine_with_type(50)
    result = benchmark(engine.run, "chain-50")
    assert result.status == "completed"


def bench_create_instance_only(benchmark):
    engine = _engine_with_type(10)
    benchmark(engine.create_instance, "chain-10")


def bench_persistence_traffic(benchmark, report):
    """One row per workflow length: database loads/stores per instance."""

    def measure():
        rows = []
        for steps in (1, 5, 20, 50):
            engine = _engine_with_type(steps)
            engine.run(f"chain-{steps}")
            rows.append(
                {
                    "steps": steps,
                    "instance_loads": engine.database.instance_loads,
                    "instance_stores": engine.database.instance_stores,
                    "loads_per_step": round(engine.database.instance_loads / steps, 2),
                }
            )
        return rows

    rows = benchmark(measure)
    report(table(rows, ["steps", "instance_loads", "instance_stores", "loads_per_step"],
                 "F4: persist-advance-persist traffic per instance"))
    # the engine persists at least once per executed step
    for row in rows:
        assert row["instance_stores"] >= row["steps"]


def bench_waiting_step_resume(benchmark):
    engine = WorkflowEngine("bench-wait")
    builder = WorkflowBuilder("waiter")
    builder.activity("wait", "wait_for_event")
    builder.activity("done", "noop", after="wait")
    engine.deploy(builder.build())

    def cycle():
        instance_id = engine.create_instance("waiter")
        engine.start(instance_id)
        engine.complete_waiting_step(f"{instance_id}/wait", {})

    benchmark(cycle)
