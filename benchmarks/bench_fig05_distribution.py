"""F5/F6 — Figures 5-6: instance migration, type migration, distribution.

Measures the Figure 6 protocol (check type / send type / move instance)
against a cold and a warm target engine, and the master/slave remote-
subworkflow alternative of Figure 5(b).
"""

from conftest import table

from repro.workflow.definitions import RemoteSubworkflowStep, WorkflowBuilder
from repro.workflow.distributed import EngineDirectory, migrate_instance
from repro.workflow.engine import WorkflowEngine


def _waiting_type():
    builder = WorkflowBuilder("mig-wf", owner="alpha")
    builder.activity("before", "noop")
    builder.activity("wait", "wait_for_event", after="before")
    builder.activity("after", "noop", after="wait")
    return builder.build()


def _started_instance(source: WorkflowEngine) -> str:
    instance_id = source.create_instance("mig-wf")
    source.start(instance_id)
    return instance_id


def bench_migration_cold_target(benchmark, report):
    """The target engine has never seen the type: Figure 6 runs fully."""

    def migrate_cold():
        source, target = WorkflowEngine("src"), WorkflowEngine("dst")
        source.deploy(_waiting_type())
        return migrate_instance(source, target, _started_instance(source))

    result = benchmark(migrate_cold)
    report(table(
        [{
            "target": "cold",
            "type_checks": result.type_checks,
            "types_sent": result.types_sent,
            "instances_sent": result.instances_sent,
            "total_exchanges": result.messages_exchanged,
        }],
        ["target", "type_checks", "types_sent", "instances_sent", "total_exchanges"],
        "F6: automatic type migration, cold target",
    ))
    assert result.types_sent == 1


def bench_migration_warm_target(benchmark, report):
    """The target already holds the type: only the instance moves."""
    workflow = _waiting_type()

    def migrate_warm():
        source, target = WorkflowEngine("src"), WorkflowEngine("dst")
        source.deploy(workflow)
        target.deploy(workflow)
        return migrate_instance(source, target, _started_instance(source))

    result = benchmark(migrate_warm)
    report(table(
        [{
            "target": "warm",
            "type_checks": result.type_checks,
            "types_sent": result.types_sent,
            "instances_sent": result.instances_sent,
            "total_exchanges": result.messages_exchanged,
        }],
        ["target", "type_checks", "types_sent", "instances_sent", "total_exchanges"],
        "F6: automatic type migration, warm target",
    ))
    assert result.types_sent == 0


def bench_remote_subworkflow(benchmark):
    """Figure 5(b): master starts a child on the slave and waits."""
    directory = EngineDirectory()
    master = directory.register(WorkflowEngine("master"))
    slave = directory.register(WorkflowEngine("slave"))
    child = WorkflowBuilder("child")
    child.variable("x", 0)
    child.activity("calc", "set_variables", inputs={"y": "x + 1"}, outputs={"y": "y"})
    slave.deploy(child.build())
    parent = WorkflowBuilder("parent")
    parent.variable("v", 1)
    parent._steps.append(
        RemoteSubworkflowStep(step_id="r", subworkflow="child", engine="slave",
                              inputs={"x": "v"}, outputs={"res": "y"})
    )
    master.deploy(parent.build())

    def run():
        instance = master.run("parent")
        assert instance.variables["res"] == 2

    benchmark(run)


def bench_local_vs_remote_subworkflow(benchmark, report):
    """Quantify the distribution overhead: local subworkflow call vs
    master/slave remote call for the identical child."""
    import time

    child = WorkflowBuilder("child")
    child.activity("calc", "noop")
    local_engine = WorkflowEngine("local")
    local_engine.deploy(child.build())
    local_parent = WorkflowBuilder("parent")
    local_parent.subworkflow("call", "child")
    local_engine.deploy(local_parent.build())

    directory = EngineDirectory()
    master = directory.register(WorkflowEngine("master"))
    slave = directory.register(WorkflowEngine("slave"))
    slave.deploy(child.build())
    remote_parent = WorkflowBuilder("parent")
    remote_parent._steps.append(
        RemoteSubworkflowStep(step_id="r", subworkflow="child", engine="slave")
    )
    master.deploy(remote_parent.build())

    def compare():
        iterations = 50
        start = time.perf_counter()
        for _ in range(iterations):
            local_engine.run("parent")
        local_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(iterations):
            master.run("parent")
        remote_elapsed = time.perf_counter() - start
        return {
            "local_us": round(local_elapsed / iterations * 1e6, 1),
            "remote_us": round(remote_elapsed / iterations * 1e6, 1),
            "overhead": round(remote_elapsed / local_elapsed, 2),
        }

    row = benchmark.pedantic(compare, rounds=3, iterations=1)
    report(table([row], ["local_us", "remote_us", "overhead"],
                 "F5: local vs remote subworkflow invocation"))
