"""F7 — Figure 7 / Section 2.3: knowledge exposure per architecture.

The decisive table behind the paper's rejection of distributed
inter-organizational workflow: how many foreign business-rule terms each
enterprise can read, per architecture.  Expected shape: migration exposes
both sides, distribution and the advanced architecture expose nothing.
"""

from conftest import table

from repro.backend import OracleSimulator, SapSimulator
from repro.baselines.distributed_interorg import (
    build_interorg_roundtrip_types,
    make_participant_engine,
    run_distributed_roundtrip,
    run_migrating_roundtrip,
)
from repro.sim import Clock


def _setup():
    clock = Clock()
    left_erp = SapSimulator("SAP")
    right_erp = OracleSimulator("Oracle")
    left = make_participant_engine("left", left_erp, clock)
    right = make_participant_engine("right", right_erp, clock)
    left_erp.enter_order(
        "PO-E1", "BuyerCo", "SellerCo",
        [{"sku": "X", "quantity": 1, "unit_price": 20000.0}],
    )
    return left, right


def _exposure_rows():
    rows = []
    left, right = _setup()
    migrated = run_migrating_roundtrip(
        left, right,
        build_interorg_roundtrip_types(
            "BuyerCo", "SellerCo", "SAP", "sap-idoc", "Oracle", "oracle-oif"
        ),
        "PO-E1", 20000.0, "BuyerCo",
    )
    rows.append(
        {
            "architecture": "migration (fig 5a)",
            "buyer_reads_seller_rules": migrated.exposure_left.get("SellerCo", 0),
            "seller_reads_buyer_rules": migrated.exposure_right.get("BuyerCo", 0),
            "inter_engine_messages": migrated.total_migration_messages,
        }
    )
    left, right = _setup()
    distributed = run_distributed_roundtrip(
        left, right,
        build_interorg_roundtrip_types(
            "BuyerCo", "SellerCo", "SAP", "sap-idoc", "Oracle", "oracle-oif",
            distributed=True, remote_engine="right-wfms",
        ),
        "PO-E1", 20000.0, "BuyerCo",
    )
    rows.append(
        {
            "architecture": "distribution (fig 5b)",
            "buyer_reads_seller_rules": distributed.exposure_left.get("SellerCo", 0),
            "seller_reads_buyer_rules": distributed.exposure_right.get("BuyerCo", 0),
            "inter_engine_messages": 2,  # start + completion of the remote child
        }
    )
    # advanced architecture: only messages cross; measured structurally —
    # each enterprise's workflow database holds only its own types.
    from repro.analysis.scenarios import build_two_enterprise_pair
    from repro.baselines.distributed_interorg import foreign_rule_exposure
    from repro.core.enterprise import run_community

    pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
    pair.buyer.submit_order(
        "SAP", "ACME", "PO-E2", [{"sku": "X", "quantity": 1, "unit_price": 20000.0}]
    )
    run_community(pair.enterprises())
    rows.append(
        {
            "architecture": "public/private (sec 4)",
            "buyer_reads_seller_rules": sum(
                foreign_rule_exposure(pair.buyer.wfms, "TP1").values()
            ),
            "seller_reads_buyer_rules": sum(
                foreign_rule_exposure(pair.seller.wfms, "ACME").values()
            ),
            "inter_engine_messages": 0,
        }
    )
    return rows


def bench_exposure_by_architecture(benchmark, report):
    rows = benchmark(_exposure_rows)
    report(table(
        rows,
        ["architecture", "buyer_reads_seller_rules", "seller_reads_buyer_rules",
         "inter_engine_messages"],
        "F7: foreign business-rule exposure per architecture",
    ))
    # the paper's claim: migration leaks both ways, the others leak nothing
    assert rows[0]["buyer_reads_seller_rules"] > 0
    assert rows[0]["seller_reads_buyer_rules"] > 0
    assert rows[1]["buyer_reads_seller_rules"] == 0
    assert rows[2]["buyer_reads_seller_rules"] == 0
    assert rows[2]["seller_reads_buyer_rules"] == 0
