"""F8 — Figure 8: the cooperative-workflow round trip.

Executes the split local workflows end to end and contrasts their model
footprint with the advanced architecture serving the same exchange.
"""

from conftest import table

from repro.backend import OracleSimulator, SapSimulator
from repro.baselines.cooperative import CooperativeCommunity
from repro.core.metrics import measure_workflow_type
from repro.messaging.network import NetworkConditions, SimulatedNetwork
from repro.sim import EventScheduler

LINES = [{"sku": "DESK", "quantity": 5, "unit_price": 50.0}]


def _community():
    scheduler = EventScheduler()
    network = SimulatedNetwork(scheduler, NetworkConditions.perfect(), seed=11)
    return CooperativeCommunity(
        network, "TP1", "ACME",
        SapSimulator("SAP", scheduler=scheduler),
        OracleSimulator("Oracle", scheduler=scheduler),
        protocol_name="edi-van",
    )


def bench_cooperative_roundtrip(benchmark):
    def run():
        community = _community()
        conversation_id = community.submit_order("PO-F8", LINES)
        community.run()
        assert community.buyer_instance(conversation_id).status == "completed"

    benchmark(run)


def bench_cooperative_model_footprint(benchmark, report):
    def measure():
        community = _community()
        rows = []
        for side, workflow in (("buyer", community.buyer_type),
                               ("seller", community.seller_type)):
            metrics = measure_workflow_type(workflow)
            rows.append(
                {
                    "workflow": f"coop-{side}",
                    "steps": metrics.workflow_steps,
                    "inline_transforms": metrics.inline_transform_steps,
                    "inline_rule_terms": metrics.inline_rule_terms
                    + metrics.condition_terms,
                }
            )
        return rows

    rows = benchmark(measure)
    report(table(rows, ["workflow", "steps", "inline_transforms", "inline_rule_terms"],
                 "F8: what the cooperative workflow types still embed"))
    # Section 3's criticism holds: transformations and rule terms live
    # inside both local workflow types.
    for row in rows:
        assert row["inline_transforms"] >= 2
        assert row["inline_rule_terms"] >= 1


def bench_cooperative_throughput_ten_orders(benchmark):
    def run():
        community = _community()
        ids = [community.submit_order(f"PO-T{i}", LINES) for i in range(10)]
        community.run()
        for conversation_id in ids:
            assert community.buyer_instance(conversation_id).status == "completed"

    benchmark(run)
