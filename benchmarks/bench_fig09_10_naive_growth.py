"""F9/F10 — Figures 9-10: naive workflow-type growth.

Regenerates the paper's two snapshots (2x2x2 and 3x3x2) plus the growth
curves over each dimension, naive vs advanced.  Expected shape: the naive
type grows with the protocol x back-end product and embeds partner terms
on every path; the advanced model grows additively.
"""

from conftest import table

from repro.analysis.complexity import (
    figure9_to_figure10_change,
    growth_rows,
    naive_metrics,
)
from repro.baselines.monolithic import NaiveTopology, build_naive_seller_type
from repro.core.metrics import measure_workflow_type


def bench_generate_figure9_type(benchmark, report):
    workflow = benchmark(build_naive_seller_type, NaiveTopology.figure9())
    metrics = measure_workflow_type(workflow)
    report(table(
        [{
            "figure": "9 (2 protocols, 2 partners, 2 back ends)",
            "steps": metrics.workflow_steps,
            "transitions": metrics.transitions,
            "inline_transforms": metrics.inline_transform_steps,
            "rule_terms": metrics.inline_rule_terms,
        }],
        ["figure", "steps", "transitions", "inline_transforms", "rule_terms"],
        "F9: the naive workflow type of Figure 9",
    ))


def bench_figure9_to_figure10(benchmark, report):
    change = benchmark(figure9_to_figure10_change)
    report(table(
        [
            {
                "model": "naive workflow type",
                "elements_before": change["naive_total_before"],
                "elements_after": change["naive_total_after"],
                "touched_by_change": change["naive_elements_touched"],
                "modified_in_place": change["naive_elements_modified"],
            },
            {
                "model": "advanced model",
                "elements_before": change["advanced_total_before"],
                "elements_after": change["advanced_total_after"],
                "touched_by_change": (
                    change["advanced_total_after"] - change["advanced_total_before"]
                ),
                "modified_in_place": 0,
            },
        ],
        ["model", "elements_before", "elements_after", "touched_by_change",
         "modified_in_place"],
        "F10: adding TP3 + OAGIS (Figure 9 -> Figure 10)",
    ))
    assert change["naive_elements_modified"] > 0


def bench_growth_sweep_all_dimensions(benchmark, report):
    def sweep():
        rows = []
        rows += growth_rows("protocols", [1, 2, 3, 4, 6])
        rows += growth_rows("partners", [2, 4, 8, 16])
        rows += growth_rows("backends", [1, 2, 4, 8])
        return rows

    rows = benchmark(sweep)
    report(table(
        rows,
        ["dimension", "value", "topology", "naive_total", "advanced_total",
         "naive_transform_steps", "advanced_mappings"],
        "Sec 4.6 / F9-F10: total authored elements, naive vs advanced",
    ))
    # shape assertions: naive overtakes advanced as dimensions grow
    final_protocols = [r for r in rows if r["dimension"] == "protocols"][-1]
    final_backends = [r for r in rows if r["dimension"] == "backends"][-1]
    assert final_protocols["naive_total"] > final_protocols["advanced_total"]
    assert final_backends["naive_total"] > final_backends["advanced_total"]


def bench_naive_generation_scales(benchmark):
    """Generator cost for a large topology (8x16x8 = 328 steps)."""
    topology = NaiveTopology.synthetic(8, 16, 8)
    workflow = benchmark(build_naive_seller_type, topology)
    assert workflow.step_count() == 2 + 3 * 8 + 3 * 8 + 2 * 8 * 8


def bench_metrics_measurement(benchmark):
    benchmark(naive_metrics, 4, 8, 4)
