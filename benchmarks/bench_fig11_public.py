"""F11 — Figure 11: public processes with connection steps.

Measures public-process instantiation and sequencing-guard throughput, and
reports each protocol's public-process shape.
"""

from conftest import table

from repro.b2b.protocol import standard_protocols
from repro.core.public_process import PublicProcessInstance, seller_request_reply


def bench_public_process_shapes(benchmark, report):
    def shapes():
        rows = []
        for protocol in standard_protocols().values():
            for role in ("buyer", "seller"):
                definition = protocol.public_process(role)
                rows.append(
                    {
                        "public_process": definition.name,
                        "steps": definition.step_count(),
                        "connection_steps": definition.connection_step_count(),
                        "initiating": definition.initiating(),
                    }
                )
        return rows

    rows = benchmark(shapes)
    report(table(rows, ["public_process", "steps", "connection_steps", "initiating"],
                 "F11: public processes per protocol and role"))
    assert all(row["connection_steps"] == 2 for row in rows)


def bench_sequencing_guard(benchmark):
    """The expect/complete cycle that enforces message ordering."""
    definition = seller_request_reply("bench/seller", "bench", "fmt")

    def run_instance():
        instance = PublicProcessInstance(definition, "C1", "TP1")
        instance.expect("receive", "purchase_order")
        instance.complete_current()
        instance.expect("to_binding")
        instance.complete_current()
        instance.expect("from_binding")
        instance.complete_current()
        instance.expect("send", "po_ack")
        instance.complete_current()
        assert instance.completed

    benchmark(run_instance)


def bench_out_of_order_detection(benchmark):
    """Rejecting a mis-sequenced message must be cheap (it happens on the
    hot inbound path)."""
    from repro.errors import ProtocolError

    definition = seller_request_reply("bench/seller", "bench", "fmt")

    def detect():
        instance = PublicProcessInstance(definition, "C1", "TP1")
        try:
            instance.expect("send", "po_ack")
        except ProtocolError:
            return True
        return False

    assert benchmark(detect)
