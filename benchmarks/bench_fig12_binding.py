"""F12 — Figure 12: bindings with transformations.

Measures the inbound (wire -> normalized) and outbound (normalized ->
wire) binding chains per protocol, the application-binding equivalents,
and the normalized-hub economics (2n mappings instead of n(n-1)).
"""

import pytest
from conftest import table

from repro.core.binding import make_application_binding, make_protocol_binding
from repro.documents.normalized import make_purchase_order
from repro.transform.catalog import build_standard_registry

REGISTRY = build_standard_registry()
PO = make_purchase_order(
    "PO-F12", "TP1", "ACME",
    [{"sku": f"SKU-{i}", "quantity": 2.0, "unit_price": 10.0} for i in range(1, 11)],
)

WIRE_FORMATS = {
    "edi-van": "edi-x12",
    "rosettanet": "rosettanet-xml",
    "oagis-http": "oagis-bod",
}


@pytest.mark.parametrize("protocol", sorted(WIRE_FORMATS))
def bench_protocol_binding_inbound(benchmark, protocol):
    wire_format = WIRE_FORMATS[protocol]
    binding = make_protocol_binding(f"{protocol}-b", "pub", "priv", wire_format)
    wire_doc = REGISTRY.transform(PO, wire_format)
    result = benchmark(binding.apply_inbound, wire_doc, REGISTRY)
    assert result.format_name == "normalized"


@pytest.mark.parametrize("protocol", sorted(WIRE_FORMATS))
def bench_protocol_binding_outbound(benchmark, protocol):
    wire_format = WIRE_FORMATS[protocol]
    binding = make_protocol_binding(f"{protocol}-b", "pub", "priv", wire_format)
    result = benchmark(binding.apply_outbound, PO, REGISTRY)
    assert result.format_name == wire_format


@pytest.mark.parametrize("application,native", [("SAP", "sap-idoc"), ("Oracle", "oracle-oif")])
def bench_application_binding_store_path(benchmark, application, native):
    binding = make_application_binding(f"{application}-b", application, "priv", native)
    result = benchmark(binding.apply_outbound, PO, REGISTRY)
    assert result.format_name == native


def bench_mapping_economics(benchmark, report):
    """The normalized hub: mapping count vs hypothetical pairwise catalog."""

    def economics():
        formats = sorted(REGISTRY.formats() - {"normalized"})
        count = len(formats)
        # like-for-like: the PO/POA exchange only (every format carries it)
        hub = sum(
            1 for mapping in REGISTRY.mappings()
            if mapping.doc_type in ("purchase_order", "po_ack")
        )
        return {
            "formats": count,
            "hub_mappings": hub,
            "pairwise_mappings": count * (count - 1) * 2,  # x2 doc kinds
        }

    row = benchmark(economics)
    report(table([row], ["formats", "hub_mappings", "pairwise_mappings"],
                 "F12: hub vs pairwise mapping catalog size"))
    assert row["hub_mappings"] < row["pairwise_mappings"]
