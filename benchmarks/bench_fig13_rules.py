"""F13 — Figure 13 / Section 4.3: the external business-rule engine.

Measures rule evaluation throughput for the paper's exact
``check_need_for_approval`` listing, the error case, and rule-set scaling
with partner population.
"""

from conftest import table

from repro.core.rules import RuleEngine, approval_rule_set
from repro.documents.normalized import make_purchase_order
from repro.errors import NoApplicableRuleError

PO = make_purchase_order(
    "PO-F13", "TP1", "ACME", [{"sku": "X", "quantity": 1, "unit_price": 60000.0}]
)


def _paper_rules() -> RuleEngine:
    engine = RuleEngine()
    engine.register(
        approval_rule_set(
            {
                ("SAP", "TP1"): 55000,
                ("SAP", "TP2"): 40000,
                ("Oracle", "TP1"): 55000,
                ("Oracle", "TP2"): 40000,
            }
        )
    )
    return engine


def bench_paper_listing_evaluation(benchmark, report):
    engine = _paper_rules()
    result = benchmark(
        engine.evaluate, "check_need_for_approval", "TP1", "SAP", PO
    )
    assert result is True
    rows = [
        {"source": s, "target": t,
         "result": engine.evaluate("check_need_for_approval", s, t, PO)}
        for s in ("TP1", "TP2") for t in ("SAP", "Oracle")
    ]
    report(table(rows, ["source", "target", "result"],
                 "F13: check_need_for_approval(source, target, PO[60000])"))


def bench_error_case(benchmark):
    """The 'if none of the business rules apply' branch."""
    engine = _paper_rules()

    def evaluate_unknown():
        try:
            engine.evaluate("check_need_for_approval", "TP99", "SAP", PO)
        except NoApplicableRuleError:
            return True
        return False

    assert benchmark(evaluate_unknown)


def bench_rule_set_scaling(benchmark, report):
    """First-match lookup cost as the partner population grows."""

    def measure():
        import time

        rows = []
        for partner_count in (4, 40, 400):
            thresholds = {
                ("SAP", f"TP{i}"): 10000.0 * (i + 1) for i in range(partner_count)
            }
            engine = RuleEngine()
            engine.register(approval_rule_set(thresholds))
            last_partner = f"TP{partner_count - 1}"  # worst case: last rule
            iterations = 200
            start = time.perf_counter()
            for _ in range(iterations):
                engine.evaluate("check_need_for_approval", last_partner, "SAP", PO)
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "rules": partner_count,
                    "worst_case_us": round(elapsed / iterations * 1e6, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=3, iterations=1)
    report(table(rows, ["rules", "worst_case_us"],
                 "F13: worst-case rule lookup vs rule-set size"))
