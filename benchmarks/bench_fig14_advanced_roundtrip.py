"""F14 — Figure 14: the full advanced integration, end to end.

The complete runtime: public process -> binding -> private process ->
application binding -> ERP and back, with the private process untouched by
which protocol or back end serves the exchange.
"""

from conftest import table

from repro.analysis.scenarios import build_fig15_community, build_two_enterprise_pair
from repro.core.enterprise import run_community

LINES = [
    {"sku": "LAPTOP-15", "quantity": 10, "unit_price": 1200.0},
    {"sku": "DOCK-1", "quantity": 5, "unit_price": 150.0},
]


def bench_advanced_roundtrip(benchmark):
    def run():
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.5)
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-F14", LINES)
        run_community(pair.enterprises())
        assert pair.buyer.instance(instance_id).status == "completed"

    benchmark(run)


def bench_two_protocols_one_private_process(benchmark, report):
    """EDI and RosettaNet traffic through the identical private process."""

    def run():
        community = build_fig15_community(
            seller_delay=0.0,
            partners={
                "TP1": ("edi-van", 55000, "SAP"),
                "TP2": ("rosettanet", 40000, "Oracle"),
            },
        )
        community.buyers["TP1"].submit_order("SAP", "ACME", "PO-A", LINES)
        community.buyers["TP2"].submit_order("SAP", "ACME", "PO-B", LINES)
        run_community(community.enterprises())
        instances = community.seller.wfms.database.list_instances()
        return {
            "seller_instances": len(instances),
            "private_types_used": len({i.type_name for i in instances}),
            "sap_orders": community.seller.backends["SAP"].order_count(),
            "oracle_orders": community.seller.backends["Oracle"].order_count(),
        }

    row = benchmark(run)
    report(table(
        [row],
        ["seller_instances", "private_types_used", "sap_orders", "oracle_orders"],
        "F14: one private process serving two protocols and two back ends",
    ))
    assert row["private_types_used"] == 1


def bench_throughput_20_orders(benchmark, report):
    def run():
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.1)
        ids = [
            pair.buyer.submit_order("SAP", "ACME", f"PO-T{i}", LINES)
            for i in range(20)
        ]
        run_community(pair.enterprises(), max_rounds=500)
        completed = sum(
            1 for instance_id in ids
            if pair.buyer.instance(instance_id).status == "completed"
        )
        return {
            "orders": 20,
            "completed": completed,
            "network_messages": pair.network.stats.sent,
            "transformations": (
                pair.buyer.model.transforms.applications()
                + pair.seller.model.transforms.applications()
            ),
        }

    row = benchmark.pedantic(run, rounds=3, iterations=1)
    report(table([row], ["orders", "completed", "network_messages", "transformations"],
                 "F14: 20-order batch through the advanced runtime"))
    assert row["completed"] == 20
