"""F15 — Figure 15: adding a third partner with a new protocol.

The paper: "the private workflow is not affected at all by an additional
trading partner using another, not yet implemented protocol".  This bench
runs the three-partner community AND verifies the zero-diff claim on the
private process.
"""

import json

from conftest import table

from repro.analysis.change_impact import build_fig14_model
from repro.analysis.scenarios import build_fig15_community
from repro.b2b.protocol import get_protocol
from repro.core.enterprise import run_community
from repro.core.rules import BusinessRule
from repro.partners.agreement import TradingPartnerAgreement
from repro.partners.profile import TradingPartner

LINES = [{"sku": "X", "quantity": 2, "unit_price": 900.0}]


def bench_three_partner_community(benchmark, report):
    def run():
        community = build_fig15_community(seller_delay=0.2)
        for partner_id in community.buyers:
            community.buyers[partner_id].submit_order(
                "SAP", "ACME", f"PO-{partner_id}", LINES
            )
        run_community(community.enterprises())
        rows = []
        for partner_id, (protocol, _, application) in sorted(
            {
                "TP1": ("edi-van", 0, "SAP"),
                "TP2": ("rosettanet", 0, "Oracle"),
                "TP3": ("oagis-http", 0, "SAP"),
            }.items()
        ):
            rows.append(
                {
                    "partner": partner_id,
                    "protocol": protocol,
                    "routed_to": application,
                    "order_booked": community.seller.backends[application].has_order(
                        f"PO-{partner_id}"
                    ),
                    "ack_stored": f"PO-{partner_id}"
                    in community.buyers[partner_id].backends["SAP"].stored_acks,
                }
            )
        return rows

    rows = benchmark(run)
    report(table(rows, ["partner", "protocol", "routed_to", "order_booked", "ack_stored"],
                 "F15: three partners, three protocols, one private process"))
    assert all(row["order_booked"] and row["ack_stored"] for row in rows)


def bench_add_partner_zero_private_diff(benchmark, report):
    """The headline structural claim, measured as a model diff."""

    def measure():
        model = build_fig14_model()
        private_before = json.dumps(
            model.private_processes["private-po-seller"].to_dict(), sort_keys=True
        )
        index_before = model.element_index()
        # Figure 15's change: TP3 arrives speaking OAGIS.
        model.add_protocol(get_protocol("oagis-http"), "private-po-seller")
        model.partners.add_partner(TradingPartner("TP3", protocols=("oagis-http",)))
        model.partners.add_agreement(TradingPartnerAgreement("TP3", "oagis-http", "seller"))
        approval = model.rules.get("check_need_for_approval")
        approval.add(BusinessRule("TP3 via SAP", source="TP3", target="SAP",
                                  expression="document.amount >= 10000"))
        approval.add(BusinessRule("TP3 via Oracle", source="TP3", target="Oracle",
                                  expression="document.amount >= 10000"))
        routing = model.rules.get("select_target_application")
        routing.add(BusinessRule("route TP3", source="TP3", expression="'SAP'"))
        private_after = json.dumps(
            model.private_processes["private-po-seller"].to_dict(), sort_keys=True
        )
        index_after = model.element_index()
        from repro.core.change import diff_indexes

        change = diff_indexes(index_before, index_after)
        return {
            "private_process_changed": private_before != private_after,
            "elements_added": len(change.added),
            "elements_modified": len(change.modified),
            "locality": change.locality(),
        }

    row = benchmark(measure)
    report(table(
        [row],
        ["private_process_changed", "elements_added", "elements_modified", "locality"],
        "F15: adding TP3 + OAGIS to the advanced model",
    ))
    assert row["private_process_changed"] is False
    assert row["elements_modified"] == 0
