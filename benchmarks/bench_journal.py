"""Durability benchmarks: journal write overhead and recovery throughput.

The write-ahead journal must stay off the hub's hot path, and recovery
must replay fast enough that a hub restart is an operational non-event.
These benchmarks measure both on the same deterministic workloads the
crash harness uses (see :mod:`repro.analysis.journal_bench` for the
noise-control methodology: interleaved bare/journaled pairs, modeled
commit-wait budget, min-of-deltas estimator).

Run standalone with the performance gate::

    PYTHONPATH=src python benchmarks/bench_journal.py --gate

The gate enforces the two durability floors: journal write overhead on
the calibrated sharded-hub path <= 15%, and recovery throughput >= 50k
events replayed per second.  ``--json PATH`` additionally writes the raw
measurement payload (the same sub-dict ``repro bench --journal`` embeds
in the BENCH envelope).
"""

import os
import shutil
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from conftest import table  # noqa: E402

from repro.analysis.journal_bench import (  # noqa: E402
    OVERHEAD_CEILING,
    RECOVERY_FLOOR,
    build_recovery_journal,
    run_journal_benchmark,
)
from repro.runtime.recovery import recover  # noqa: E402


def bench_journal_write_overhead(benchmark, report):
    """Journaled vs bare hub run on a small slice of the gated workload."""
    from repro.analysis.journal_bench import _hub_elapsed

    workdir = Path(tempfile.mkdtemp(prefix="bench-journal-"))
    runs = {"index": 0}

    def journaled_run():
        runs["index"] += 1
        return _hub_elapsed(5_000, 4, 64, workdir / f"run-{runs['index']}")

    try:
        benchmark(journaled_run)
        bare = _hub_elapsed(5_000, 4, 64, None)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    report(table(
        [{"messages": 5_000, "bare_sec": f"{bare:.4f}"}],
        ["messages", "bare_sec"],
        "Journal: bare reference run (compare against timing table above)",
    ))


def bench_recovery_replay(benchmark, report):
    """Full recover() — scan, checksum, decode, fold — over a 20k journal."""
    workdir = Path(tempfile.mkdtemp(prefix="bench-recovery-"))
    journal_dir = workdir / "journal"
    events = build_recovery_journal(journal_dir, 20_000)

    try:
        recovered = benchmark(lambda: recover(journal_dir))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    report(table(
        [{
            "events": events,
            "records": len(recovered.records),
            "replayed": recovered.replayed,
        }],
        ["events", "records", "replayed"],
        "Recovery: records replayed per invocation",
    ))


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--messages", type=int, default=20_000,
        help="hub messages per overhead run (default: 20000)",
    )
    parser.add_argument(
        "--recovery-events", type=int, default=50_000,
        help="journal size for the recovery measurement (default: 50000)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write the raw measurement payload as JSON",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="enforce the write-overhead ceiling and recovery floor",
    )
    args = parser.parse_args(argv)

    payload = run_journal_benchmark(
        messages=args.messages, recovery_events=args.recovery_events
    )
    write = payload["write"]
    recovery = payload["recovery"]

    print(table(
        [{
            "messages": write["messages"],
            "records": write["records_journaled"],
            "overhead": f"{100 * write['journal_write_overhead']:.2f}%",
            "cpu_overhead": f"{100 * write['journal_write_overhead_cpu']:.1f}%",
            "us_per_event": write["journal_cost_per_event_us"],
            "bytes": write["journal_bytes"],
        }],
        ["messages", "records", "overhead", "cpu_overhead",
         "us_per_event", "bytes"],
        "Journal write overhead (sharded-hub path)",
    ))
    print()
    print(table(
        [{
            "events": recovery["events"],
            "replayed": recovery["records_replayed"],
            "events_per_sec": f"{recovery['recovery_events_per_sec']:,.0f}",
            "ms_per_1k": recovery["recovery_time_per_1k_events_ms"],
        }],
        ["events", "replayed", "events_per_sec", "ms_per_1k"],
        "Recovery throughput (snapshot + journal-tail replay)",
    ))

    if args.json:
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\nwrote {args.json}")

    if args.gate:
        problems = []
        overhead = payload["journal_write_overhead"]
        if overhead > OVERHEAD_CEILING:
            problems.append(
                f"journal write overhead {100 * overhead:.2f}% is above the "
                f"{100 * OVERHEAD_CEILING:.0f}% ceiling"
            )
        rate = payload["recovery_events_per_sec"]
        if rate < RECOVERY_FLOOR:
            problems.append(
                f"recovery throughput {rate:,.0f} events/s is below the "
                f"{RECOVERY_FLOOR:,.0f} floor"
            )
        if problems:
            print("\nJOURNAL GATE FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(
            f"\njournal gate OK (overhead <= {100 * OVERHEAD_CEILING:.0f}%, "
            f"recovery >= {RECOVERY_FLOOR:,.0f} events/s)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
