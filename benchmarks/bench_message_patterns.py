"""E-PAT — Section 1's generality claim: message exchange patterns.

"The introduced concepts are by no means restricted to request/reply
patterns at all and support the general case of all possible patterns like
one-way messages ... or multi-step message exchanges."  This bench runs
three patterns over the identical public/binding/private machinery and
reports their wire economics side by side.
"""

from conftest import table

from repro.analysis.scenarios import (
    build_order_to_cash_pair,
    build_sourcing_community,
    build_two_enterprise_pair,
)
from repro.core.enterprise import run_community

LINES = [{"sku": "GPU", "quantity": 4, "unit_price": 1500.0}]


def _request_reply() -> dict:
    pair = build_two_enterprise_pair("rosettanet", seller_delay=0.2)
    pair.buyer.submit_order("SAP", "ACME", "PO-P1", LINES)
    run_community(pair.enterprises())
    conversation = next(iter(pair.buyer.b2b.conversations.values()))
    return {
        "pattern": "request/reply (PIP 3A4)",
        "initiator": "buyer",
        "business_docs": len(conversation.documents),
        "trace": " -> ".join(conversation.documents),
    }


def _acknowledged_request_reply() -> dict:
    pair = build_two_enterprise_pair("rosettanet-ra", seller_delay=0.2)
    pair.buyer.submit_order("SAP", "ACME", "PO-P2", LINES)
    run_community(pair.enterprises())
    conversation = next(iter(pair.buyer.b2b.conversations.values()))
    return {
        "pattern": "acknowledged request/reply",
        "initiator": "buyer",
        "business_docs": len(conversation.documents),
        "trace": " -> ".join(conversation.documents),
    }


def _one_way_multi_step() -> dict:
    pair = build_order_to_cash_pair(seller_delay=0.2)
    pair.buyer.submit_order("SAP", "ACME", "PO-P3", LINES)
    run_community(pair.enterprises())
    pair.seller.submit_shipment("Oracle", "TP1", "PO-P3")
    run_community(pair.enterprises())
    conversation = next(
        c for c in pair.seller.b2b.conversations.values()
        if c.protocol == "oagis-fulfillment"
    )
    return {
        "pattern": "one-way multi-step (fulfillment)",
        "initiator": "seller",
        "business_docs": len(conversation.documents),
        "trace": " -> ".join(conversation.documents),
    }


def _broadcast() -> dict:
    community = build_sourcing_community(
        {
            "ACME": {"GPU": 1500.0},
            "GLOBEX": {"GPU": 1450.0},
            "INITECH": {"GPU": 1480.0},
        }
    )
    instance_id = community.buyer.submit_rfq(
        ["ACME", "GLOBEX", "INITECH"], "RFQ-B", [{"sku": "GPU", "quantity": 10}]
    )
    run_community(community.enterprises())
    instance = community.buyer.instance(instance_id)
    assert instance.status == "completed"
    return {
        "pattern": "broadcast RFQ (1 -> 3 sellers)",
        "initiator": "buyer",
        "business_docs": 3 + len(instance.variables["quotes"]),
        "trace": f"3x sent:request_for_quote -> {len(instance.variables['quotes'])}x received:quote",
    }


def bench_pattern_request_reply(benchmark):
    row = benchmark(_request_reply)
    assert row["business_docs"] == 2


def bench_pattern_acknowledged(benchmark):
    row = benchmark(_acknowledged_request_reply)
    assert row["business_docs"] == 4


def bench_pattern_one_way_multistep(benchmark):
    row = benchmark(_one_way_multi_step)
    assert row["business_docs"] == 2


def bench_pattern_broadcast(benchmark):
    row = benchmark(_broadcast)
    assert row["business_docs"] == 6


def bench_pattern_summary(benchmark, report):
    def all_patterns():
        return [
            _request_reply(),
            _acknowledged_request_reply(),
            _one_way_multi_step(),
            _broadcast(),
        ]

    rows = benchmark.pedantic(all_patterns, rounds=3, iterations=1)
    report(table(rows, ["pattern", "initiator", "business_docs", "trace"],
                 "E-PAT: exchange patterns on one architecture (Section 1)"))
    assert {row["initiator"] for row in rows} == {"buyer", "seller"}
