"""E-MSG — Section 1 / 5.1: reliable-messaging economics under loss.

Sweeps the network loss rate and reports the RNIF-style layer's overhead:
total network messages (business + retries + acks) per successfully
delivered business message, plus delivery latency.  Expected shape: the
overhead curve rises smoothly with loss while delivery stays exactly-once
until retries are exhausted.
"""

from conftest import table

from repro.messaging.envelope import Message
from repro.messaging.network import NetworkConditions, SimulatedNetwork
from repro.messaging.reliable import ReliableEndpoint, RetryPolicy
from repro.messaging.transport import Endpoint
from repro.sim import EventScheduler


def _run_batch(loss_rate: float, duplicate_rate: float = 0.0,
               count: int = 50, seed: int = 17) -> dict:
    scheduler = EventScheduler()
    network = SimulatedNetwork(
        scheduler,
        NetworkConditions(loss_rate=loss_rate, duplicate_rate=duplicate_rate,
                          min_latency=0.01, max_latency=0.1),
        seed=seed,
    )
    sender = ReliableEndpoint(
        Endpoint("alpha", network), RetryPolicy(ack_timeout=0.5, max_retries=10)
    )
    receiver = ReliableEndpoint(
        Endpoint("beta", network), RetryPolicy(ack_timeout=0.5, max_retries=10)
    )
    delivered = []
    receiver.on_message(lambda m: delivered.append(m.message_id))
    sender.on_failure(lambda m, e: None)
    for index in range(count):
        sender.send_reliable(
            Message(message_id=f"M{index}", sender="alpha", receiver="beta",
                    body="x" * 200)
        )
    scheduler.run_until_idle()
    assert len(delivered) == len(set(delivered))  # exactly-once always
    return {
        "loss": loss_rate,
        "dup": duplicate_rate,
        "sent": count,
        "delivered": len(delivered),
        "retries": sender.stats.retries,
        "network_msgs": network.stats.sent,
        "overhead": round(network.stats.sent / max(1, len(delivered)), 2),
        "latency": round(scheduler.clock.now(), 2),
    }


def bench_loss_sweep(benchmark, report):
    def sweep():
        return [
            _run_batch(loss)
            for loss in (0.0, 0.1, 0.2, 0.3, 0.5)
        ]

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    report(table(rows, ["loss", "sent", "delivered", "retries", "network_msgs",
                        "overhead", "latency"],
                 "E-MSG: RNIF-style overhead vs loss rate"))
    # shape: overhead grows monotonically-ish with loss; all delivered
    assert rows[0]["overhead"] == 2.0  # message + ack, nothing else
    assert rows[-1]["overhead"] > rows[0]["overhead"]
    assert all(row["delivered"] == row["sent"] for row in rows)


def bench_duplication_sweep(benchmark, report):
    def sweep():
        return [_run_batch(0.1, dup) for dup in (0.0, 0.2, 0.5)]

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    report(table(rows, ["loss", "dup", "delivered", "retries", "network_msgs",
                        "overhead"],
                 "E-MSG: duplicate suppression under network duplication"))
    assert all(row["delivered"] == row["sent"] for row in rows)


def bench_perfect_network_baseline(benchmark):
    benchmark.pedantic(lambda: _run_batch(0.0), rounds=5, iterations=1)
