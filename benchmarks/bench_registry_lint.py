"""Registry-scale lint: sweep a generated 1k-agreement partner registry.

The paper's deployment claim (§4.5–4.6) is that per-partner verification
stays tractable as the registry grows, because explorations are shared
per protocol and verdicts are digest-cached per agreement.  This bench
measures exactly that on :func:`repro.analysis.scenarios.build_registry_model`:

* cold deep sweep of N agreements must finish within the time budget;
* a warm re-sweep with the same cache must serve >= 90% of agreements
  as digest hits;
* after editing a single agreement, the re-sweep must re-verify only
  that agreement (everything else stays a hit).

Run standalone (this is the CI ``lint-incremental`` gate)::

    PYTHONPATH=src python benchmarks/bench_registry_lint.py \
        --agreements 1000 --budget 5.0
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from conftest import table  # noqa: E402

from repro.analysis.scenarios import build_registry_model  # noqa: E402
from repro.verify.incremental import VerificationCache  # noqa: E402
from repro.verify.registry import sweep_registry  # noqa: E402

WARM_HIT_FLOOR = 0.9


def bench_registry_sweep_cold(benchmark, report):
    """Cold deep sweep (fresh cache every round) over 300 agreements."""
    model = build_registry_model(300)

    def cold_sweep():
        return sweep_registry(model, deep=True)

    result = benchmark(cold_sweep)
    assert not result.diagnostics
    assert result.verified == result.agreements == 300
    report(table(
        [{
            "agreements": result.agreements,
            "explorations": result.explorations,
            "states": result.states_explored,
            "pruned": result.states_pruned,
        }],
        ["agreements", "explorations", "states", "pruned"],
        "Registry lint: cold deep sweep (shared per-protocol explorations)",
    ))


def bench_registry_sweep_warm(benchmark, report):
    """Warm re-sweep: every agreement digest-matched from the cache."""
    model = build_registry_model(300)
    cache = VerificationCache()
    sweep_registry(model, deep=True, cache=cache)

    def warm_sweep():
        return sweep_registry(model, deep=True, cache=cache)

    result = benchmark(warm_sweep)
    assert result.cache_hit_rate >= WARM_HIT_FLOOR
    assert result.explorations == 0
    report(table(
        [{
            "agreements": result.agreements,
            "cache_hits": result.cache_hits,
            "hit_rate": f"{result.cache_hit_rate:.1%}",
        }],
        ["agreements", "cache_hits", "hit_rate"],
        "Registry lint: warm re-sweep (digest cache)",
    ))


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--agreements", type=int, default=1000,
        help="registry size to generate (default: 1000)",
    )
    parser.add_argument(
        "--budget", type=float, default=5.0,
        help="cold-sweep wall-clock budget in seconds (default: 5.0)",
    )
    args = parser.parse_args(argv)

    model = build_registry_model(args.agreements)
    cache = VerificationCache()

    cold = sweep_registry(model, deep=True, cache=cache)
    warm = sweep_registry(model, deep=True, cache=cache)

    # Edit exactly one agreement in place; only its verdict may go stale.
    model.partners.agreements()[0].properties["priority"] = "gold"
    after_edit = sweep_registry(model, deep=True, cache=cache)

    rows = [
        {"sweep": "cold", "verified": cold.verified, "hits": cold.cache_hits,
         "explorations": cold.explorations, "seconds": f"{cold.duration:.3f}"},
        {"sweep": "warm", "verified": warm.verified, "hits": warm.cache_hits,
         "explorations": warm.explorations, "seconds": f"{warm.duration:.3f}"},
        {"sweep": "1-edit", "verified": after_edit.verified,
         "hits": after_edit.cache_hits, "explorations": after_edit.explorations,
         "seconds": f"{after_edit.duration:.3f}"},
    ]
    print(table(
        rows, ["sweep", "verified", "hits", "explorations", "seconds"],
        f"Registry lint over {args.agreements} agreements",
    ))

    problems = []
    if cold.diagnostics:
        problems.append(f"cold sweep reported {len(cold.diagnostics)} diagnostics")
    if cold.duration > args.budget:
        problems.append(
            f"cold sweep took {cold.duration:.3f}s "
            f"(budget {args.budget:.1f}s)"
        )
    if warm.cache_hit_rate < WARM_HIT_FLOOR:
        problems.append(
            f"warm hit rate {warm.cache_hit_rate:.1%} is below "
            f"{WARM_HIT_FLOOR:.0%}"
        )
    if after_edit.verified != 1:
        problems.append(
            f"single-agreement edit re-verified {after_edit.verified} "
            "agreements (expected exactly 1)"
        )
    if problems:
        print("\nREGISTRY LINT GATE FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(
        f"\nregistry lint gate OK (cold {cold.duration:.3f}s <= "
        f"{args.budget:.1f}s, warm {warm.cache_hit_rate:.1%} hits, "
        "1-edit re-verified exactly 1)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
