"""E-CM — Section 4.5: the change-management comparison table.

Applies the nine-scenario change catalogue to both architectures and
prints the paper's locality classification with measured impact counts.
"""

from conftest import table

from repro.analysis.change_impact import change_table


def bench_change_catalogue(benchmark, report):
    rows = benchmark(change_table)
    printable = [
        {
            "scenario": row["scenario"],
            "advanced_impact": row["advanced_impact"],
            "advanced_modified": row["advanced_modified"],
            "advanced_locality": row["advanced_locality"],
            "naive_impact": row["naive_impact"],
            "naive_modified": row["naive_modified"],
        }
        for row in rows
    ]
    report(table(
        printable,
        ["scenario", "advanced_impact", "advanced_modified", "advanced_locality",
         "naive_impact", "naive_modified"],
        "Sec 4.5: change impact, advanced vs naive",
    ))
    by_name = {row["scenario"]: row for row in rows}
    # the paper's classifications hold
    assert by_name["add_audit_step"]["advanced_locality"] == "local"
    assert by_name["model_transport_acks"]["advanced_locality"] == "local"
    assert by_name["add_document_field"]["advanced_locality"] == "non-local"
    # and partner/backend/protocol additions modify nothing pre-existing
    for scenario in ("add_partner_same_protocol", "add_partner_new_protocol",
                     "add_backend", "add_private_process"):
        assert by_name[scenario]["advanced_modified"] == 0, scenario
        assert by_name[scenario]["naive_impact"] >= by_name[scenario]["advanced_impact"] \
            or scenario == "add_partner_same_protocol"
