"""E-SC — Section 4.6: scalability of on-boarding operations.

Measures what each on-boarding operation *adds and modifies* in the
advanced model, and how long the model surgery takes — the operational
counterpart of the growth curves.
"""

from conftest import table

from repro.analysis.change_impact import (
    CHANGE_SCENARIOS,
    build_fig14_model,
)
from repro.core.change import diff_indexes


def _impact(scenario_name: str) -> dict:
    scenario = next(s for s in CHANGE_SCENARIOS if s.name == scenario_name)
    model = build_fig14_model()
    before = model.element_index()
    scenario.apply_advanced(model)
    change = diff_indexes(before, model.element_index(), label=scenario_name)
    return {
        "operation": scenario_name,
        "added": len(change.added),
        "modified": len(change.modified),
        "removed": len(change.removed),
        "locality": change.locality(),
    }


def bench_onboard_partner(benchmark, report):
    row = benchmark(_impact, "add_partner_same_protocol")
    report(table([row], ["operation", "added", "modified", "removed", "locality"],
                 "Sec 4.6: on-board a partner (existing protocol)"))
    assert row["modified"] == 0


def bench_onboard_protocol(benchmark, report):
    row = benchmark(_impact, "add_partner_new_protocol")
    report(table([row], ["operation", "added", "modified", "removed", "locality"],
                 "Sec 4.6: on-board a partner with a NEW protocol"))
    assert row["modified"] == 0


def bench_onboard_backend(benchmark, report):
    row = benchmark(_impact, "add_backend")
    report(table([row], ["operation", "added", "modified", "removed", "locality"],
                 "Sec 4.6: deploy a new back-end application"))
    assert row["modified"] == 0


def bench_onboard_private_process(benchmark, report):
    row = benchmark(_impact, "add_private_process")
    report(table([row], ["operation", "added", "modified", "removed", "locality"],
                 "Sec 4.6: introduce a new private process"))
    assert row["modified"] == 0


def bench_offboard_partner(benchmark, report):
    row = benchmark(_impact, "remove_partner")
    report(table([row], ["operation", "added", "modified", "removed", "locality"],
                 "Sec 4.6: off-board a partner"))
    assert row["modified"] == 0 and row["removed"] > 0


def bench_build_full_model(benchmark):
    """Cost of assembling the whole Figure 14 deployment from scratch."""
    model = benchmark(build_fig14_model)
    assert len(model.element_index()) > 30
