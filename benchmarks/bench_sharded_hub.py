"""Sharded hub throughput: msgs/sec vs shard count (>=1M messages).

The §4.6 hub claim, measured: the same partner workload is pushed
through :class:`~repro.runtime.sharding.ShardedKernel` in parallel drain
mode at shard counts {1, 2, 4, 8} — 250k messages per configuration, one
million total — and aggregate msgs/sec is reported per count.  The run
also verifies that deterministic mode produces an identical event trace
at every shard count (the global-sequence merge makes partitioning
unobservable) and that cross-shard traffic flows through the explicit
inter-shard channel / SimulatedNetwork links.

Gate: 4-shard parallel throughput must be >= 2x single-shard (the
``sharded_hub_scaling_4x`` floor in ``repro.analysis.bench``).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sharded_hub.py [--messages N]

or as part of the suite via ``repro bench --sharded-hub`` / pytest.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from conftest import table  # noqa: E402

from repro.analysis.sharded_hub import run_hub_benchmark  # noqa: E402


def _rows(result: dict) -> list[dict]:
    return [
        {
            "shards": shards,
            "msgs_per_sec": result["parallel"][str(shards)]["msgs_per_sec"],
            "speedup": f"x{result['scaling'][str(shards)]:.2f}",
            "cross_shard": result["parallel"][str(shards)]["cross_shard_tasks"],
            "elapsed_sec": result["parallel"][str(shards)]["elapsed_sec"],
        }
        for shards in result["shard_counts"]
    ]


def bench_sharded_hub_scaling(benchmark, report):
    result = benchmark.pedantic(run_hub_benchmark, rounds=1, iterations=1)
    report(
        table(
            _rows(result),
            ["shards", "msgs_per_sec", "speedup", "cross_shard", "elapsed_sec"],
            f"Sharded hub: {result['total_messages']:,} messages "
            f"(commit wait {result['commit_wait_sec'] * 1000:.2f} ms / "
            f"{result['commit_interval']} msgs)",
        ),
        f"deterministic trace invariant: {result['deterministic_trace_invariant']}",
    )
    assert result["total_messages"] >= 1_000_000
    assert result["deterministic_trace_invariant"]
    assert result["scaling_4x"] >= 2.0, (
        f"4-shard parallel throughput only x{result['scaling_4x']:.2f} "
        "of single-shard (floor: x2.0)"
    )


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--messages", type=int, default=250_000, metavar="N",
        help="messages per shard-count configuration (default: 250000)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the machine-readable result to PATH ('-' for stdout)",
    )
    args = parser.parse_args(argv)
    result = run_hub_benchmark(messages_per_config=args.messages)
    print(
        table(
            _rows(result),
            ["shards", "msgs_per_sec", "speedup", "cross_shard", "elapsed_sec"],
            f"Sharded hub: {result['total_messages']:,} messages",
        )
    )
    print(
        f"deterministic trace invariant: {result['deterministic_trace_invariant']}"
    )
    if args.json:
        text = json.dumps(result, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
    if not result["deterministic_trace_invariant"]:
        return 1
    if result["scaling_4x"] is not None and result["scaling_4x"] < 2.0:
        print(
            f"FAILED: 4-shard scaling x{result['scaling_4x']:.2f} below x2.0",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
