"""Conversation model checker: product-state-space explorer throughput.

``repro lint --deep`` explores every protocol's buyer/seller product
automaton at deployment time, so its cost is a modeling-loop latency.
These benchmarks measure explored states per second on the shipped
protocols and on a synthetic bursty pair whose interleaving space is
orders of magnitude larger than any real exchange.
"""

from conftest import table

from repro.b2b.protocol import extended_protocols
from repro.core.public_process import PublicProcessDefinition, PublicStep
from repro.verify.statespace import explore_pair


def _bursty_pair(burst: int):
    """Two sides that each fire ``burst`` sends before draining the other's
    burst — the worst interleaving blow-up a queue bound of ``burst`` allows."""
    buyer = PublicProcessDefinition(
        "bench/bursty-buyer", "bench-bursty", "buyer", "fmt",
        [PublicStep(f"send_{index}", "send", f"doc_{index}")
         for index in range(burst)]
        + [PublicStep(f"recv_{index}", "receive", f"ret_{index}")
           for index in range(burst)],
    )
    seller = PublicProcessDefinition(
        "bench/bursty-seller", "bench-bursty", "seller", "fmt",
        [PublicStep(f"send_{index}", "send", f"ret_{index}")
         for index in range(burst)]
        + [PublicStep(f"recv_{index}", "receive", f"doc_{index}")
           for index in range(burst)],
    )
    return buyer, seller


def bench_shipped_protocol_exploration(benchmark, report):
    """Explore every shipped protocol pair once per run; report the spaces."""
    pairs = {
        name: (protocol.buyer_process(), protocol.seller_process())
        for name, protocol in extended_protocols().items()
    }

    def explore_all():
        rows = []
        for name, (buyer, seller) in sorted(pairs.items()):
            result = explore_pair(buyer, seller)
            assert result.clean, name
            rows.append({"protocol": name, "states": result.states_explored})
        return rows

    rows = benchmark(explore_all)
    report(table(rows, ["protocol", "states"],
                 "Deep lint: conversation state spaces per shipped protocol"))


def bench_bursty_exploration_states_per_sec(benchmark, report):
    """Explorer throughput on a synthetic burst-heavy conversation."""
    burst = 6
    buyer, seller = _bursty_pair(burst)
    baseline = explore_pair(buyer, seller, queue_bound=burst)
    assert baseline.clean

    def explore():
        return explore_pair(buyer, seller, queue_bound=burst).states_explored

    states = benchmark(explore)
    stats = getattr(benchmark.stats, "stats", None)  # absent when disabled
    rate = f"{states / stats.mean:,.0f}" if stats else "n/a (--benchmark-disable)"
    report(table(
        [{"burst": burst, "states": states, "states_per_sec": rate}],
        ["burst", "states", "states_per_sec"],
        "Deep lint: explorer throughput (bursty synthetic pair)",
    ))


def bench_deadlock_counterexample(benchmark):
    """Finding the minimal deadlock trace must stay interactive-fast."""
    from repro.verify.targets import build_deadlock_model

    model = build_deadlock_model()
    buyer = model.public_processes["deadlock-buyer"]
    seller = model.public_processes["deadlock-seller"]

    def find():
        (diagnostic,) = explore_pair(buyer, seller).diagnostics
        assert diagnostic.code == "B2B501"
        return diagnostic

    benchmark(find)
