"""Conversation model checker: product-state-space explorer throughput.

``repro lint --deep`` explores every protocol's buyer/seller product
automaton at deployment time, so its cost is a modeling-loop latency.
These benchmarks measure explored states per second on the shipped
protocols and on a synthetic bursty pair whose interleaving space is
orders of magnitude larger than any real exchange, plus the pruning
power of partial-order reduction on that pair.

Run standalone with the performance gate::

    PYTHONPATH=src python benchmarks/bench_statespace.py --gate

The gate enforces the two registry-scale verification floors: partial-
order reduction must shrink the bursty pair's explored space >= 5x, and
calibration-normalized explorer throughput must stay above a floor set
~4x below the measured rate (machine drift cancels out in the ratio).
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from conftest import table  # noqa: E402

from repro.b2b.protocol import extended_protocols  # noqa: E402
from repro.core.public_process import (  # noqa: E402
    PublicProcessDefinition,
    PublicStep,
)
from repro.verify.statespace import explore_pair  # noqa: E402

# Floors enforced by --gate (and mirrored by SPEEDUP_FLOORS in
# repro.analysis.bench for the run_bench.py regression gate).
REDUCTION_FLOOR = 5.0
NORMALIZED_STATES_FLOOR = 8.0


def _bursty_pair(burst: int):
    """Two sides that each fire ``burst`` sends before draining the other's
    burst — the worst interleaving blow-up a queue bound of ``burst`` allows."""
    buyer = PublicProcessDefinition(
        "bench/bursty-buyer", "bench-bursty", "buyer", "fmt",
        [PublicStep(f"send_{index}", "send", f"doc_{index}")
         for index in range(burst)]
        + [PublicStep(f"recv_{index}", "receive", f"ret_{index}")
           for index in range(burst)],
    )
    seller = PublicProcessDefinition(
        "bench/bursty-seller", "bench-bursty", "seller", "fmt",
        [PublicStep(f"send_{index}", "send", f"ret_{index}")
         for index in range(burst)]
        + [PublicStep(f"recv_{index}", "receive", f"doc_{index}")
           for index in range(burst)],
    )
    return buyer, seller


def bench_shipped_protocol_exploration(benchmark, report):
    """Explore every shipped protocol pair once per run; report the spaces."""
    pairs = {
        name: (protocol.buyer_process(), protocol.seller_process())
        for name, protocol in extended_protocols().items()
    }

    def explore_all():
        rows = []
        for name, (buyer, seller) in sorted(pairs.items()):
            result = explore_pair(buyer, seller)
            assert result.clean, name
            rows.append({"protocol": name, "states": result.states_explored})
        return rows

    rows = benchmark(explore_all)
    report(table(rows, ["protocol", "states"],
                 "Deep lint: conversation state spaces per shipped protocol"))


def bench_bursty_exploration_states_per_sec(benchmark, report):
    """Explorer throughput on a synthetic burst-heavy conversation."""
    burst = 6
    buyer, seller = _bursty_pair(burst)
    baseline = explore_pair(buyer, seller, queue_bound=burst)
    assert baseline.clean

    def explore():
        return explore_pair(buyer, seller, queue_bound=burst).states_explored

    states = benchmark(explore)
    stats = getattr(benchmark.stats, "stats", None)  # absent when disabled
    rate = f"{states / stats.mean:,.0f}" if stats else "n/a (--benchmark-disable)"
    report(table(
        [{"burst": burst, "states": states, "states_per_sec": rate}],
        ["burst", "states", "states_per_sec"],
        "Deep lint: explorer throughput (bursty synthetic pair)",
    ))


def bench_partial_order_reduction_ratio(benchmark, report):
    """Reduced exploration must prune the bursty space >= 5x, same verdicts."""
    burst = 8
    buyer, seller = _bursty_pair(burst)
    full = explore_pair(buyer, seller, queue_bound=burst, reduce=False)
    assert full.clean

    def reduced_explore():
        return explore_pair(buyer, seller, queue_bound=burst)

    reduced = benchmark(reduced_explore)
    assert reduced.clean
    assert reduced.states_pruned > 0
    ratio = full.states_explored / reduced.states_explored
    report(table(
        [{
            "burst": burst,
            "full_states": full.states_explored,
            "reduced_states": reduced.states_explored,
            "pruned": reduced.states_pruned,
            "ratio": f"x{ratio:.2f}",
        }],
        ["burst", "full_states", "reduced_states", "pruned", "ratio"],
        "Deep lint: partial-order reduction on the bursty pair",
    ))
    assert ratio >= REDUCTION_FLOOR, (
        f"partial-order reduction only x{ratio:.2f} on burst={burst} "
        f"(floor x{REDUCTION_FLOOR:.1f})"
    )


def bench_deadlock_counterexample(benchmark):
    """Finding the minimal deadlock trace must stay interactive-fast."""
    from repro.verify.targets import build_deadlock_model

    model = build_deadlock_model()
    buyer = model.public_processes["deadlock-buyer"]
    seller = model.public_processes["deadlock-seller"]

    def find():
        (diagnostic,) = explore_pair(buyer, seller).diagnostics
        assert diagnostic.code == "B2B501"
        return diagnostic

    benchmark(find)


def _states_per_sec(burst: int, min_time: float = 0.5) -> tuple[float, int]:
    """Raw explorer throughput: full-BFS states visited per second."""
    buyer, seller = _bursty_pair(burst)
    states = explore_pair(buyer, seller, queue_bound=burst, reduce=False)
    runs = 0
    start = time.perf_counter()
    elapsed = 0.0
    while elapsed < min_time or runs < 3:
        explore_pair(buyer, seller, queue_bound=burst, reduce=False)
        runs += 1
        elapsed = time.perf_counter() - start
    return runs * states.states_explored / elapsed, states.states_explored


def main(argv=None) -> int:
    import argparse

    from repro.analysis.bench import _calibration_spin, _spin_ops

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--burst", type=int, default=8,
        help="burst depth of the synthetic pair (default: 8)",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="enforce the reduction-ratio and normalized-throughput floors",
    )
    args = parser.parse_args(argv)

    buyer, seller = _bursty_pair(args.burst)
    full = explore_pair(buyer, seller, queue_bound=args.burst, reduce=False)
    reduced = explore_pair(buyer, seller, queue_bound=args.burst)
    if not (full.clean and reduced.clean):
        print("bursty pair is not clean", file=sys.stderr)
        return 1
    ratio = full.states_explored / reduced.states_explored

    calibration, _ = _spin_ops(_calibration_spin, 0.25)
    states_per_sec, _ = _states_per_sec(args.burst)
    normalized = states_per_sec / calibration

    print(table(
        [{
            "burst": args.burst,
            "full_states": full.states_explored,
            "reduced_states": reduced.states_explored,
            "reduction": f"x{ratio:.2f}",
            "states_per_sec": f"{states_per_sec:,.0f}",
            "normalized": f"{normalized:.2f}",
        }],
        ["burst", "full_states", "reduced_states", "reduction",
         "states_per_sec", "normalized"],
        "State-space explorer: reduction and throughput",
    ))

    if args.gate:
        problems = []
        if ratio < REDUCTION_FLOOR:
            problems.append(
                f"reduction ratio x{ratio:.2f} is below the "
                f"x{REDUCTION_FLOOR:.1f} floor"
            )
        if normalized < NORMALIZED_STATES_FLOOR:
            problems.append(
                f"normalized throughput {normalized:.2f} is below the "
                f"{NORMALIZED_STATES_FLOOR:.1f} floor"
            )
        if problems:
            print("\nSTATESPACE GATE FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(
            f"\nstatespace gate OK (reduction >= x{REDUCTION_FLOOR:.1f}, "
            f"normalized >= {NORMALIZED_STATES_FLOOR:.1f})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
