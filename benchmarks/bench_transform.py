"""E-TR — Section 3.2: transformation cost.

Measures per-mapping transformation throughput across formats and document
sizes, plus the naive-vs-advanced transformation-count economics: the
naive workflow executes a protocol x back-end matrix of transformation
steps, the advanced binding exactly two hub hops per document.
"""

import pytest
from conftest import table

from repro.documents.normalized import make_purchase_order
from repro.transform.catalog import build_standard_registry

REGISTRY = build_standard_registry()

FORMATS = ["edi-x12", "rosettanet-xml", "oagis-bod", "sap-idoc", "oracle-oif"]


def _po(line_count: int):
    return make_purchase_order(
        "PO-TR", "TP1", "ACME",
        [
            {"sku": f"SKU-{i}", "quantity": float(i + 1), "unit_price": 9.99}
            for i in range(line_count)
        ],
    )


@pytest.mark.parametrize("format_name", FORMATS)
def bench_normalize_inbound(benchmark, format_name):
    wire_doc = REGISTRY.transform(_po(10), format_name)
    result = benchmark(REGISTRY.transform, wire_doc, "normalized")
    assert result.format_name == "normalized"


@pytest.mark.parametrize("format_name", FORMATS)
def bench_denormalize_outbound(benchmark, format_name):
    po = _po(10)
    result = benchmark(REGISTRY.transform, po, format_name)
    assert result.format_name == format_name


@pytest.mark.parametrize("line_count", [1, 10, 100])
def bench_document_size_scaling(benchmark, line_count):
    po = _po(line_count)
    benchmark(REGISTRY.transform, po, "edi-x12")


def bench_hub_route_two_hops(benchmark):
    """wire -> wire crosses the normalized hub: exactly two mappings."""
    wire_doc = REGISTRY.transform(_po(10), "edi-x12")
    chain = REGISTRY.route("edi-x12", "sap-idoc", "purchase_order")
    assert len(chain) == 2
    result = benchmark(REGISTRY.transform, wire_doc, "sap-idoc")
    assert result.format_name == "sap-idoc"


def bench_transformation_economics(benchmark, report):
    """Documents-to-transformations ratio: naive matrix vs binding hub."""

    def economics():
        protocols, backends = 3, 2
        return [
            {
                "architecture": "naive (fig 9 matrix)",
                "transform_steps_modeled": 2 * protocols * backends,
                "transform_runs_per_document": 2,   # chosen branch in + out
            },
            {
                "architecture": "advanced (binding hub)",
                "transform_steps_modeled": 2 * (protocols + backends),
                "transform_runs_per_document": 2,   # to normalized, to native
            },
        ]

    rows = benchmark(economics)
    report(table(rows, ["architecture", "transform_steps_modeled",
                        "transform_runs_per_document"],
                 "E-TR: modeled transformation surface (3 protocols, 2 back ends)"))
    assert rows[0]["transform_steps_modeled"] > rows[1]["transform_steps_modeled"]
