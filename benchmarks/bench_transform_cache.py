"""Transformation benchmarks: content-addressed cache + columnar batches.

B2B traffic is repetitive (the same purchase orders and acks arrive over
and over) and bursty (documents arrive in vectors, not one at a time).
The transformation engine exploits both: a content-addressed result
cache memoizes whole route applications, and ``transform_batch`` runs a
compiled mapping across a document vector with route resolution, schema
validation and rule dispatch hoisted out of the per-document loop (see
:mod:`repro.analysis.transform_bench` for the workload models).

Run standalone with the performance gate::

    PYTHONPATH=src python benchmarks/bench_transform_cache.py --gate

The gate enforces the two transformation floors: warm cache hit rate on
the Zipf request stream >= 0.9, and inbound columnar batch speedup at
100-document batches >= 3x — plus the trace-parity invariant: the
batched transform hub must render the exact same event trace as the
one-document-at-a-time hub at every shard count.  ``--json PATH``
additionally writes the raw measurement payload (the same sub-dict
``repro bench --transform-cache`` embeds in the BENCH envelope).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from conftest import table  # noqa: E402

from repro.analysis.transform_bench import (  # noqa: E402
    BATCH_SPEEDUP_FLOOR,
    CACHE_HIT_RATE_FLOOR,
    _document_population,
    _zipf_indexes,
    run_transform_benchmark,
)
from repro.documents.normalized import NORMALIZED  # noqa: E402
from repro.transform.catalog import build_standard_registry  # noqa: E402

_CONTEXT = {"sender_id": "ACME", "receiver_id": "TP1", "now": 1.0}


def bench_cached_zipf_stream(benchmark, report):
    """1000 Zipf-distributed transforms against a warm result cache."""
    registry = build_standard_registry()
    registry.enable_cache()
    documents = _document_population(registry, 50)
    indexes = _zipf_indexes(50, 1_000, 1.1, seed=7)
    for document in documents:  # warm: one cold pass over the population
        registry.transform(document, NORMALIZED)

    def stream() -> None:
        for index in indexes:
            registry.transform(documents[index], NORMALIZED)

    benchmark(stream)
    snapshot = registry.cache.snapshot()
    report(table(
        [{
            "hits": snapshot["hits"],
            "misses": snapshot["misses"],
            "hit_rate": f"{snapshot['hit_rate']:.4f}",
            "entries": snapshot["entries"],
        }],
        ["hits", "misses", "hit_rate", "entries"],
        "Cache counters after the benchmark run (warm population)",
    ))


def bench_transform_batch_inbound(benchmark, report):
    """Columnar transform of one 100-document inbound batch (no cache)."""
    registry = build_standard_registry()
    documents = _document_population(registry, 100)
    registry.transform_batch(documents, NORMALIZED, _CONTEXT)  # warm

    benchmark(lambda: registry.transform_batch(documents, NORMALIZED, _CONTEXT))
    report(table(
        [{"batch_size": len(documents), "route": "edi-x12 -> normalized"}],
        ["batch_size", "route"],
        "Batch: compare against bench_per_document_inbound's timing",
    ))


def bench_per_document_inbound(benchmark, report):
    """Per-document reference loop over the same 100-document batch."""
    registry = build_standard_registry()
    documents = _document_population(registry, 100)
    [registry.transform(document, NORMALIZED, _CONTEXT) for document in documents]

    def loop() -> None:
        for document in documents:
            registry.transform(document, NORMALIZED, _CONTEXT)

    benchmark(loop)
    report(table(
        [{"batch_size": len(documents), "route": "edi-x12 -> normalized"}],
        ["batch_size", "route"],
        "Reference loop (the gated speedup is batch over this)",
    ))


def main(argv=None) -> int:
    import argparse
    import json
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--batch-size", type=int, default=100,
        help="documents per transform_batch call (default: 100)",
    )
    parser.add_argument(
        "--batches", type=int, default=20,
        help="batches per timed speedup run (default: 20)",
    )
    parser.add_argument(
        "--requests", type=int, default=5_000,
        help="Zipf requests for the hit-rate measurement (default: 5000)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write the raw measurement payload as JSON",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="enforce the hit-rate floor, batch-speedup floor and "
        "hub trace parity",
    )
    args = parser.parse_args(argv)

    payload = run_transform_benchmark(
        batch_size=args.batch_size, batches=args.batches, requests=args.requests
    )
    cache = payload["cache"]
    batch = payload["batch"]
    hub = payload["hub"]

    print(table(
        [{
            "population": cache["population"],
            "requests": cache["requests"],
            "hits": cache["hits"],
            "misses": cache["misses"],
            "hit_rate": cache["transform_cache_hit_rate"],
            "speedup": f"x{cache['cache_speedup']}",
        }],
        ["population", "requests", "hits", "misses", "hit_rate", "speedup"],
        "Content-addressed cache on the Zipf stream",
    ))
    print()
    print(table(
        [
            {
                "route": "inbound (edi-x12 -> normalized)",
                "per_doc_sec": batch["inbound"]["per_doc_sec"],
                "batch_sec": batch["inbound"]["batch_sec"],
                "speedup": f"x{batch['inbound']['speedup']}",
            },
            {
                "route": "outbound (normalized -> edi-x12)",
                "per_doc_sec": batch["outbound"]["per_doc_sec"],
                "batch_sec": batch["outbound"]["batch_sec"],
                "speedup": f"x{batch['outbound']['speedup']}",
            },
        ],
        ["route", "per_doc_sec", "batch_sec", "speedup"],
        f"Columnar batches ({batch['batch_size']} docs x {batch['batches']})",
    ))
    print()
    print(table(
        [{
            "shard_counts": ",".join(map(str, hub["shard_counts"])),
            "trace_parity": hub["trace_parity"],
            "batch_calls": ",".join(
                str(calls) for calls in hub["batch_calls"].values()
            ),
        }],
        ["shard_counts", "trace_parity", "batch_calls"],
        "Transform hub: batched vs per-document trace parity",
    ))

    if args.json:
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\nwrote {args.json}")

    if args.gate:
        problems = []
        hit_rate = payload["transform_cache_hit_rate"]
        if hit_rate < CACHE_HIT_RATE_FLOOR:
            problems.append(
                f"cache hit rate {hit_rate:.4f} is below the "
                f"{CACHE_HIT_RATE_FLOOR:.2f} floor"
            )
        speedup = payload["transform_batch_speedup"]
        if speedup < BATCH_SPEEDUP_FLOOR:
            problems.append(
                f"batch speedup x{speedup:.2f} is below the "
                f"x{BATCH_SPEEDUP_FLOOR:.1f} floor"
            )
        if not hub["trace_parity"]:
            problems.append("batched hub trace differs from per-document trace")
        if problems:
            print("\nTRANSFORM GATE FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(
            f"\ntransform gate OK (hit rate >= {CACHE_HIT_RATE_FLOOR:.2f}, "
            f"batch speedup >= x{BATCH_SPEEDUP_FLOOR:.1f}, trace parity)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
