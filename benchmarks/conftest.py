"""Shared helpers for the benchmark harness.

Every benchmark that reproduces a paper figure prints its measured
rows/series through :func:`report` (bypassing pytest's capture) so the
``bench_output.txt`` record contains both the pytest-benchmark timing
tables and the experiment data itself.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print experiment rows to the real stdout, capture notwithstanding."""

    def _print(*lines: object) -> None:
        with capsys.disabled():
            print()
            for line in lines:
                print(line)

    return _print


def table(rows: list[dict], columns: list[str], title: str = "") -> str:
    """Render rows as a fixed-width text table."""
    widths = {
        column: max(len(column), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    body = [
        "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        for row in rows
    ]
    prefix = [title, "=" * len(title)] if title else []
    return "\n".join([*prefix, header, separator, *body])
