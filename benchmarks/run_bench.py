#!/usr/bin/env python
"""Standalone benchmark driver (see ``repro.analysis.bench``).

Runs the tracked hot-path benchmarks, prints a table, and optionally writes
machine-readable JSON and gates against a committed baseline:

    PYTHONPATH=src python benchmarks/run_bench.py --json BENCH_PR3.json
    PYTHONPATH=src python benchmarks/run_bench.py \
        --check benchmarks/bench_baseline.json

The same driver backs the ``repro bench`` CLI subcommand.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
