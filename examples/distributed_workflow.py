#!/usr/bin/env python3
"""Why the paper rejects distributed inter-organizational workflow.

Runs the Figure 2/3 round trip under both Section 2 mechanisms —

* **instance migration** (Figure 5(a)) with automatic type migration
  (Figure 6), and
* **subworkflow distribution** (Figure 5(b), master/slave) —

and prints what each mechanism forces the enterprises to reveal: with
migration, both sides end up holding the other's business rules; with
distribution the definitions stay home, but the master remotely controls
execution inside the slave.

Run:  python examples/distributed_workflow.py
"""

from repro.backend import OracleSimulator, SapSimulator
from repro.baselines.distributed_interorg import (
    build_interorg_roundtrip_types,
    make_participant_engine,
    run_distributed_roundtrip,
    run_migrating_roundtrip,
)
from repro.sim import Clock

ORDER = [{"sku": "TURBINE", "quantity": 2, "unit_price": 10000.0}]


def _fresh_engines():
    clock = Clock()
    left_erp = SapSimulator("SAP")
    right_erp = OracleSimulator("Oracle")
    left = make_participant_engine("buyer-engine", left_erp, clock)
    right = make_participant_engine("seller-engine", right_erp, clock)
    left_erp.enter_order("PO-D1", "BuyerCo", "SellerCo", ORDER)
    return left, right, left_erp, right_erp


def migration_variant() -> None:
    print("=== Variant A: instance migration (Figure 5a + 6) ===")
    left, right, left_erp, right_erp = _fresh_engines()
    types = build_interorg_roundtrip_types(
        "BuyerCo", "SellerCo", "SAP", "sap-idoc", "Oracle", "oracle-oif",
        left_threshold=10000, right_thresholds={"BuyerCo": 550000},
    )
    result = run_migrating_roundtrip(left, right, types, "PO-D1", 20000.0, "BuyerCo")
    print(f"round trip           : {result.instance.status}")
    print(f"order at seller ERP  : {right_erp.has_order('PO-D1')}")
    print(f"ack at buyer ERP     : {'PO-D1' in left_erp.stored_acks}")
    for index, report in enumerate(result.migrations, start=1):
        print(f"migration {index}          : {report.type_checks} type checks, "
              f"{report.types_sent} types sent, {report.instances_sent} instances, "
              f"{report.wait_keys_moved} wait keys re-homed")
        if report.migrated_types:
            print(f"    types copied     : {report.migrated_types}")
    print("knowledge exposure   :")
    print(f"    buyer reads seller rules : {result.exposure_left} rule terms")
    print(f"    seller reads buyer rules : {result.exposure_right} rule terms")
    print("  -> both enterprises now hold the OTHER side's approval logic.")


def distribution_variant() -> None:
    print("\n=== Variant B: subworkflow distribution (Figure 5b) ===")
    left, right, left_erp, right_erp = _fresh_engines()
    types = build_interorg_roundtrip_types(
        "BuyerCo", "SellerCo", "SAP", "sap-idoc", "Oracle", "oracle-oif",
        left_threshold=10000, right_thresholds={"BuyerCo": 550000},
        distributed=True, remote_engine="seller-engine-wfms",
    )
    result = run_distributed_roundtrip(left, right, types, "PO-D1", 20000.0, "BuyerCo")
    print(f"round trip           : {result.instance.status}")
    print(f"order at seller ERP  : {right_erp.has_order('PO-D1')}")
    print(f"ack at buyer ERP     : {'PO-D1' in left_erp.stored_acks}")
    print("knowledge exposure   :")
    print(f"    buyer reads seller rules : {result.exposure_left or 'none'}")
    print(f"    seller reads buyer rules : {result.exposure_right or 'none'}")
    left_types = sorted(t.name for t in left.database.list_types())
    right_types = sorted(t.name for t in right.database.list_types())
    print(f"buyer engine types   : {left_types}")
    print(f"seller engine types  : {right_types}")
    print("  -> definitions stayed home, but the buyer's master instance")
    print("     directly controls an instance inside the seller's engine —")
    print("     the tight coupling of Section 2.3.")


def main() -> None:
    migration_variant()
    distribution_variant()
    print("\nConclusion (the paper's Section 2.3): migration requires sharing")
    print("workflow types (competitive knowledge); distribution requires")
    print("surrendering execution control.  Hence public/private processes —")
    print("see examples/quickstart.py for that architecture in action.")


if __name__ == "__main__":
    main()
