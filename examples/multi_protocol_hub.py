#!/usr/bin/env python3
"""Figure 15: one seller integrating three partners over three protocols.

Seller ``ACME`` runs a *single* private process, two back ends (SAP-like
and Oracle-like), and speaks:

* EDI X12 over a Value Added Network with ``TP1``,
* RosettaNet (RNIF-style reliable messaging) with ``TP2``,
* OAGIS BODs over plain transport with ``TP3``.

Routing and approval thresholds are external business rules; the private
process definition mentions none of it — which is the paper's whole point.

Run:  python examples/multi_protocol_hub.py
"""

import json

from repro import run_community
from repro.analysis.scenarios import build_fig15_community


def main() -> None:
    community = build_fig15_community(seller_delay=0.5)
    seller = community.seller

    print("=== Figure 15: the multi-protocol hub ===")
    for agreement in seller.model.partners.agreements():
        print(f"  {agreement.partner_id}: {agreement.protocol} "
              f"(we are {agreement.our_role})")
    print(f"  back ends: {sorted(seller.backends)}")
    print(f"  rule sets: "
          f"{[rule_set.function for rule_set in seller.rules.sets()]}")

    # Snapshot the private process BEFORE any traffic: we will prove it is
    # byte-identical afterwards.
    private_before = json.dumps(
        seller.model.private_processes["private-po-seller"].to_dict(),
        sort_keys=True,
    )

    # Every partner orders something.
    orders = {
        "TP1": [{"sku": "STEEL-BEAM", "quantity": 100, "unit_price": 750.0}],
        "TP2": [{"sku": "CIRCUIT-A", "quantity": 2000, "unit_price": 12.5}],
        "TP3": [{"sku": "CRATE", "quantity": 40, "unit_price": 90.0}],
    }
    for partner_id, lines in orders.items():
        community.buyers[partner_id].submit_order(
            "SAP", "ACME", f"PO-{partner_id}", lines
        )
        total = sum(line["quantity"] * line["unit_price"] for line in lines)
        print(f"\n{partner_id} submits PO-{partner_id} (total {total:,.2f})")

    rounds = run_community(community.enterprises())
    print(f"\ncommunity quiesced after {rounds} rounds")

    # -- the seller's view -----------------------------------------------------
    print("\nseller order book:")
    for application, backend in sorted(seller.backends.items()):
        for po_number in sorted(backend.orders):
            record = backend.order(po_number)
            print(f"  {application:<7} {po_number:<8} {record.status:<9} "
                  f"{record.total_amount:>12,.2f}")

    print("\nseller private instances (all the same workflow type):")
    for instance in seller.wfms.database.list_instances():
        print(f"  {instance.instance_id}: {instance.type_name} -> {instance.status} "
              f"(source {instance.variables.get('source')}, "
              f"routed to {instance.variables.get('target')})")

    # -- every buyer got its acknowledgment back in its own protocol ------------
    print("\nbuyer acknowledgments:")
    for partner_id, buyer in sorted(community.buyers.items()):
        ack = buyer.backends["SAP"].stored_acks[f"PO-{partner_id}"]
        print(f"  {partner_id}: stored {ack.doc_type} "
              f"(native {ack.format_name}, action {ack.get('header.action')})")

    # -- the headline claim ------------------------------------------------------
    private_after = json.dumps(
        seller.model.private_processes["private-po-seller"].to_dict(),
        sort_keys=True,
    )
    assert private_before == private_after
    print("\nOK: three protocols, three partners, two back ends — and the "
          "private process definition is byte-identical to before.")


if __name__ == "__main__":
    main()
