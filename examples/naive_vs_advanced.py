#!/usr/bin/env python3
"""The paper's quantitative argument: naive vs advanced, measured.

Builds the Figure 9 naive workflow type and the equivalent advanced
integration model, prints their sizes, sweeps the topology dimensions
(growth curves behind Figures 9/10), and runs the Section 4.5 change
catalogue on both architectures.

Run:  python examples/naive_vs_advanced.py
"""

from repro.analysis.change_impact import change_table
from repro.analysis.complexity import figure9_to_figure10_change, growth_rows
from repro.baselines.monolithic import NaiveTopology, build_naive_seller_type
from repro.core.metrics import measure_workflow_type


def _print_table(rows, columns, title):
    widths = {
        column: max(len(column), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    print(f"\n{title}")
    print("-" * len(title))
    print("  ".join(column.ljust(widths[column]) for column in columns))
    for row in rows:
        print("  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns))


def main() -> None:
    print("=== Naive (Figures 9/10) vs advanced (Figures 13-15) ===")

    # -- the two Figure snapshots ------------------------------------------------
    for label, topology in (("Figure 9", NaiveTopology.figure9()),
                            ("Figure 10", NaiveTopology.figure10())):
        workflow = build_naive_seller_type(topology)
        metrics = measure_workflow_type(workflow)
        print(f"\n{label}: naive workflow type "
              f"({len(topology.protocols)} protocols, "
              f"{len(topology.partner_protocol)} partners, "
              f"{len(topology.backends)} back ends)")
        print(f"  steps={metrics.workflow_steps}  transitions={metrics.transitions}  "
              f"inline transforms={metrics.inline_transform_steps}  "
              f"inline rule terms={metrics.inline_rule_terms}")

    change = figure9_to_figure10_change()
    print(f"\nFigure 9 -> Figure 10 (add TP3 + OAGIS):")
    print(f"  naive:    {change['naive_elements_touched']} elements touched, "
          f"{change['naive_elements_modified']} modified in place")
    print(f"  advanced: purely additive "
          f"(+{change['advanced_total_after'] - change['advanced_total_before']} "
          f"elements, private process unchanged)")

    # -- growth curves --------------------------------------------------------------
    rows = []
    for dimension, values in (("protocols", [1, 2, 3, 4, 6]),
                              ("partners", [2, 4, 8, 16]),
                              ("backends", [1, 2, 4, 8])):
        rows += growth_rows(dimension, values)
    _print_table(
        rows,
        ["dimension", "value", "topology", "naive_total", "advanced_total"],
        "Total authored model elements (Section 4.6 growth)",
    )

    # -- the Section 4.5 change catalogue --------------------------------------------
    catalogue = [
        {
            "scenario": row["scenario"],
            "advanced": f"{row['advanced_impact']} "
                        f"({row['advanced_modified']} modified, "
                        f"{row['advanced_locality']})",
            "naive": f"{row['naive_impact']} ({row['naive_modified']} modified)",
        }
        for row in change_table()
    ]
    _print_table(catalogue, ["scenario", "advanced", "naive"],
                 "Change impact: elements touched per scenario (Section 4.5)")

    print("\nReading the tables:")
    print(" * the naive type grows with the protocol x back-end product;")
    print("   the advanced model grows with their sum;")
    print(" * partner/protocol/back-end additions modify ZERO pre-existing")
    print("   advanced elements — only business rules are added (Sec 4.6);")
    print(" * only the document-format change is non-local, exactly as the")
    print("   paper concedes in Section 4.5.")


if __name__ == "__main__":
    main()
