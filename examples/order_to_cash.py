#!/usr/bin/env python3
"""Order-to-cash: the paper's concepts beyond request/reply.

Section 1 of the paper: the concepts are "by no means restricted to
request/reply patterns at all and support the general case of all possible
patterns like one-way messages, broadcast messages or multi-step message
exchanges".  This example runs a complete commercial cycle on exactly the
same public/binding/private machinery:

1. PO -> POA over RosettaNet (request/reply, buyer-initiated);
2. ship notice + invoice over OAGIS BODs (one-way multi-step,
   *seller*-initiated);
3. the buyer's goods-receipt process two-way-matches the invoice against
   the acknowledgment stored in its ERP — an external *body* rule written
   in plain Python, the paper's "ordinary programming language" escape
   hatch for rules beyond the expression language.

Run:  python examples/order_to_cash.py
"""

from repro.analysis.scenarios import build_order_to_cash_pair
from repro.core.enterprise import run_community

LINES = [
    {"sku": "GPU-H2", "quantity": 4, "unit_price": 1500.0},
    {"sku": "PSU-1600", "quantity": 4, "unit_price": 250.0},
]


def main() -> None:
    pair = build_order_to_cash_pair(seller_delay=0.5)
    buyer, seller = pair.buyer, pair.seller

    print("=== Order-to-cash across two exchanges ===")
    print("protocols deployed at the seller:",
          sorted(seller.model.protocols))

    # -- phase 1: the PO/POA request-reply -----------------------------------
    instance_id = buyer.submit_order("SAP", "ACME", "PO-7001", LINES)
    run_community(pair.enterprises())
    print(f"\nphase 1 (PO/POA over rosettanet): "
          f"{buyer.instance(instance_id).status}")
    order = seller.backends["Oracle"].order("PO-7001")
    print(f"  seller booked {order.po_number}: {order.status}, "
          f"{order.total_amount:,.2f}")

    # -- phase 2: the one-way dispatch, initiated by the SELLER ---------------
    fulfillment_id = seller.submit_shipment("Oracle", "TP1", "PO-7001")
    run_community(pair.enterprises())
    print(f"\nphase 2 (ship notice + invoice over oagis-fulfillment): "
          f"{seller.instance(fulfillment_id).status}")
    for conversation in seller.b2b.conversations.values():
        if conversation.protocol == "oagis-fulfillment":
            print(f"  seller conversation ({conversation.role}-initiated): "
                  f"{conversation.documents}")

    # -- phase 3: the buyer's receiving side ------------------------------------
    receipt = next(
        i for i in buyer.wfms.database.list_instances()
        if i.type_name == "private-goods-receipt"
    )
    print(f"\nphase 3 (goods receipt + invoice match): {receipt.status}")
    print(f"  invoice matched acknowledgment: {receipt.variables['matched']}")
    print(f"  dispute step: {receipt.step_state('resolve_dispute').status}")

    asn = buyer.archive.get("ship_notice", "PO-7001")
    invoice = buyer.archive.get("invoice", "PO-7001")
    print(f"\nbuyer archive:")
    print(f"  {asn.doc_type}: shipment {asn.get('header.shipment_id')}, "
          f"{asn.get('summary.package_count')} packages via "
          f"{asn.get('header.carrier')}")
    print(f"  {invoice.doc_type}: {invoice.get('header.invoice_number')}, "
          f"total due {invoice.get('summary.total_due'):,.2f}")

    assert receipt.status == "completed" and receipt.variables["matched"]
    print("\nOK: request/reply AND seller-initiated one-way multi-step "
          "exchanges, one integration architecture.")


if __name__ == "__main__":
    main()
