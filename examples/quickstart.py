#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 round trip in ~40 lines of API.

Two enterprises — buyer ``TP1`` (SAP-like ERP) and seller ``ACME``
(Oracle-like ERP) — exchange a purchase order and its acknowledgment over
RosettaNet-style reliable messaging.  The buyer's approval rule (amount >
10 000) and the seller's (amount >= 55 000) are Figure 1's thresholds.

Run:  python examples/quickstart.py
"""

from repro import build_two_enterprise_pair, run_community


def main() -> None:
    # One call assembles both enterprises: private processes, public
    # processes, bindings, rules, partner agreements, ERP simulators and
    # the simulated network (see repro.analysis.scenarios for the wiring).
    pair = build_two_enterprise_pair("rosettanet", seller_delay=1.0)

    print("=== Semantic B2B Integration quickstart ===")
    print(f"buyer : {pair.buyer.name} running {sorted(pair.buyer.backends)}")
    print(f"seller: {pair.seller.name} running {sorted(pair.seller.backends)}")

    # The buyer's purchasing department enters an order in its own ERP.
    instance_id = pair.buyer.submit_order(
        application="SAP",
        partner_id="ACME",
        po_number="PO-1001",
        lines=[
            {"sku": "LAPTOP-15", "quantity": 10, "unit_price": 1200.0,
             "description": "15 inch developer laptop"},
            {"sku": "DOCK-1", "quantity": 5, "unit_price": 150.0},
        ],
    )
    print(f"\norder PO-1001 submitted; buyer private instance: {instance_id}")

    # Drive the whole community (network deliveries, ERP processing,
    # VAN polling) to quiescence.
    rounds = run_community(pair.enterprises())
    print(f"community quiesced after {rounds} round(s) "
          f"at logical time {pair.scheduler.clock.now():.2f}s")

    # -- what happened, end to end ------------------------------------------
    buyer_instance = pair.buyer.instance(instance_id)
    print(f"\nbuyer private process : {buyer_instance.status}")
    for event in buyer_instance.history:
        if event["event"].startswith("step_"):
            print(f"  t={event['at']:6.2f}  {event['event']:<16} {event['step_id']}")

    order = pair.seller.backends["Oracle"].order("PO-1001")
    print(f"\nseller ERP booked     : PO-1001 "
          f"({order.status}, total {order.total_amount:,.2f})")

    ack = pair.buyer.backends["SAP"].stored_acks["PO-1001"]
    print(f"buyer ERP stored ack  : {ack.get('control.message_type')} IDoc, "
          f"action={ack.get('header.action')}")

    conversation = next(iter(pair.buyer.b2b.conversations.values()))
    print(f"\nconversation {conversation.conversation_id}: {conversation.status}")
    print(f"  exchange trace: {conversation.documents}")
    print(f"  reliable messaging: "
          f"{pair.buyer.reliable.stats.business_sent + pair.seller.reliable.stats.business_sent} "
          f"business messages, "
          f"{pair.buyer.reliable.stats.acks_sent + pair.seller.reliable.stats.acks_sent} acks, "
          f"{pair.buyer.reliable.stats.retries + pair.seller.reliable.stats.retries} retries")

    assert buyer_instance.status == "completed"
    print("\nOK: full PO-POA round trip completed.")


if __name__ == "__main__":
    main()
