#!/usr/bin/env python3
"""Broadcast sourcing: the paper's Section 2.3 RFQ scenario, done right.

The paper's objection to distributed inter-organizational workflow:

  "in a request for quotation process the receiver of the request would
   be able to see how the quotes will be selected ... Based on this
   knowledge the receiver could structure future quotes in such a way
   that the sender's selection will select his quote."

Under the public/private architecture this cannot happen: the buyer
broadcasts the RFQ to three sellers, each seller prices it from a
*private* catalog rule, and the buyer picks the winner with a *private*
scoring rule — neither side can see the other's logic, and this example
proves it by inspecting what actually crossed the wire.

Run:  python examples/rfq_broadcast.py
"""

from repro.core.enterprise import run_community
from repro.analysis.scenarios import build_sourcing_community

CATALOGS = {
    "ACME": {"GPU": 1500.0, "PSU": 260.0},
    "GLOBEX": {"GPU": 1450.0, "PSU": 280.0},
    "INITECH": {"GPU": 1480.0, "PSU": 240.0},
}


def main() -> None:
    community = build_sourcing_community(CATALOGS)
    buyer = community.buyer

    # Capture every message that crosses the simulated network.
    crossed = []
    original_send = community.network.send
    community.network.send = lambda m: (crossed.append(m), original_send(m))[1]

    print("=== Broadcast RFQ across three sellers ===")
    instance_id = buyer.submit_rfq(
        sorted(CATALOGS),
        "RFQ-2026-07",
        [{"sku": "GPU", "quantity": 10, "description": "accelerator"},
         {"sku": "PSU", "quantity": 10}],
    )
    run_community(community.enterprises())

    instance = buyer.instance(instance_id)
    print(f"\nsourcing process: {instance.status}")
    print("quotes received:")
    for entry in instance.variables["quotes"]:
        quote = entry["document"]
        print(f"  {entry['partner_id']:<8} total "
              f"{quote.get('summary.total_amount'):>10,.2f}  "
              f"({quote.get('header.quote_number')})")
    print(f"\nwinner: {instance.variables['chosen_partner']} at "
          f"{instance.variables['chosen_quote'].get('summary.total_amount'):,.2f}")

    # -- the confidentiality audit -------------------------------------------
    print("\nconfidentiality audit:")
    business = [m for m in crossed if m.kind == "business"]
    print(f"  messages on the wire : {len(business)} "
          f"({sum(1 for m in business if m.doc_type == 'request_for_quote')} RFQs, "
          f"{sum(1 for m in business if m.doc_type == 'quote')} quotes)")
    leaked = [m for m in business
              if "score" in m.body or "catalog" in m.body or "lowest" in m.body]
    print(f"  selection/pricing logic in any message: {len(leaked)} occurrences")
    for seller_id, seller in community.sellers.items():
        assert not seller.model.rules.has("score_quote")
    assert not buyer.model.rules.has("price_catalog")
    print("  sellers hold the buyer's scoring rule : no")
    print("  buyer holds any seller's price catalog: no")

    print("\nOK: broadcast pattern executed; competitive knowledge never "
          "left its enterprise.")


if __name__ == "__main__":
    main()
