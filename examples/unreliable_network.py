#!/usr/bin/env python3
"""RNIF-style reliable messaging over a hostile Internet.

Runs the RosettaNet round trip over a network that loses 30 % of messages
and duplicates 20 %, then shows a partitioned partner exhausting retries —
the error handling the paper's introduction demands ("lost messages ...
duplicate messages ... have to be accounted for").

Run:  python examples/unreliable_network.py
"""

from repro import NetworkConditions, RetryPolicy, run_community
from repro.analysis.scenarios import build_two_enterprise_pair

LINES = [{"sku": "SSD-2TB", "quantity": 25, "unit_price": 180.0}]


def lossy_run() -> None:
    print("=== Part 1: 30% loss, 20% duplication ===")
    pair = build_two_enterprise_pair(
        "rosettanet",
        conditions=NetworkConditions(
            loss_rate=0.30, duplicate_rate=0.20,
            min_latency=0.02, max_latency=0.25,
        ),
        seed=42,
        retry_policy=RetryPolicy(ack_timeout=1.0, max_retries=10),
        seller_delay=0.5,
    )
    ids = [
        pair.buyer.submit_order("SAP", "ACME", f"PO-{i:03d}", LINES)
        for i in range(5)
    ]
    run_community(pair.enterprises(), max_rounds=500)

    completed = sum(
        1 for instance_id in ids
        if pair.buyer.instance(instance_id).status == "completed"
    )
    stats = pair.network.stats
    buyer_rm, seller_rm = pair.buyer.reliable.stats, pair.seller.reliable.stats
    print(f"orders completed      : {completed}/5")
    print(f"network               : {stats.sent} sent, {stats.dropped} dropped, "
          f"{stats.duplicated} duplicated")
    print(f"retransmissions       : {buyer_rm.retries + seller_rm.retries}")
    print(f"duplicates suppressed : "
          f"{buyer_rm.duplicates_suppressed + seller_rm.duplicates_suppressed}")
    print(f"orders booked at seller (exactly-once check): "
          f"{pair.seller.backends['Oracle'].order_count()}")
    assert completed == 5
    assert pair.seller.backends["Oracle"].order_count() == 5


def partitioned_run() -> None:
    print("\n=== Part 2: the seller is unreachable ===")
    pair = build_two_enterprise_pair(
        "rosettanet",
        retry_policy=RetryPolicy(ack_timeout=0.5, max_retries=3),
    )
    pair.network.partition("ACME")
    instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-DOOMED", LINES)
    run_community(pair.enterprises())

    instance = pair.buyer.instance(instance_id)
    conversation = next(iter(pair.buyer.b2b.conversations.values()))
    print(f"buyer private instance: {instance.status}")
    print(f"  error: {instance.error}")
    print(f"conversation          : {conversation.status}")
    print(f"transmission attempts : {1 + pair.buyer.reliable.stats.retries}")
    print(f"faults recorded       : {pair.buyer.b2b.faults}")
    assert instance.status == "failed"
    assert conversation.status == "failed"


def main() -> None:
    lossy_run()
    partitioned_run()
    print("\nOK: exactly-once delivery under loss/duplication; clean, "
          "observable failure when the partner is gone.")


if __name__ == "__main__":
    main()
