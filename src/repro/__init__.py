"""repro — Semantic B2B integration with public/private processes.

A complete reproduction of Bussler's *Semantic B2B Integration* /
*"The Application of Workflow Technology in Semantic B2B Integration"*
(SIGMOD 2001 / Distributed and Parallel Databases 12, 2002): a from-scratch
workflow management system, a simulated network with RNIF-style reliable
messaging, five business-document formats with a declarative transformation
catalog, SAP-like and Oracle-like ERP simulators, the paper's advanced
architecture (public processes, bindings, private processes, external
business rules), and the rejected baseline architectures for comparison.

Quickstart::

    from repro import build_two_enterprise_pair, run_community

    pair = build_two_enterprise_pair("rosettanet")
    instance_id = pair.buyer.submit_order(
        "SAP", "ACME", "PO-1001",
        [{"sku": "LAPTOP-15", "quantity": 10, "unit_price": 1200.0}],
    )
    run_community(pair.enterprises())
    assert pair.buyer.instance(instance_id).status == "completed"

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.errors import ReproError
from repro.sim import Clock, EventScheduler
from repro.runtime import (
    EventBus,
    Kernel,
    MetricsObserver,
    RunQueue,
    Runtime,
    RuntimeEvent,
    TraceRecorder,
)
from repro.documents.model import Document
from repro.documents.normalized import make_po_ack, make_purchase_order
from repro.transform import TransformationRegistry, build_standard_registry
from repro.messaging import (
    Message,
    NetworkConditions,
    ReliableEndpoint,
    RetryPolicy,
    SimulatedNetwork,
    ValueAddedNetwork,
)
from repro.workflow import WorkflowBuilder, WorkflowEngine, WorkflowType
from repro.partners import PartnerDirectory, TradingPartner, TradingPartnerAgreement
from repro.backend import OracleSimulator, SapSimulator
from repro.core import (
    B2BEngine,
    Binding,
    BusinessRule,
    Enterprise,
    IntegrationModel,
    PublicProcessDefinition,
    RuleEngine,
    RuleSet,
    approval_rule_set,
    diff_models,
    measure_model,
    measure_workflow_type,
)
from repro.core.enterprise import DocumentArchive, run_community
from repro.core.private_process import (
    buyer_goods_receipt_process,
    buyer_po_process,
    buyer_sourcing_process,
    seller_fulfillment_process,
    seller_po_process,
    seller_quotation_process,
)
from repro.b2b import get_protocol, standard_protocols
from repro.b2b.protocol import extended_protocols
from repro.analysis import build_fig15_community, build_two_enterprise_pair
from repro.analysis.scenarios import build_order_to_cash_pair, build_sourcing_community

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "Clock",
    "EventScheduler",
    "EventBus",
    "Kernel",
    "MetricsObserver",
    "RunQueue",
    "Runtime",
    "RuntimeEvent",
    "TraceRecorder",
    "Document",
    "make_purchase_order",
    "make_po_ack",
    "TransformationRegistry",
    "build_standard_registry",
    "Message",
    "NetworkConditions",
    "SimulatedNetwork",
    "ValueAddedNetwork",
    "ReliableEndpoint",
    "RetryPolicy",
    "WorkflowBuilder",
    "WorkflowEngine",
    "WorkflowType",
    "TradingPartner",
    "TradingPartnerAgreement",
    "PartnerDirectory",
    "SapSimulator",
    "OracleSimulator",
    "BusinessRule",
    "RuleSet",
    "RuleEngine",
    "approval_rule_set",
    "PublicProcessDefinition",
    "Binding",
    "IntegrationModel",
    "B2BEngine",
    "Enterprise",
    "run_community",
    "buyer_po_process",
    "seller_po_process",
    "buyer_goods_receipt_process",
    "buyer_sourcing_process",
    "seller_fulfillment_process",
    "seller_quotation_process",
    "DocumentArchive",
    "extended_protocols",
    "build_order_to_cash_pair",
    "build_sourcing_community",
    "measure_model",
    "measure_workflow_type",
    "diff_models",
    "get_protocol",
    "standard_protocols",
    "build_two_enterprise_pair",
    "build_fig15_community",
]
