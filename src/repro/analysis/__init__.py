"""Experiment harness support: canned topologies, sweeps, change catalogue.

* :mod:`repro.analysis.scenarios` — builders for the paper's concrete
  deployments (the Figure 14 two-enterprise pair, the Figure 15
  three-partner community, synthetic models for size sweeps);
* :mod:`repro.analysis.complexity` — the naive-vs-advanced growth curves
  behind Figures 9/10 and Section 4.6;
* :mod:`repro.analysis.change_impact` — the Section 4.5 change catalogue,
  applied to both architectures and measured.
"""

from repro.analysis.scenarios import (
    TwoEnterprisePair,
    build_two_enterprise_pair,
    build_fig15_community,
    advanced_synthetic_model,
)
from repro.analysis.complexity import growth_rows, naive_metrics, advanced_metrics
from repro.analysis.change_impact import CHANGE_SCENARIOS, change_table

__all__ = [
    "TwoEnterprisePair",
    "build_two_enterprise_pair",
    "build_fig15_community",
    "advanced_synthetic_model",
    "growth_rows",
    "naive_metrics",
    "advanced_metrics",
    "CHANGE_SCENARIOS",
    "change_table",
]
