"""Hot-path benchmark driver: the repository's performance trajectory.

Four hot paths are tracked, chosen for the paper's scaling claim (public/
private process management must stay cheap per message as partners,
protocols and back ends grow, §4 Figures 11-15):

* ``expression_eval_*`` — the Figure 9 approval condition evaluated against
  a normalized purchase order (interpreted vs compiled closure tree);
* ``mapping_apply_*`` — the normalized -> EDI X12 purchase-order mapping
  applied to a document (interpreted vs compiled accessor chains);
* ``fig14_roundtrip`` — the full advanced integration end to end: public
  process -> binding -> private process -> application binding -> ERP and
  back;
* ``add_partner_*`` — onboarding a trading partner: the advanced model adds
  a partner, an agreement and three rules (then offboards); the naive
  baseline must regenerate the whole monolithic workflow type.
* ``statespace_explore`` — the deployment-time conversation model check
  (``repro lint --deep``): the product-state-space exploration of the
  receipt-acknowledged RosettaNet pair, the largest shipped conversation.
  The derived ``statespace_states_per_sec`` tracks explorer throughput,
  and ``statespace_reduction_ratio`` tracks how many states partial-order
  reduction prunes on a burst-heavy synthetic pair (gated >= 5x).
* ``registry_sweep`` — registry-scale lint: one cold deep sweep over a
  synthetic 250-agreement partner registry (shared per-protocol
  explorations).  The derived ``registry_lint_cache_hit_rate`` re-sweeps
  with a warm digest cache and must stay >= 0.9.

Results are machine-readable (``BENCH_PR3.json``).  Because absolute ops/sec
are machine-bound, every run also times a fixed pure-Python calibration loop
and reports ``normalized = ops_per_sec / calibration_ops_per_sec`` — the
regression gate compares normalized values, so CI hardware drift does not
trip it.  Run via ``python benchmarks/run_bench.py`` or ``repro bench``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Any, Callable, Iterable

__all__ = [
    "BENCHMARKS",
    "TRACKED",
    "SPEEDUP_FLOORS",
    "CEILINGS",
    "run_benchmarks",
    "check_against_baseline",
    "main",
]

# Benchmarks the CI regression gate watches (normalized ops/sec).
TRACKED = (
    "expression_eval_compiled",
    "mapping_apply_compiled",
    "fig14_roundtrip",
    "add_partner_advanced",
    "statespace_explore",
    "registry_sweep",
)

# Acceptance floors for dimensionless (machine-independent) derived
# metrics: compiled expressions must be >=2x interpreted, compiled
# mappings >=1.5x, the sharded hub's 4-shard parallel throughput >=2x
# its single-shard throughput, partial-order reduction must prune the
# bursty pair's interleaving space >=5x, and a warm registry re-sweep
# must serve >=90% of agreements from the digest cache.  Floors are
# only checked when the metric is present in the payload, so partial
# runs (e.g. without ``--sharded-hub``) skip the absent gates.
SPEEDUP_FLOORS = {
    "expression_compile_speedup": 2.0,
    "mapping_compile_speedup": 1.5,
    "sharded_hub_scaling_4x": 2.0,
    "statespace_reduction_ratio": 5.0,
    "registry_lint_cache_hit_rate": 0.9,
    # Recovery must replay >=50k events/sec (mirrors RECOVERY_FLOOR in
    # repro.analysis.journal_bench).
    "recovery_events_per_sec": 50_000.0,
    # Columnar transform_batch must be >=3x the per-document loop at
    # 100-document batches, and the content-addressed cache must serve
    # >=90% of a warm Zipf stream (mirror BATCH_SPEEDUP_FLOOR and
    # CACHE_HIT_RATE_FLOOR in repro.analysis.transform_bench).
    "transform_batch_speedup": 3.0,
    "transform_cache_hit_rate": 0.9,
    # The B2B7xx schema dataflow pass must verify >=200 binding routes/sec
    # across the example fleet (~5x headroom under the measured ~1.1k/s)
    # and a warm registry re-sweep must serve >=90% of route verdicts from
    # the chain-fingerprint cache (mirrors the floors in
    # benchmarks/bench_dataflow.py).
    "dataflow_routes_per_sec": 200.0,
    "dataflow_route_cache_hit_rate": 0.9,
}

# Acceptance ceilings: derived metrics that must stay *below* a bound.
# Write-ahead journaling may cost at most 15% of the sharded-hub path's
# wall time (mirrors OVERHEAD_CEILING in repro.analysis.journal_bench).
CEILINGS = {
    "journal_write_overhead": 0.15,
}

_LINES = [
    {"sku": "LAPTOP-15", "quantity": 10, "unit_price": 1200.0},
    {"sku": "DOCK-1", "quantity": 5, "unit_price": 150.0},
]

_FIG9_CONDITION = (
    "PO.amount >= 55000 and source == 'TP1' "
    "or PO.amount >= 40000 and source == 'TP2'"
)


# ---------------------------------------------------------------------------
# Benchmark definitions: name -> builder returning a zero-arg "one operation"
# ---------------------------------------------------------------------------


def _bench_expression_interpreted() -> Callable[[], Any]:
    from repro.documents.normalized import make_purchase_order
    from repro.workflow.expressions import Expression

    expression = Expression(_FIG9_CONDITION)
    po = make_purchase_order("P1", "TP1", "ACME", _LINES)
    variables = {"PO": po, "source": "TP1"}
    return lambda: expression.evaluate(variables)


def _bench_expression_compiled() -> Callable[[], Any]:
    from repro.documents.normalized import make_purchase_order
    from repro.workflow.expressions import Expression

    program = Expression(_FIG9_CONDITION).compile()
    po = make_purchase_order("P1", "TP1", "ACME", _LINES)
    variables = {"PO": po, "source": "TP1"}
    return lambda: program(variables)


def _mapping_fixture():
    from repro.documents.normalized import make_purchase_order
    from repro.transform.catalog import standard_mappings

    mapping = next(
        m
        for m in standard_mappings()
        if m.source_format == "normalized"
        and m.target_format == "edi-x12"
        and m.doc_type == "purchase_order"
    )
    document = make_purchase_order("P1", "TP1", "ACME", _LINES)
    context = {"sender_id": "ACME", "receiver_id": "TP1", "now": 1.0}
    return mapping, document, context


def _bench_mapping_interpreted() -> Callable[[], Any]:
    mapping, document, context = _mapping_fixture()
    return lambda: mapping.apply(document, context)


def _bench_mapping_compiled() -> Callable[[], Any]:
    mapping, document, context = _mapping_fixture()
    compiled = mapping.compile()
    return lambda: compiled.apply(document, context)


def _bench_fig14_roundtrip() -> Callable[[], Any]:
    from repro.analysis.scenarios import build_two_enterprise_pair
    from repro.core.enterprise import run_community

    def one_roundtrip() -> None:
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.5)
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-BENCH", _LINES)
        run_community(pair.enterprises())
        if pair.buyer.instance(instance_id).status != "completed":
            raise RuntimeError("fig14 roundtrip did not complete")

    return one_roundtrip


def _bench_add_partner_naive() -> Callable[[], Any]:
    from repro.baselines.monolithic import NaiveTopology, build_naive_seller_type

    def add_partner() -> None:
        # The naive architecture embeds partners in the monolithic type, so
        # onboarding means regenerating the whole workflow type.
        topology = NaiveTopology.figure9()
        topology.partner_protocol["TP-NEW"] = "rosettanet"
        topology.thresholds["TP-NEW"] = 25000
        topology.routing["TP-NEW"] = "SAP"
        build_naive_seller_type(topology)

    return add_partner


def _bench_add_partner_advanced() -> Callable[[], Any]:
    from repro.analysis.change_impact import build_fig14_model
    from repro.core.rules import BusinessRule
    from repro.partners.agreement import TradingPartnerAgreement
    from repro.partners.profile import TradingPartner

    model = build_fig14_model()
    approval = model.rules.get("check_need_for_approval")
    routing = model.rules.get("select_target_application")

    def add_partner() -> None:
        # Onboard then offboard so the op is repeatable on one model; the
        # advanced model's delta is partner + agreement + three rules — the
        # private process and all mappings are untouched.
        model.partners.add_partner(TradingPartner("TP-NEW", protocols=("rosettanet",)))
        model.partners.add_agreement(
            TradingPartnerAgreement("TP-NEW", "rosettanet", "seller")
        )
        approval.add(
            BusinessRule("TP-NEW via SAP", source="TP-NEW", target="SAP",
                         expression="document.amount >= 25000")
        )
        approval.add(
            BusinessRule("TP-NEW via Oracle", source="TP-NEW", target="Oracle",
                         expression="document.amount >= 25000")
        )
        routing.add(BusinessRule("route TP-NEW", source="TP-NEW", expression="'SAP'"))
        routing.remove("route TP-NEW")
        approval.remove("TP-NEW via Oracle")
        approval.remove("TP-NEW via SAP")
        model.partners.remove_partner("TP-NEW")

    return add_partner


def _statespace_pair():
    from repro.b2b.protocol import get_protocol

    protocol = get_protocol("rosettanet-ra")
    return protocol.buyer_process(), protocol.seller_process()


def _statespace_states_per_run() -> int:
    from repro.verify.statespace import explore_pair

    buyer, seller = _statespace_pair()
    return explore_pair(buyer, seller).states_explored


def _bench_statespace_explore() -> Callable[[], Any]:
    from repro.verify.statespace import explore_pair

    buyer, seller = _statespace_pair()

    def explore() -> None:
        if not explore_pair(buyer, seller).clean:
            raise RuntimeError("rosettanet-ra conversation is not clean")

    return explore


def _bursty_pair(burst: int):
    """Two public processes that each fire ``burst`` sends before draining
    the other side's burst — the worst interleaving blow-up a queue bound
    of ``burst`` allows, and the shape partial-order reduction targets."""
    from repro.core.public_process import PublicProcessDefinition, PublicStep

    buyer = PublicProcessDefinition(
        "bench/bursty-buyer", "bench-bursty", "buyer", "fmt",
        [PublicStep(f"send_{index}", "send", f"doc_{index}")
         for index in range(burst)]
        + [PublicStep(f"recv_{index}", "receive", f"ret_{index}")
           for index in range(burst)],
    )
    seller = PublicProcessDefinition(
        "bench/bursty-seller", "bench-bursty", "seller", "fmt",
        [PublicStep(f"send_{index}", "send", f"ret_{index}")
         for index in range(burst)]
        + [PublicStep(f"recv_{index}", "receive", f"doc_{index}")
           for index in range(burst)],
    )
    return buyer, seller


def _statespace_reduction_ratio(burst: int = 8) -> float:
    """Full-BFS states over reduced states on the bursty pair (gated >=5x)."""
    from repro.verify.statespace import explore_pair

    buyer, seller = _bursty_pair(burst)
    full = explore_pair(buyer, seller, queue_bound=burst, reduce=False)
    reduced = explore_pair(buyer, seller, queue_bound=burst, reduce=True)
    if not (full.clean and reduced.clean):
        raise RuntimeError("bursty benchmark pair is not clean")
    return round(full.states_explored / reduced.states_explored, 2)


def _registry_model(agreements: int = 250):
    from repro.analysis.scenarios import build_registry_model

    return build_registry_model(agreements)


def _bench_registry_sweep() -> Callable[[], Any]:
    from repro.verify.registry import sweep_registry

    model = _registry_model()

    def sweep() -> None:
        report = sweep_registry(model, deep=True)
        if report.diagnostics:
            raise RuntimeError("registry sweep reported diagnostics")

    return sweep


def _registry_cache_hit_rate(agreements: int = 250) -> float:
    """Warm re-sweep hit rate with an in-memory digest cache (gated >=0.9)."""
    from repro.verify.incremental import VerificationCache
    from repro.verify.registry import sweep_registry

    model = _registry_model(agreements)
    cache = VerificationCache()
    sweep_registry(model, deep=True, cache=cache)
    warm = sweep_registry(model, deep=True, cache=cache)
    return round(warm.cache_hit_rate, 4)


def _dataflow_metrics(agreements: int = 250) -> dict[str, float]:
    """Derived metrics for the B2B7xx schema dataflow pass.

    ``dataflow_routes_per_sec`` times :func:`verify_dataflow` over every
    example model that owns binding routes; ``dataflow_route_cache_hit_rate``
    re-sweeps a registry with a warm digest cache and reports the share of
    route verdicts served by chain-fingerprint hits.
    """
    from repro.verify.dataflow import iter_binding_routes, verify_dataflow
    from repro.verify.incremental import VerificationCache
    from repro.verify.registry import sweep_registry
    from repro.verify.targets import lint_units

    models = []
    for unit in lint_units(None).values():
        if not hasattr(unit, "transforms"):
            continue
        routes = len(list(iter_binding_routes(unit)))
        if routes:
            models.append((unit, routes))

    def one_pass() -> None:
        for unit, _count in models:
            verify_dataflow(unit)

    routes_per_pass = sum(count for _unit, count in models)
    ops, _normalized, _runs = _time_ops_per_sec(one_pass, min_time=0.5)

    registry = _registry_model(agreements)
    cache = VerificationCache()
    sweep_registry(registry, deep=False, dataflow=True, cache=cache)
    warm = sweep_registry(registry, deep=False, dataflow=True, cache=cache)
    return {
        "dataflow_routes_per_sec": round(ops * routes_per_pass, 1),
        "dataflow_route_cache_hit_rate": round(warm.route_cache_hit_rate, 4),
    }


BENCHMARKS: dict[str, Callable[[], Callable[[], Any]]] = {
    "expression_eval_interpreted": _bench_expression_interpreted,
    "expression_eval_compiled": _bench_expression_compiled,
    "mapping_apply_interpreted": _bench_mapping_interpreted,
    "mapping_apply_compiled": _bench_mapping_compiled,
    "fig14_roundtrip": _bench_fig14_roundtrip,
    "add_partner_naive": _bench_add_partner_naive,
    "add_partner_advanced": _bench_add_partner_advanced,
    "statespace_explore": _bench_statespace_explore,
    "registry_sweep": _bench_registry_sweep,
}


# ---------------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------------


def _calibration_spin() -> int:
    """The fixed pure-Python workload used to normalize across machines."""
    total = 0
    for value in range(2000):
        total += value * value % 7
    return total


def _spin_ops(operation: Callable[[], Any], slice_time: float, min_runs: int = 3) -> tuple[float, int]:
    runs = 0
    start = time.perf_counter()
    elapsed = 0.0
    while elapsed < slice_time or runs < min_runs:
        operation()
        runs += 1
        elapsed = time.perf_counter() - start
    return runs / elapsed, runs


def _time_ops_per_sec(
    operation: Callable[[], Any],
    min_time: float,
    repeats: int = 5,
) -> tuple[float, float, int]:
    """Time ``operation`` against the calibration workload, interleaved.

    Returns ``(ops_per_sec, normalized, total_runs)``.  Each repeat times a
    calibration slice immediately followed by an operation slice and records
    the ratio; the reported values are medians across repeats.  Interleaving
    matters on shared machines: a host-level slowdown burst hits the
    adjacent calibration slice too, so the *ratio* stays stable even when
    absolute rates swing.
    """
    operation()  # warm-up: caches, lazy imports, plan building
    slice_time = min_time / repeats
    rates: list[float] = []
    ratios: list[float] = []
    total_runs = 0
    for _ in range(repeats):
        calibration_ops, _ = _spin_ops(_calibration_spin, slice_time / 2)
        ops, runs = _spin_ops(operation, slice_time)
        rates.append(ops)
        ratios.append(ops / calibration_ops)
        total_runs += runs
    rates.sort()
    ratios.sort()
    middle = repeats // 2
    return rates[middle], ratios[middle], total_runs


def run_benchmarks(
    names: Iterable[str] | None = None,
    min_time: float = 0.2,
    label: str = "PR3",
    sharded_hub: bool = False,
    sharded_hub_messages: int = 250_000,
    journal: bool = False,
    journal_messages: int = 20_000,
    transform_cache: bool = False,
    transform_batch_size: int = 100,
    dataflow: bool = False,
) -> dict[str, Any]:
    """Run the selected benchmarks and return the result payload."""
    selected = list(names) if names is not None else list(BENCHMARKS)
    unknown = [name for name in selected if name not in BENCHMARKS]
    if unknown:
        raise KeyError(f"unknown benchmark(s): {unknown}; have {sorted(BENCHMARKS)}")
    calibration, _ = _spin_ops(_calibration_spin, min_time / 2)
    results: dict[str, Any] = {}
    for name in selected:
        operation = BENCHMARKS[name]()
        ops, normalized, runs = _time_ops_per_sec(operation, min_time)
        results[name] = {
            "ops_per_sec": round(ops, 2),
            "normalized": round(normalized, 6),
            "runs": runs,
        }
    payload: dict[str, Any] = {
        "schema": "repro-bench/1",
        "label": label,
        "python": platform.python_version(),
        "calibration_ops_per_sec": round(calibration, 2),
        "benchmarks": results,
        "derived": {},
    }
    derived = payload["derived"]
    if {"expression_eval_interpreted", "expression_eval_compiled"} <= results.keys():
        derived["expression_compile_speedup"] = round(
            results["expression_eval_compiled"]["ops_per_sec"]
            / results["expression_eval_interpreted"]["ops_per_sec"],
            2,
        )
    if {"mapping_apply_interpreted", "mapping_apply_compiled"} <= results.keys():
        derived["mapping_compile_speedup"] = round(
            results["mapping_apply_compiled"]["ops_per_sec"]
            / results["mapping_apply_interpreted"]["ops_per_sec"],
            2,
        )
    if {"add_partner_naive", "add_partner_advanced"} <= results.keys():
        derived["add_partner_advantage"] = round(
            results["add_partner_advanced"]["ops_per_sec"]
            / results["add_partner_naive"]["ops_per_sec"],
            2,
        )
    if "statespace_explore" in results:
        derived["statespace_states_per_sec"] = round(
            results["statespace_explore"]["ops_per_sec"]
            * _statespace_states_per_run(),
            1,
        )
        derived["statespace_reduction_ratio"] = _statespace_reduction_ratio()
    if "registry_sweep" in results:
        derived["registry_lint_cache_hit_rate"] = _registry_cache_hit_rate()
    if sharded_hub:
        from repro.analysis.sharded_hub import run_hub_benchmark

        hub = run_hub_benchmark(messages_per_config=sharded_hub_messages)
        payload["sharded_hub"] = hub
        if hub["scaling_4x"] is not None:
            derived["sharded_hub_scaling_4x"] = hub["scaling_4x"]
        if not hub["deterministic_trace_invariant"]:
            raise RuntimeError(
                "sharded hub: deterministic traces differ across shard counts"
            )
    if journal:
        from repro.analysis.journal_bench import run_journal_benchmark

        journal_payload = run_journal_benchmark(messages=journal_messages)
        payload["journal"] = journal_payload
        derived["journal_write_overhead"] = journal_payload[
            "journal_write_overhead"
        ]
        derived["recovery_events_per_sec"] = journal_payload[
            "recovery_events_per_sec"
        ]
        derived["recovery_time_per_1k_events_ms"] = journal_payload[
            "recovery_time_per_1k_events_ms"
        ]
    if transform_cache:
        from repro.analysis.transform_bench import run_transform_benchmark

        transform_payload = run_transform_benchmark(
            batch_size=transform_batch_size
        )
        payload["transform"] = transform_payload
        derived["transform_cache_hit_rate"] = transform_payload[
            "transform_cache_hit_rate"
        ]
        derived["transform_batch_speedup"] = transform_payload[
            "transform_batch_speedup"
        ]
    if dataflow:
        derived.update(_dataflow_metrics())
    return payload


# ---------------------------------------------------------------------------
# Regression gate
# ---------------------------------------------------------------------------


def check_against_baseline(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.25,
) -> list[str]:
    """Return regression messages (empty when the gate passes).

    Tracked hot paths are compared on *normalized* ops/sec (machine
    drift cancels out); derived speedups are compared against their
    acceptance floors.
    """
    problems: list[str] = []
    baseline_benchmarks = baseline.get("benchmarks", {})
    current_benchmarks = current.get("benchmarks", {})
    for name in TRACKED:
        base = baseline_benchmarks.get(name)
        now = current_benchmarks.get(name)
        if base is None or now is None:
            continue
        floor = base["normalized"] * (1.0 - tolerance)
        if now["normalized"] < floor:
            problems.append(
                f"{name}: normalized {now['normalized']:.4f} is below "
                f"{floor:.4f} (baseline {base['normalized']:.4f} "
                f"- {tolerance:.0%} tolerance)"
            )
    for metric, floor in SPEEDUP_FLOORS.items():
        value = current.get("derived", {}).get(metric)
        if value is not None and value < floor:
            problems.append(f"{metric}: {value:.2f}x is below the {floor:.1f}x floor")
    for metric, ceiling in CEILINGS.items():
        value = current.get("derived", {}).get(metric)
        if value is not None and value > ceiling:
            problems.append(
                f"{metric}: {value:.4f} is above the {ceiling:.2f} ceiling"
            )
    return problems


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the driver's options (shared by run_bench.py and repro bench)."""
    parser.add_argument(
        "--filter",
        help="run only benchmarks whose name contains this substring",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the machine-readable results to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed baseline JSON and exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional drop per tracked benchmark (default: 0.25)",
    )
    parser.add_argument(
        "--min-time", type=float, default=0.2,
        help="minimum seconds to spend per benchmark (default: 0.2)",
    )
    parser.add_argument(
        "--label", default="PR3", help="label recorded in the output payload"
    )
    parser.add_argument(
        "--sharded-hub", action="store_true",
        help="also run the sharded-hub throughput benchmark "
        "(msgs/sec at shard counts 1/2/4/8, ~1M messages)",
    )
    parser.add_argument(
        "--sharded-hub-messages", type=int, default=250_000, metavar="N",
        help="messages per shard-count configuration (default: 250000)",
    )
    parser.add_argument(
        "--journal", action="store_true",
        help="also run the durability benchmarks (journal write overhead "
        "on the sharded-hub path and recovery replay throughput)",
    )
    parser.add_argument(
        "--journal-messages", type=int, default=20_000, metavar="N",
        help="hub messages per journal-overhead run (default: 20000)",
    )
    parser.add_argument(
        "--transform-cache", action="store_true",
        help="also run the transformation benchmarks (content-addressed "
        "cache hit rate on a Zipf stream, columnar batch speedup, and the "
        "batched transform-hub trace-parity check)",
    )
    parser.add_argument(
        "--transform-batch-size", type=int, default=100, metavar="N",
        help="documents per transform_batch call (default: 100)",
    )
    parser.add_argument(
        "--dataflow", action="store_true",
        help="also derive the B2B7xx schema dataflow metrics (binding "
        "routes verified per second across the example fleet and the warm "
        "registry route-verdict cache hit rate)",
    )


def run(args: argparse.Namespace) -> int:
    """Execute the driver for parsed ``args``; returns the exit code."""
    names = list(BENCHMARKS)
    if args.filter:
        names = [name for name in names if args.filter in name]
        # With --sharded-hub an empty micro-benchmark selection is fine:
        # e.g. ``--sharded-hub --filter sharded`` runs only the hub.
        if not names and not (
            args.sharded_hub or args.journal or args.transform_cache
            or args.dataflow
        ):
            print(f"no benchmark matches filter {args.filter!r}", file=sys.stderr)
            return 2
    payload = run_benchmarks(
        names,
        min_time=args.min_time,
        label=args.label,
        sharded_hub=args.sharded_hub,
        sharded_hub_messages=args.sharded_hub_messages,
        journal=args.journal,
        journal_messages=args.journal_messages,
        transform_cache=args.transform_cache,
        transform_batch_size=args.transform_batch_size,
        dataflow=args.dataflow,
    )

    rows = [
        f"{name:32s} {entry['ops_per_sec']:>14,.1f} ops/s   "
        f"(normalized {entry['normalized']:.4f}, {entry['runs']} runs)"
        for name, entry in payload["benchmarks"].items()
    ]
    print("\n".join(rows))
    for metric, value in payload["derived"].items():
        unit = "" if metric.endswith(("_per_sec", "_ms", "_overhead")) else "x"
        print(f"{metric:32s} {value:>10.2f}{unit}")
    if "sharded_hub" in payload:
        hub = payload["sharded_hub"]
        print(f"\nsharded hub ({hub['total_messages']:,} messages total):")
        for shards in hub["shard_counts"]:
            entry = hub["parallel"][str(shards)]
            print(
                f"  {shards} shard(s) {entry['msgs_per_sec']:>12,.1f} msgs/s   "
                f"(x{hub['scaling'][str(shards)]:.2f}, "
                f"{entry['cross_shard_tasks']} cross-shard)"
            )
        print(
            "  deterministic trace invariant: "
            f"{hub['deterministic_trace_invariant']}"
        )
    if "transform" in payload:
        entry = payload["transform"]
        cache = entry["cache"]
        batch = entry["batch"]
        hub = entry["hub"]
        print("\ntransformation (cache + columnar batch):")
        print(
            f"  cache hit rate {cache['transform_cache_hit_rate']:>8.2%} on the "
            f"Zipf stream ({cache['hits']} hits / {cache['misses']} misses, "
            f"x{cache['cache_speedup']:.2f} wall time)"
        )
        print(
            f"  batch speedup  x{batch['transform_batch_speedup']:>7.2f} inbound "
            f"at {batch['batch_size']}-doc batches "
            f"(outbound x{batch['outbound']['speedup']:.2f})"
        )
        print(f"  hub trace parity across shards: {hub['trace_parity']}")
    if "journal" in payload:
        entry = payload["journal"]
        write = entry["write"]
        recovery = entry["recovery"]
        print("\ndurability (journal + recovery):")
        print(
            f"  write overhead {write['journal_write_overhead']:>8.2%} of the "
            f"hub path ({write['journal_cost_per_event_us']:.2f}us/event, "
            f"{write['records_journaled']} records)"
        )
        print(
            f"  recovery       {recovery['recovery_events_per_sec']:>10,.0f} "
            f"events/s ({recovery['recovery_time_per_1k_events_ms']:.1f} ms "
            f"per 1k events)"
        )

    if args.json:
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.json}")

    if args.check:
        with open(args.check, encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems = check_against_baseline(payload, baseline, tolerance=args.tolerance)
        if problems:
            print("\nREGRESSION GATE FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(f"\nregression gate OK against {args.check}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python benchmarks/run_bench.py``)."""
    parser = argparse.ArgumentParser(
        description="Benchmark the per-message hot paths and gate regressions"
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))
