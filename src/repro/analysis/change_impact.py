"""The Section 4.5 change catalogue, applied to both architectures.

Each :class:`ChangeScenario` performs the same *business* change twice —
once against the advanced public/private/binding model, once against the
naive monolithic workflow type — and reports the impact sets side by side.
The paper's claims under test:

* audit steps, transport acknowledgments: **local** in the advanced model;
* a new document field: **non-local** in both (unavoidable, §4.5);
* adding a partner / protocol / back end / private process: additive in
  the advanced model (zero pre-existing elements modified except business
  rules), but *modifying* the naive type's conditions, routing tables and
  step graph every time (§4.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.b2b.protocol import get_protocol
from repro.baselines.monolithic import (
    NaiveTopology,
    build_naive_seller_type,
    naive_element_index,
)
from repro.core.change import diff_indexes
from repro.core.integration import IntegrationModel
from repro.core.private_process import seller_po_process
from repro.core.public_process import PublicProcessDefinition, PublicStep
from repro.core.rules import BusinessRule, approval_rule_set, routing_rule_set
from repro.partners.agreement import TradingPartnerAgreement
from repro.partners.profile import TradingPartner
from repro.transform.catalog import build_standard_registry
from repro.transform.mapping import Field
from repro.workflow.definitions import WorkflowBuilder, WorkflowType

__all__ = ["ChangeScenario", "CHANGE_SCENARIOS", "change_table", "build_fig14_model"]


# ---------------------------------------------------------------------------
# Baseline deployments both sides start from (the Figure 9/14 topology)
# ---------------------------------------------------------------------------


def build_fig14_model(verify: bool = False) -> IntegrationModel:
    """The advanced model for the Figure 9/14 topology: EDI + RosettaNet,
    TP1 + TP2, SAP + Oracle, the paper's four approval rules.

    With ``verify=True`` the assembled model is statically verified
    (:mod:`repro.verify`) before being returned."""
    model = IntegrationModel("ACME")
    model.transforms = build_standard_registry()
    model.add_private_process(seller_po_process(owner="ACME"))
    model.add_protocol(get_protocol("edi-van"), "private-po-seller")
    model.add_protocol(get_protocol("rosettanet"), "private-po-seller")
    model.add_application("SAP", "sap-idoc", "private-po-seller")
    model.add_application("Oracle", "oracle-oif", "private-po-seller")
    model.partners.add_partner(TradingPartner("TP1", protocols=("edi-van",)))
    model.partners.add_agreement(TradingPartnerAgreement("TP1", "edi-van", "seller"))
    model.partners.add_partner(TradingPartner("TP2", protocols=("rosettanet",)))
    model.partners.add_agreement(TradingPartnerAgreement("TP2", "rosettanet", "seller"))
    model.rules.register(
        approval_rule_set(
            {
                ("SAP", "TP1"): 55000,
                ("SAP", "TP2"): 40000,
                ("Oracle", "TP1"): 55000,
                ("Oracle", "TP2"): 40000,
            }
        )
    )
    model.rules.register(routing_rule_set({"TP1": "SAP", "TP2": "Oracle"}))
    if verify:
        model.verify(strict=True)
    return model


def _naive_fig9_type(topology: NaiveTopology | None = None) -> WorkflowType:
    return build_naive_seller_type(topology or NaiveTopology.figure9(), name="naive-seller")


# ---------------------------------------------------------------------------
# Shared mutation helpers
# ---------------------------------------------------------------------------


def _with_extra_step(
    workflow_type: WorkflowType, step_id: str, after: str, label: str
) -> WorkflowType:
    """Rebuild ``workflow_type`` with one audit/noop step spliced in after
    ``after`` (re-pointing the original outgoing arcs through it)."""
    payload = workflow_type.to_dict()
    payload["steps"].append(
        {
            "kind": "activity",
            "step_id": step_id,
            "label": label,
            "join": "AND",
            "tags": ["audit"],
            "activity": "noop",
            "inputs": {},
            "outputs": {},
            "params": {},
        }
    )
    rewired = []
    for transition in payload["transitions"]:
        if transition["source"] == after:
            rewired.append({**transition, "source": step_id})
        else:
            rewired.append(transition)
    rewired.append(
        {"source": after, "target": step_id, "condition": None, "otherwise": False}
    )
    payload["transitions"] = rewired
    return WorkflowType.from_dict(payload)


def _replace_private(model: IntegrationModel, workflow_type: WorkflowType) -> None:
    model.private_processes[workflow_type.name] = workflow_type


# ---------------------------------------------------------------------------
# Scenario definitions
# ---------------------------------------------------------------------------


@dataclass
class ChangeScenario:
    """One business change applied to both architectures."""

    name: str
    description: str
    expected_advanced_locality: str
    apply_advanced: Callable[[IntegrationModel], None]
    naive_after: Callable[[], WorkflowType]

    def run(self) -> dict[str, object]:
        """Execute the scenario; returns the comparison row."""
        model = build_fig14_model()
        before = model.element_index()
        self.apply_advanced(model)
        advanced = diff_indexes(before, model.element_index(), label=self.name)

        naive_before = naive_element_index(_naive_fig9_type())
        naive_after = naive_element_index(self.naive_after())
        naive = diff_indexes(naive_before, naive_after, label=self.name)
        return {
            "scenario": self.name,
            "description": self.description,
            "advanced_impact": advanced.impact_count,
            "advanced_modified": len(advanced.modified),
            "advanced_locality": advanced.locality(),
            "expected_advanced_locality": self.expected_advanced_locality,
            "naive_impact": naive.impact_count,
            "naive_modified": len(naive.modified),
            "advanced_report": advanced,
            "naive_report": naive,
        }


# -- 1. audit step in the private process (§4.5: local) -----------------------


def _advanced_add_audit(model: IntegrationModel) -> None:
    _replace_private(
        model,
        _with_extra_step(
            model.private_processes["private-po-seller"],
            "audit_poa",
            after="extract_poa",
            label="Audit outgoing POA",
        ),
    )


def _naive_add_audit() -> WorkflowType:
    return _with_extra_step(
        _naive_fig9_type(), "audit_poa", after="extract_SAP_poa", label="Audit outgoing POA"
    )


# -- 2. transport acknowledgments in a public process (§4.5: local) ------------


def _with_transport_acks(definition: PublicProcessDefinition) -> PublicProcessDefinition:
    steps = []
    for step in definition.steps:
        steps.append(step)
        if step.kind == "receive":
            steps.append(
                PublicStep(f"{step.step_id}_ack", "send", step.doc_type, {"ack": True})
            )
        elif step.kind == "send":
            steps.append(
                PublicStep(f"{step.step_id}_ack", "receive", step.doc_type, {"ack": True})
            )
    return PublicProcessDefinition(
        definition.name, definition.protocol, definition.role, definition.wire_format, steps
    )


def _advanced_transport_acks(model: IntegrationModel) -> None:
    name = "rosettanet/3a4/seller"
    model.public_processes[name] = _with_transport_acks(model.public_processes[name])


def _naive_transport_acks() -> WorkflowType:
    """The naive type must weave acknowledgment steps around every
    receive/send of the affected protocol, inside the shared graph."""
    workflow_type = _naive_fig9_type()
    workflow_type = _with_extra_step(
        workflow_type, "rn_receipt_ack", after="decode_rosettanet", label="Send receipt ack"
    )
    return _with_extra_step(
        workflow_type, "rn_send_ack_wait", after="send_rosettanet", label="Await receipt ack"
    )


# -- 3. new document field (§4.5: non-local, unavoidably) ----------------------


def _advanced_new_field(model: IntegrationModel) -> None:
    # Every PO mapping gains a field rule...
    for mapping in model.transforms.mappings():
        if mapping.doc_type == "purchase_order":
            mapping.rules.append(Field("header.incoterms", "header.incoterms", required=False))
    # ... the wire contract version bumps in the public processes ...
    for name, definition in list(model.public_processes.items()):
        steps = [
            PublicStep(step.step_id, step.kind, step.doc_type,
                       {**step.params, "schema_version": 2})
            for step in definition.steps
        ]
        model.public_processes[name] = PublicProcessDefinition(
            definition.name, definition.protocol, definition.role,
            definition.wire_format, steps,
        )
    # ... and a business rule starts consulting the new field.
    rule_set = model.rules.get("check_need_for_approval")
    rule_set.remove("business rule 1")
    rule_set.add(
        BusinessRule(
            name="business rule 1",
            source="TP2",
            target="Oracle",
            expression="document.amount >= 40000 or document.header.incoterms == 'DDP'",
        )
    )


def _naive_new_field() -> WorkflowType:
    """In the naive type every decode/encode/transform step is revisited."""
    payload = _naive_fig9_type().to_dict()
    for step in payload["steps"]:
        if step["step_id"].startswith(("decode_", "encode_", "transform_")):
            step["params"] = {**step["params"], "schema_version": 2}
    return WorkflowType.from_dict(payload)


# -- 4. new partner on an existing protocol (§4.6: rules only) -----------------


def _advanced_add_partner(model: IntegrationModel) -> None:
    model.partners.add_partner(TradingPartner("TP4", protocols=("rosettanet",)))
    model.partners.add_agreement(TradingPartnerAgreement("TP4", "rosettanet", "seller"))
    approval = model.rules.get("check_need_for_approval")
    approval.add(BusinessRule("TP4 via SAP", source="TP4", target="SAP",
                              expression="document.amount >= 25000"))
    approval.add(BusinessRule("TP4 via Oracle", source="TP4", target="Oracle",
                              expression="document.amount >= 25000"))
    routing = model.rules.get("select_target_application")
    routing.add(BusinessRule("route TP4", source="TP4", expression="'SAP'"))


def _naive_add_partner() -> WorkflowType:
    topology = NaiveTopology.figure9()
    topology.partner_protocol["TP4"] = "rosettanet"
    topology.thresholds["TP4"] = 25000
    topology.routing["TP4"] = "SAP"
    return _naive_fig9_type(topology)


# -- 5. new partner on a NEW protocol (Figure 10) --------------------------------


def _advanced_add_partner_new_protocol(model: IntegrationModel) -> None:
    model.add_protocol(get_protocol("oagis-http"), "private-po-seller")
    model.partners.add_partner(TradingPartner("TP3", protocols=("oagis-http",)))
    model.partners.add_agreement(TradingPartnerAgreement("TP3", "oagis-http", "seller"))
    approval = model.rules.get("check_need_for_approval")
    approval.add(BusinessRule("TP3 via SAP", source="TP3", target="SAP",
                              expression="document.amount >= 10000"))
    approval.add(BusinessRule("TP3 via Oracle", source="TP3", target="Oracle",
                              expression="document.amount >= 10000"))
    routing = model.rules.get("select_target_application")
    routing.add(BusinessRule("route TP3", source="TP3", expression="'SAP'"))


def _naive_add_partner_new_protocol() -> WorkflowType:
    return build_naive_seller_type(NaiveTopology.figure10(), name="naive-seller")


# -- 6. new back-end application --------------------------------------------------


def _advanced_add_backend(model: IntegrationModel) -> None:
    model.add_application("SAP-EU", "sap-idoc", "private-po-seller")
    approval = model.rules.get("check_need_for_approval")
    approval.add(BusinessRule("TP1 via SAP-EU", source="TP1", target="SAP-EU",
                              expression="document.amount >= 55000"))
    approval.add(BusinessRule("TP2 via SAP-EU", source="TP2", target="SAP-EU",
                              expression="document.amount >= 40000"))


def _naive_add_backend() -> WorkflowType:
    topology = NaiveTopology.figure9()
    topology.backends["SAP-EU"] = "sap-idoc"
    return _naive_fig9_type(topology)


# -- 7. rule threshold change -------------------------------------------------------


def _advanced_change_threshold(model: IntegrationModel) -> None:
    rule_set = model.rules.get("check_need_for_approval")
    rule_set.remove("business rule 2")
    rule_set.add(
        BusinessRule("business rule 2", source="TP1", target="SAP",
                     expression="document.amount >= 60000")
    )


def _naive_change_threshold() -> WorkflowType:
    topology = NaiveTopology.figure9()
    topology.thresholds["TP1"] = 60000
    return _naive_fig9_type(topology)


# -- 8. partner off-boarding ----------------------------------------------------------


def _advanced_remove_partner(model: IntegrationModel) -> None:
    model.partners.remove_partner("TP2")
    approval = model.rules.get("check_need_for_approval")
    for rule in list(approval.rules):
        if rule.source == "TP2":
            approval.remove(rule.name)
    routing = model.rules.get("select_target_application")
    for rule in list(routing.rules):
        if rule.source == "TP2":
            routing.remove(rule.name)


def _naive_remove_partner() -> WorkflowType:
    topology = NaiveTopology.figure9()
    del topology.partner_protocol["TP2"]
    del topology.thresholds["TP2"]
    del topology.routing["TP2"]
    return _naive_fig9_type(topology)


# -- 9. a second private process (invoice handling) -----------------------------------


def _advanced_add_private_process(model: IntegrationModel) -> None:
    builder = WorkflowBuilder("private-invoice", owner=model.name)
    builder.variable("document").variable("source", "")
    builder.activity(
        "check_invoice",
        "evaluate_business_rule",
        params={"function": "check_need_for_approval"},
        inputs={"source": "source", "target": "source", "document": "document"},
        outputs={"flag": "result"},
        tags=("business-rule",),
    )
    builder.activity("record_invoice", "noop", after="check_invoice")
    model.add_private_process(builder.build())


def _naive_add_private_process() -> WorkflowType:
    """The naive architecture needs a *second monolithic type* replicating
    all protocol and back-end handling; measured here as the combined
    index of both types."""
    return build_naive_seller_type(NaiveTopology.figure9(), name="naive-invoice")


CHANGE_SCENARIOS: list[ChangeScenario] = [
    ChangeScenario(
        "add_audit_step",
        "Add an audit step to the outgoing POA path (the paper's §4.5 local example)",
        "local",
        _advanced_add_audit,
        _naive_add_audit,
    ),
    ChangeScenario(
        "model_transport_acks",
        "Explicitly model transport acknowledgments for RosettaNet (§4.5 local example)",
        "local",
        _advanced_transport_acks,
        _naive_transport_acks,
    ),
    ChangeScenario(
        "add_document_field",
        "Add a field to the purchase-order document (§4.5 non-local example)",
        "non-local",
        _advanced_new_field,
        _naive_new_field,
    ),
    ChangeScenario(
        "add_partner_same_protocol",
        "On-board TP4 speaking an already-deployed protocol (§4.6: rules only)",
        "local",
        _advanced_add_partner,
        _naive_add_partner,
    ),
    ChangeScenario(
        "add_partner_new_protocol",
        "On-board TP3 with OAGIS (the Figure 9 -> Figure 10 change)",
        "local",
        _advanced_add_partner_new_protocol,
        _naive_add_partner_new_protocol,
    ),
    ChangeScenario(
        "add_backend",
        "Deploy a second SAP-like back end (§4.6)",
        "local",
        _advanced_add_backend,
        _naive_add_backend,
    ),
    ChangeScenario(
        "change_rule_threshold",
        "Raise TP1's approval threshold to 60 000",
        "local",
        _advanced_change_threshold,
        _naive_change_threshold,
    ),
    ChangeScenario(
        "remove_partner",
        "Off-board TP2",
        "local",
        _advanced_remove_partner,
        _naive_remove_partner,
    ),
    ChangeScenario(
        "add_private_process",
        "Introduce invoice handling as a new process (§4.6)",
        "local",
        _advanced_add_private_process,
        _naive_add_private_process,
    ),
]


def change_table() -> list[dict[str, object]]:
    """Run every scenario; returns the §4.5/§4.6 comparison table rows."""
    rows = []
    for scenario in CHANGE_SCENARIOS:
        row = scenario.run()
        if scenario.name == "add_private_process":
            # The naive 'after' is a second full type; its whole index is new.
            naive_second = naive_element_index(_naive_add_private_process())
            row["naive_impact"] = len(naive_second)
            row["naive_modified"] = 0
        rows.append(row)
    return rows
