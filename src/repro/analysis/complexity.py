"""Model-complexity growth curves: naive vs advanced (F9/F10, §4.6).

The paper's Figures 9 and 10 are snapshots of the naive workflow type at
(2 protocols, 2 partners, 2 back ends) and (3, 3, 2); its qualitative
claim is that the naive type grows with the *product* of the dimensions
while the advanced model grows with their *sum*.  These helpers turn that
claim into data: per-dimension sweeps of total authored elements for both
architectures.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.scenarios import advanced_synthetic_model
from repro.baselines.monolithic import NaiveTopology, build_naive_seller_type, naive_element_index
from repro.core.change import ChangeReport, diff_indexes
from repro.core.metrics import ModelMetrics, measure_model, measure_workflow_type

__all__ = [
    "naive_metrics",
    "advanced_metrics",
    "growth_rows",
    "figure9_to_figure10_change",
]


def naive_metrics(protocol_count: int, partner_count: int, backend_count: int) -> ModelMetrics:
    """Size the naive monolithic workflow type for a topology."""
    topology = NaiveTopology.synthetic(protocol_count, partner_count, backend_count)
    return measure_workflow_type(build_naive_seller_type(topology))


def advanced_metrics(protocol_count: int, partner_count: int, backend_count: int) -> ModelMetrics:
    """Size the advanced integration model for a topology."""
    return measure_model(
        advanced_synthetic_model(protocol_count, partner_count, backend_count)
    )


def growth_rows(
    dimension: str,
    values: Iterable[int],
    base: tuple[int, int, int] = (2, 2, 2),
) -> list[dict[str, object]]:
    """Sweep one dimension and report both architectures' sizes.

    :param dimension: ``protocols`` | ``partners`` | ``backends``.
    :param values: the swept dimension's values.
    :param base: (protocols, partners, backends) for the fixed dimensions.
    :returns: one row per value with naive/advanced element counts.
    """
    index = {"protocols": 0, "partners": 1, "backends": 2}[dimension]
    rows: list[dict[str, object]] = []
    for value in values:
        topology = list(base)
        topology[index] = value
        # A topology needs at least one partner per protocol to be coherent.
        if dimension == "protocols":
            topology[1] = max(topology[1], value)
        naive = naive_metrics(*topology)
        advanced = advanced_metrics(*topology)
        rows.append(
            {
                "dimension": dimension,
                "value": value,
                "topology": tuple(topology),
                "naive_total": naive.total_elements,
                "advanced_total": advanced.total_elements,
                "naive_steps": naive.workflow_steps,
                "advanced_private_steps": advanced.workflow_steps,
                "naive_transform_steps": naive.inline_transform_steps,
                "advanced_mappings": advanced.mappings,
                "naive_decision_terms": naive.decision_surface,
                "advanced_rules": advanced.business_rules,
            }
        )
    return rows


def figure9_to_figure10_change() -> dict[str, object]:
    """Reproduce the Figure 9 -> Figure 10 jump.

    The paper: "the workflow type has to be changed significantly to
    incorporate the additional protocol as well as business rule."
    Returns the naive before/after sizes and the step-granular change
    report, plus the advanced counterpart for contrast.
    """
    naive_before = build_naive_seller_type(NaiveTopology.figure9(), name="naive-seller")
    naive_after = build_naive_seller_type(NaiveTopology.figure10(), name="naive-seller")
    naive_change: ChangeReport = diff_indexes(
        naive_element_index(naive_before),
        naive_element_index(naive_after),
        label="figure9 -> figure10 (naive)",
    )
    metrics_before = measure_workflow_type(naive_before)
    metrics_after = measure_workflow_type(naive_after)

    # Advanced counterpart: same topology growth, measured on the model.
    advanced_before = advanced_metrics(2, 2, 2)
    advanced_after = advanced_metrics(3, 3, 2)
    return {
        "naive_steps_before": metrics_before.workflow_steps,
        "naive_steps_after": metrics_after.workflow_steps,
        "naive_total_before": metrics_before.total_elements,
        "naive_total_after": metrics_after.total_elements,
        "naive_elements_touched": naive_change.impact_count,
        "naive_elements_modified": len(naive_change.modified),
        "naive_report": naive_change,
        "advanced_total_before": advanced_before.total_elements,
        "advanced_total_after": advanced_after.total_elements,
        "advanced_private_steps_before": advanced_before.workflow_steps,
        "advanced_private_steps_after": advanced_after.workflow_steps,
    }
