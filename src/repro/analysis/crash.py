"""Crash/recovery harness: kill the hub mid-RNIF-exchange, recover, prove
exactly-once.

The acceptance experiment for the durability layer
(:mod:`repro.runtime.journal` / :mod:`repro.runtime.recovery`).  For each
of the four architectures, on both the plain :class:`Kernel` and a
4-shard deterministic :class:`ShardedKernel`:

1. **Reference run** — drive N purchase orders end to end with a
   write-ahead journal attached (every order is a ``log_command`` record
   written *before* it executes; every lifecycle event is journaled
   before observers apply it), taking one mid-run snapshot.  Because the
   whole simulation is deterministic, the reference journal bytes *are*
   the ground truth for an uncrashed run.
2. **Crash** — copy the journal directory and damage it the way a kill
   at a chosen moment would: truncate cleanly before a command record
   (``pre-journal``), cleanly after any record (``post-append``), tear a
   record mid-frame (``mid-append``, caught by the CRC), corrupt the
   snapshot file (``mid-snapshot``), or cut at a randomized journal
   offset (``random``).  Snapshots "from the future" of the cut are
   removed, since a real crash at that moment could not have written
   them.  For a sharded journal each shard's tail is cut independently
   at the same global sequence, exercising the contiguous-prefix merge.
3. **Recover + resume** — :func:`repro.runtime.recovery.recover` rebuilds
   the projection, then a fresh world re-executes the journaled command
   WAL in order (using only the recovered payloads, never the original
   script) and finally the *client retries its entire script*, the way a
   real partner re-submits after a hub outage.  Retries of journaled
   commands are suppressed by command id; the rest execute for the first
   time.

Exactly-once then has a concrete meaning checked per run: every PO
appears in exactly one ERP order book exactly once (the ERP simulators
raise on duplicate POs, so a duplicate cannot pass silently), the
resumed journal is **byte-identical** to the uncrashed reference journal,
and so is the rendered kernel trace.  The suppressed-retry count must
equal the replayed-command count — the two sets partition the script.
"""

from __future__ import annotations

import json
import random
import shutil
import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.runtime import Kernel, ShardedKernel
from repro.runtime.journal import (
    SHARD_DIR_PREFIX,
    JournalRecord,
    attach_journal,
    read_segment_dir,
    segment_files,
)
from repro.runtime.recovery import RecoveredState, recover

__all__ = [
    "ARCHITECTURES",
    "CRASH_POINTS",
    "KERNELS",
    "CrashReport",
    "run_crash_case",
    "run_crash_matrix",
    "render_reports",
]

ARCHITECTURES = ("advanced", "monolithic", "cooperative", "distributed")
CRASH_POINTS = ("pre-journal", "mid-append", "post-append", "mid-snapshot", "random")
KERNELS = ("kernel", "sharded-4")

LINES = [{"sku": "X", "quantity": 2, "unit_price": 100.0}]
TRACE_CAPACITY = 65_536


class CrashHarnessError(AssertionError):
    """A crash case violated the exactly-once contract."""


# ---------------------------------------------------------------------------
# Scenario drivers: one order end-to-end, repeatable, per architecture
# ---------------------------------------------------------------------------


class _AdvancedDriver:
    """The paper's hub architecture: two enterprises over RNIF-reliable
    messaging (this is the literal mid-RNIF-exchange crash target)."""

    name = "advanced"

    def __init__(self, runtime_factory: Callable | None) -> None:
        from repro.analysis.scenarios import build_two_enterprise_pair
        from repro.core.enterprise import run_community

        self._run_community = run_community
        self.pair = build_two_enterprise_pair(
            "rosettanet", seller_delay=0.0, runtime=runtime_factory
        )
        self.runtime = self.pair.runtime
        self.trace = self.runtime.enable_trace(TRACE_CAPACITY)

    def execute(self, po_number: str, lines: list[dict[str, Any]]) -> None:
        instance_id = self.pair.buyer.submit_order("SAP", "ACME", po_number, lines)
        self._run_community(self.pair.enterprises())
        status = self.pair.buyer.instance(instance_id).status
        if status != "completed":
            raise CrashHarnessError(f"order {po_number} ended {status!r}")

    def ledger(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for backend in self.pair.seller.backends.values():
            for po_number in backend.orders:
                counts[po_number] = counts.get(po_number, 0) + 1
        return counts

    def dedup_uncovered(self, recovered: RecoveredState) -> int:
        """Journaled delivered-message ids the resumed endpoints forgot.

        Deterministic re-execution regenerates the same message ids, so a
        correctly resumed world already remembers every id the journal
        proves was delivered pre-crash — ``restore_dedup`` must find
        nothing new, meaning any partner retransmission from before the
        crash stays suppressed.
        """
        uncovered = 0
        for enterprise in (self.pair.buyer, self.pair.seller):
            endpoint = enterprise.reliable
            uncovered += endpoint.restore_dedup(
                recovered.projector.dedup_ids(endpoint.address)
            )
        return uncovered


class _MonolithicDriver:
    """Figure 9 baseline: naive seller runtime fed EDI over the VAN."""

    name = "monolithic"

    def __init__(self, runtime_factory: Callable | None) -> None:
        from repro.backend import OracleSimulator, SapSimulator
        from repro.baselines.monolithic import (
            NaiveClient,
            NaiveSellerRuntime,
            NaiveTopology,
            build_naive_seller_type,
        )
        from repro.documents import edi
        from repro.documents.normalized import make_purchase_order
        from repro.messaging.network import NetworkConditions, SimulatedNetwork
        from repro.sim import EventScheduler
        from repro.transform.catalog import build_standard_registry

        self._edi = edi
        self._make_po = make_purchase_order
        self._registry = build_standard_registry()
        self.scheduler = EventScheduler()
        runtime = runtime_factory(self.scheduler.clock) if runtime_factory else None
        network = SimulatedNetwork(
            self.scheduler, NetworkConditions.perfect(), seed=3, runtime=runtime
        )
        self.runtime = network.runtime
        self.trace = self.runtime.enable_trace(TRACE_CAPACITY)
        self.seller = NaiveSellerRuntime(
            "ACME",
            network,
            build_naive_seller_type(NaiveTopology.figure9()),
            {
                "SAP": SapSimulator("SAP", scheduler=self.scheduler),
                "Oracle": OracleSimulator("Oracle", scheduler=self.scheduler),
            },
        )
        self.client = NaiveClient("TP1", network)

    def execute(self, po_number: str, lines: list[dict[str, Any]]) -> None:
        po = self._make_po(po_number, "TP1", "ACME", lines)
        wire = self._edi.to_wire(self._registry.transform(po, self._edi.EDI_X12))
        self.client.send_po("ACME", "edi-van", wire, f"conv-{po_number}")
        self.scheduler.run_until_idle()
        if not any(
            backend.has_order(po_number) for backend in self.seller.backends.values()
        ):
            raise CrashHarnessError(f"order {po_number} never reached a backend")

    def ledger(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for backend in self.seller.backends.values():
            for po_number in backend.orders:
                counts[po_number] = counts.get(po_number, 0) + 1
        return counts

    def dedup_uncovered(self, recovered: RecoveredState) -> int:
        return 0  # the naive baseline has no reliable-messaging layer


class _CooperativeDriver:
    """Figure 8 baseline: buyer/seller cooperative workflow community."""

    name = "cooperative"

    def __init__(self, runtime_factory: Callable | None) -> None:
        from repro.backend import OracleSimulator, SapSimulator
        from repro.baselines.cooperative import CooperativeCommunity
        from repro.messaging.network import NetworkConditions, SimulatedNetwork
        from repro.sim import EventScheduler

        self.scheduler = EventScheduler()
        runtime = runtime_factory(self.scheduler.clock) if runtime_factory else None
        network = SimulatedNetwork(
            self.scheduler, NetworkConditions.perfect(), seed=11, runtime=runtime
        )
        self.runtime = network.runtime
        self.trace = self.runtime.enable_trace(TRACE_CAPACITY)
        self.community = CooperativeCommunity(
            network,
            "TP1",
            "ACME",
            SapSimulator("SAP", scheduler=self.scheduler),
            OracleSimulator("Oracle", scheduler=self.scheduler),
            protocol_name="edi-van",
            buyer_threshold=10000,
            seller_thresholds={"TP1": 550000},
        )

    def execute(self, po_number: str, lines: list[dict[str, Any]]) -> None:
        conversation_id = self.community.submit_order(po_number, lines)
        self.community.run()
        status = self.community.buyer_instance(conversation_id).status
        if status != "completed":
            raise CrashHarnessError(f"order {po_number} ended {status!r}")

    def ledger(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for po_number in self.community.seller.backend.orders:
            counts[po_number] = counts.get(po_number, 0) + 1
        return counts

    def dedup_uncovered(self, recovered: RecoveredState) -> int:
        return 0  # raw endpoints; dedup lives in the advanced layer only


class _DistributedDriver:
    """Figure 5(b) baseline: remote-subworkflow hand-over between two WFMSs.

    ``run_distributed_roundtrip`` deploys its workflow types, so each
    order gets fresh participant engines — all sharing the one kernel
    under test, exactly like a WFMS pool on a single hub.
    """

    name = "distributed"

    def __init__(self, runtime_factory: Callable | None) -> None:
        from repro.sim import Clock

        self.runtime = runtime_factory(Clock()) if runtime_factory else Kernel()
        self.trace = self.runtime.enable_trace(TRACE_CAPACITY)
        self._order_books: list[dict[str, Any]] = []

    def execute(self, po_number: str, lines: list[dict[str, Any]]) -> None:
        from repro.backend import OracleSimulator, SapSimulator
        from repro.baselines.distributed_interorg import (
            build_interorg_roundtrip_types,
            make_participant_engine,
            run_distributed_roundtrip,
        )

        left_erp = SapSimulator("SAP")
        right_erp = OracleSimulator("Oracle")
        left = make_participant_engine("left", left_erp, runtime=self.runtime)
        right = make_participant_engine("right", right_erp, runtime=self.runtime)
        left_erp.enter_order(po_number, "BuyerCo", "SellerCo", lines)
        types = build_interorg_roundtrip_types(
            "BuyerCo",
            "SellerCo",
            "SAP",
            "sap-idoc",
            "Oracle",
            "oracle-oif",
            left_threshold=10000,
            right_thresholds={"BuyerCo": 550000},
            distributed=True,
            remote_engine="right-wfms",
        )
        total = sum(line["quantity"] * line["unit_price"] for line in lines)
        result = run_distributed_roundtrip(
            left, right, types, po_number, total, "BuyerCo"
        )
        if result.instance.status != "completed":
            raise CrashHarnessError(
                f"order {po_number} ended {result.instance.status!r}"
            )
        self._order_books.append(right_erp.orders)

    def ledger(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for book in self._order_books:
            for po_number in book:
                counts[po_number] = counts.get(po_number, 0) + 1
        return counts

    def dedup_uncovered(self, recovered: RecoveredState) -> int:
        return 0  # in-process hand-over, no wire retransmissions


_DRIVERS = {
    "advanced": _AdvancedDriver,
    "monolithic": _MonolithicDriver,
    "cooperative": _CooperativeDriver,
    "distributed": _DistributedDriver,
}


def _make_driver(architecture: str, kernel_kind: str):
    if architecture not in _DRIVERS:
        raise ValueError(f"unknown architecture {architecture!r}")
    if kernel_kind == "kernel":
        factory = None
    elif kernel_kind.startswith("sharded-"):
        shards = int(kernel_kind.removeprefix("sharded-"))
        factory = lambda clock: ShardedKernel(shards=shards, clock=clock)  # noqa: E731
    else:
        raise ValueError(f"unknown kernel kind {kernel_kind!r}")
    return _DRIVERS[architecture](factory)


# ---------------------------------------------------------------------------
# Reference run and crash simulation
# ---------------------------------------------------------------------------


def _script(orders: int) -> list[dict[str, Any]]:
    return [
        {
            "id": f"cmd-{index:04d}",
            "op": "submit_order",
            "args": {"po_number": f"PO-{index:04d}", "lines": LINES},
        }
        for index in range(orders)
    ]


def _run_reference(
    architecture: str,
    kernel_kind: str,
    journal_dir: Path,
    script: list[dict[str, Any]],
    snapshot_after: int,
):
    driver = _make_driver(architecture, kernel_kind)
    journal = attach_journal(driver.runtime, journal_dir, flush_interval=1)
    for index, command in enumerate(script):
        journal.log_command(command["id"], command["op"], command["args"])
        driver.execute(**command["args"])
        if index + 1 == snapshot_after:
            journal.snapshot()
    journal.close()
    return driver


def _journal_dirs(directory: Path) -> list[Path]:
    shard_dirs = sorted(
        path
        for path in directory.iterdir()
        if path.is_dir() and path.name.startswith(SHARD_DIR_PREFIX)
    )
    return shard_dirs or [directory]


def _all_records(directory: Path) -> list[tuple[Path, JournalRecord]]:
    located: list[tuple[Path, JournalRecord]] = []
    for sub in _journal_dirs(directory):
        records, truncations = read_segment_dir(sub)
        if truncations:
            raise CrashHarnessError(f"reference journal corrupt: {truncations}")
        located.extend((sub, record) for record in records)
    located.sort(key=lambda pair: pair[1].seq)
    return located


def _journal_bytes(directory: Path) -> dict[str, bytes]:
    return {
        sub.name if sub != directory else ".": b"".join(
            path.read_bytes() for path in segment_files(sub)
        )
        for sub in _journal_dirs(directory)
    }


def _truncate_dir_at(directory: Path, cut_seq: int, tear: bool) -> None:
    """Damage one journal tree as a kill at global sequence ``cut_seq`` would.

    Every shard keeps exactly its records with ``seq < cut_seq``; with
    ``tear``, the shard that owns ``cut_seq`` additionally keeps half of
    that record's frame (a torn in-progress append).
    """
    for sub in _journal_dirs(directory):
        drop_rest = False
        for segment in segment_files(sub):
            if drop_rest:
                segment.unlink()
                continue
            records, _ = read_segment_dir_single(segment)
            cut_at: int | None = None
            for record in records:
                if record.seq >= cut_seq:
                    cut_at = record.offset
                    if tear and record.seq == cut_seq:
                        cut_at = record.offset + max(
                            1, (record.end_offset - record.offset) // 2
                        )
                    break
            if cut_at is not None:
                with segment.open("rb+") as handle:
                    handle.truncate(cut_at)
                if cut_at == 0:
                    segment.unlink()
                drop_rest = True
    # A snapshot taken at or past the cut cannot exist at crash time.
    for snapshot in directory.glob("snapshot-*.json"):
        if int(snapshot.name[len("snapshot-") : -len(".json")]) >= cut_seq:
            snapshot.unlink()


def read_segment_dir_single(segment: Path) -> tuple[list[JournalRecord], list]:
    """Read one segment file's whole records (offsets are file-local)."""
    records: list[JournalRecord] = []
    offset = 0
    from repro.runtime.journal import _parse_line  # framing internals

    with segment.open("rb") as handle:
        for line in handle:
            parsed = _parse_line(line)
            if isinstance(parsed, str):
                return records, [parsed]
            seq, kind, payload = parsed
            end = offset + len(line)
            records.append(JournalRecord(seq, kind, payload, segment.name, offset, end))
            offset = end
    return records, []


def simulate_crash(
    reference_dir: Path, crashed_dir: Path, crash_point: str, rng: random.Random
) -> int:
    """Copy the reference journal and damage it per ``crash_point``.

    Returns the global cut sequence (records with ``seq >= cut`` are
    gone, modulo the torn half-frame of ``mid-append``).
    """
    shutil.copytree(reference_dir, crashed_dir)
    located = _all_records(crashed_dir)
    if not located:
        raise CrashHarnessError("reference journal is empty")
    records = [record for _, record in located]
    snapshots = sorted(crashed_dir.glob("snapshot-*.json"))

    if crash_point == "pre-journal":
        commands = [record for record in records if record.kind == "command"]
        cut = rng.choice(commands).seq
        _truncate_dir_at(crashed_dir, cut, tear=False)
    elif crash_point == "post-append":
        cut = rng.choice(records).seq + 1
        _truncate_dir_at(crashed_dir, cut, tear=False)
    elif crash_point == "mid-append":
        cut = rng.choice(records).seq
        _truncate_dir_at(crashed_dir, cut, tear=True)
    elif crash_point == "mid-snapshot":
        if not snapshots:
            raise CrashHarnessError("mid-snapshot case needs a snapshot")
        latest = snapshots[-1]
        snapshot_seq = int(latest.name[len("snapshot-") : -len(".json")])
        cut = rng.choice([r.seq for r in records if r.seq > snapshot_seq] or [snapshot_seq + 1])
        _truncate_dir_at(crashed_dir, cut, tear=False)
        # ... and the snapshot write itself was torn by the same kill.
        blob = latest.read_bytes()
        latest.write_bytes(blob[: max(1, len(blob) // 2)])
    elif crash_point == "random":
        cut = rng.randrange(0, records[-1].seq + 2)
        _truncate_dir_at(crashed_dir, cut, tear=rng.random() < 0.5)
    else:
        raise ValueError(f"unknown crash point {crash_point!r}")
    return cut


# ---------------------------------------------------------------------------
# Recover + resume
# ---------------------------------------------------------------------------


@dataclass
class CrashReport:
    """Outcome of one (architecture, kernel, crash point) crash case."""

    architecture: str
    kernel: str
    crash_point: str
    seed: int
    orders: int
    cut_seq: int = -1
    reference_records: int = 0
    recovered_records: int = 0
    truncations: list[str] = field(default_factory=list)
    snapshot_seq: int = -1
    commands_replayed: int = 0
    commands_retried: int = 0
    retries_suppressed: int = 0
    orders_lost: list[str] = field(default_factory=list)
    orders_duplicated: list[str] = field(default_factory=list)
    dedup_uncovered: int = 0
    journal_identical: bool = False
    trace_identical: bool = False
    ok: bool = False

    def as_dict(self) -> dict[str, Any]:
        return dict(self.__dict__)

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"{status:4} {self.architecture:<12} {self.kernel:<9} "
            f"{self.crash_point:<13} cut@{self.cut_seq:<5} "
            f"recovered {self.recovered_records}/{self.reference_records:<5} "
            f"replayed {self.commands_replayed} retried {self.commands_retried} "
            f"suppressed {self.retries_suppressed}"
        )


def run_crash_case(
    architecture: str,
    kernel_kind: str,
    crash_point: str,
    orders: int = 6,
    seed: int = 0,
    workdir: str | Path | None = None,
) -> CrashReport:
    """Run one full reference/crash/recover/resume cycle and verify it."""
    report = CrashReport(architecture, kernel_kind, crash_point, seed, orders)
    cell = f"{architecture}/{kernel_kind}/{crash_point}".encode()
    rng = random.Random(zlib.crc32(cell) ^ seed)
    base = Path(workdir) if workdir is not None else Path(tempfile.mkdtemp(prefix="repro-crash-"))
    base.mkdir(parents=True, exist_ok=True)
    reference_dir = base / "reference"
    crashed_dir = base / "crashed"
    resumed_dir = base / "resumed"
    script = _script(orders)

    reference_driver = _run_reference(
        architecture, kernel_kind, reference_dir, script, snapshot_after=orders // 2
    )
    report.reference_records = len(_all_records(reference_dir))
    report.cut_seq = simulate_crash(reference_dir, crashed_dir, crash_point, rng)

    recovered = recover(crashed_dir)
    report.recovered_records = len(recovered.records)
    report.truncations = [
        f"{t.segment}@{t.offset}: {t.reason}" for t in recovered.truncations
    ]
    report.snapshot_seq = recovered.snapshot_seq

    resumed_driver = _make_driver(architecture, kernel_kind)
    journal = attach_journal(resumed_driver.runtime, resumed_dir, flush_interval=1)
    executed: set[str] = set()
    # Phase A: deterministic replay of the recovered command WAL — args come
    # from the journal, not the script; the journal alone must suffice.
    for command_id in recovered.projector.command_order:
        entry = recovered.projector.commands[command_id]
        journal.log_command(command_id, entry["op"], entry["args"])
        resumed_driver.execute(**entry["args"])
        executed.add(command_id)
        report.commands_replayed += 1
    # Phase B: the client re-submits its whole script (it cannot know how
    # far the hub got); journaled commands are suppressed by id.
    for command in script:
        if command["id"] in executed:
            report.retries_suppressed += 1
            continue
        journal.log_command(command["id"], command["op"], command["args"])
        resumed_driver.execute(**command["args"])
        executed.add(command["id"])
        report.commands_retried += 1
    journal.close()

    report.dedup_uncovered = resumed_driver.dedup_uncovered(recovered)

    ledger = resumed_driver.ledger()
    expected = [command["args"]["po_number"] for command in script]
    report.orders_lost = [po for po in expected if ledger.get(po, 0) == 0]
    report.orders_duplicated = sorted(
        po for po, count in ledger.items() if count > 1 or po not in expected
    )
    report.journal_identical = _journal_bytes(resumed_dir) == _journal_bytes(
        reference_dir
    )
    report.trace_identical = (
        resumed_driver.trace.render() == reference_driver.trace.render()
    )
    report.ok = (
        not report.orders_lost
        and not report.orders_duplicated
        and report.journal_identical
        and report.trace_identical
        and report.retries_suppressed == report.commands_replayed
        and report.commands_replayed + report.commands_retried == orders
        and report.dedup_uncovered == 0
    )
    if workdir is None:
        shutil.rmtree(base, ignore_errors=True)
    return report


def run_crash_matrix(
    architectures: tuple[str, ...] = ARCHITECTURES,
    kernels: tuple[str, ...] = KERNELS,
    crash_points: tuple[str, ...] = CRASH_POINTS,
    orders: int = 6,
    seed: int = 0,
) -> list[CrashReport]:
    """Run the full crash matrix; returns one report per cell."""
    reports = []
    for architecture in architectures:
        for kernel_kind in kernels:
            for crash_point in crash_points:
                reports.append(
                    run_crash_case(
                        architecture, kernel_kind, crash_point, orders, seed
                    )
                )
    return reports


def render_reports(reports: list[CrashReport]) -> str:
    lines = [report.describe() for report in reports]
    failed = [report for report in reports if not report.ok]
    lines.append(
        f"{len(reports) - len(failed)}/{len(reports)} crash cases passed"
        + (f" — {len(failed)} FAILED" if failed else "")
    )
    return "\n".join(lines)


def reports_json(reports: list[CrashReport]) -> str:
    return json.dumps(
        {
            "schema": "repro-crash/1",
            "cases": [report.as_dict() for report in reports],
            "passed": sum(1 for report in reports if report.ok),
            "failed": sum(1 for report in reports if not report.ok),
        },
        indent=2,
        sort_keys=True,
    )
