"""Journal cost/recovery benchmarks: durability must stay off the hot path.

Two numbers gate the durability layer in CI:

* ``journal_write_overhead`` — fractional wall-time cost of write-ahead
  journaling on the sharded-hub throughput path.  The measured workload
  is the §4.6 hub benchmark exactly as PR 5 ships it
  (:class:`repro.analysis.sharded_hub._HubWorkload`: deterministic
  4-shard drain, one lifecycle event per message, every 500th message
  paying a calibrated durable-commit wait sized to ``wait_factor x``
  the per-message Python cost).  The workload executes bare and with a
  :class:`~repro.runtime.journal.ShardedJournal` attached; see
  :func:`measure_write_overhead` for how the commit-wait budget enters
  the ratio.  Ceiling: 15%.  The fused per-class event framer, the
  cached JSON encoder, and group-commit buffered appends are what keep
  it there.

  ``journal_write_overhead_cpu`` is reported alongside (not gated): the
  same comparison with commit waits disabled, i.e. journaling cost
  relative to *pure Python dispatch cost only*.  A per-event cost of a
  few microseconds is a large fraction of an ~8µs dispatch loop, so
  this number is expected to sit near 1.0 — it is the honest
  "microseconds per event" view, while the gated number is the cost on
  the throughput path operators actually run.

* ``recovery_events_per_sec`` / ``recovery_time_per_1k_events_ms`` —
  full :func:`repro.runtime.recovery.recover` throughput (segment scan,
  checksum verification, decode, projection fold) over a synthetic
  journal.  Floor: 50k events/sec replayed; the derived per-1k-events
  milliseconds is the operator-facing "how long is my restart" number.

Measurements interleave bare/journaled runs and take the best (minimum)
elapsed of the repeats, so scheduler hiccups do not fail the gate.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.runtime.journal import attach_journal
from repro.runtime.recovery import recover
from repro.runtime.sharding import DETERMINISTIC, ShardedKernel

__all__ = [
    "run_journal_benchmark",
    "build_recovery_journal",
    "measure_write_overhead",
    "measure_recovery",
    "OVERHEAD_CEILING",
    "RECOVERY_FLOOR",
]

# Mirrored by CEILINGS / SPEEDUP_FLOORS in repro.analysis.bench.
OVERHEAD_CEILING = 0.15
RECOVERY_FLOOR = 50_000.0


def _hub_elapsed(
    messages: int,
    shards: int,
    partners: int,
    journal_dir: Path | None,
    commit_interval: int = 500,
    commit_wait: float = 0.0,
) -> float:
    """Wall time of one deterministic hub run, optionally journaled."""
    from repro.analysis.sharded_hub import _HubWorkload, _feed

    kernel = ShardedKernel(shards=shards, mode=DETERMINISTIC)
    partner_ids = [f"partner-{index:03d}" for index in range(partners)]
    workload = _HubWorkload(
        kernel,
        partner_ids,
        commit_interval=commit_interval,
        commit_wait=commit_wait,
        cross_every=50,
        emit_events=True,  # every message journals one lifecycle event
    )
    journal = None
    if journal_dir is not None:
        journal = attach_journal(kernel, journal_dir)
    start = time.perf_counter()
    _feed(kernel, workload, messages, chunk=10_000)
    if journal is not None:
        journal.close()
    return time.perf_counter() - start


def _best(samples: list[float]) -> float:
    """Least-noise estimate of a deterministic computation's cost.

    The workloads are deterministic, so every run computes the same
    thing and all timing spread is scheduler/frequency noise — the
    minimum is the sample closest to the true cost (the standard
    ``timeit`` argument), which matters on shared CI runners whose
    wall-clock noise would otherwise dwarf a 15% gate."""
    return min(samples)


def measure_write_overhead(
    messages: int = 20_000,
    shards: int = 4,
    partners: int = 64,
    repeats: int = 5,
    commit_interval: int = 500,
    wait_factor: float = 8.0,
) -> dict[str, Any]:
    """Journal write overhead on the sharded-hub path.

    Gated number: overhead on the calibrated hub path — the PR-5 hub
    benchmark's configuration (4 deterministic shards, one lifecycle
    event per message, a durable-commit wait every ``commit_interval``
    messages sized to ``wait_factor x`` the per-message Python cost).
    The commit wait is *synthetic* in the hub benchmark itself (a
    ``time.sleep`` standing in for a durable commit), so this gate adds
    its exact budget arithmetically instead of sleeping through it:
    journaling adds no wait time, hence

        overhead = (journaled_cpu - bare_cpu) / (bare_cpu + wait_budget)

    with ``wait_budget = (messages / commit_interval) x commit_wait``.
    Sleeping for real would measure the same quantity plus per-sleep
    scheduler overshoot (~1ms x 40 waits), which is pure noise against
    a 15% ceiling.  Each repeat runs bare and journaled back to back
    and yields one cost delta; pairing adjacent-in-time runs cancels
    machine-speed drift, and since noise only ever adds time, the
    smallest pair delta is the least-noise estimate of journaling's
    true added cost (the ``timeit`` argument, applied to the
    difference).  The calibration probe is likewise run three times and
    the smallest wait kept.  Also reported, not gated: the CPU-only
    overhead ``delta_cpu / bare_cpu``.
    """
    from repro.analysis.sharded_hub import _calibrate_commit_wait

    commit_wait = min(
        _calibrate_commit_wait(
            partners, commit_interval, cross_every=50, wait_factor=wait_factor
        )
        for _ in range(3)
    )
    bare: list[float] = []
    journaled: list[float] = []
    records = 0
    bytes_written = 0
    workdir = Path(tempfile.mkdtemp(prefix="repro-journal-bench-"))
    try:
        # Warm both paths once (imports, code caches) before measuring.
        _hub_elapsed(2_000, shards, partners, None)
        _hub_elapsed(2_000, shards, partners, workdir / "warm")
        deltas: list[float] = []
        for index in range(repeats):
            bare_run = _hub_elapsed(messages, shards, partners, None)
            journal_dir = workdir / f"run-{index}"
            journaled_run = _hub_elapsed(messages, shards, partners, journal_dir)
            bare.append(bare_run)
            journaled.append(journaled_run)
            deltas.append(journaled_run - bare_run)
            if index == 0:
                recovered = recover(journal_dir)
                records = len(recovered.records)
                bytes_written = sum(
                    path.stat().st_size
                    for path in journal_dir.rglob("segment-*.jrnl")
                )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    best_bare = _best(bare)
    best_journaled = _best(journaled)
    wait_budget = (messages // commit_interval) * commit_wait
    hub_bare = best_bare + wait_budget
    delta = _best(deltas)
    overhead = delta / hub_bare
    cpu_overhead = delta / best_bare
    per_event_us = 1e6 * delta / records if records else 0.0
    return {
        "messages": messages,
        "shards": shards,
        "commit_interval": commit_interval,
        "commit_wait_sec": round(commit_wait, 6),
        "wait_budget_sec": round(wait_budget, 4),
        "wait_factor": wait_factor,
        "bare_cpu_sec": round(best_bare, 4),
        "journaled_cpu_sec": round(best_journaled, 4),
        "hub_bare_sec": round(hub_bare, 4),
        "journal_write_overhead": round(max(0.0, overhead), 4),
        "journal_write_overhead_cpu": round(max(0.0, cpu_overhead), 4),
        "journal_cost_per_event_us": round(max(0.0, per_event_us), 3),
        "records_journaled": records,
        "journal_bytes": bytes_written,
    }


def build_recovery_journal(directory: Path, events: int, shards: int = 4) -> int:
    """Write a journal with ~``events`` lifecycle events; returns the count."""
    from repro.analysis.sharded_hub import _HubWorkload, _feed

    kernel = ShardedKernel(shards=shards, mode=DETERMINISTIC)
    partner_ids = [f"partner-{index:03d}" for index in range(32)]
    workload = _HubWorkload(
        kernel,
        partner_ids,
        commit_interval=10**9,
        commit_wait=0.0,
        cross_every=50,
        emit_events=True,
    )
    journal = attach_journal(kernel, directory)
    # ~1 event per message plus notify fan-outs; feed until the target.
    _feed(kernel, workload, events, chunk=10_000)
    count = journal.events_journaled
    journal.close()
    return count


def measure_recovery(
    events: int = 50_000, shards: int = 4, repeats: int = 3
) -> dict[str, Any]:
    """Recovery (scan + checksum + decode + fold) throughput."""
    workdir = Path(tempfile.mkdtemp(prefix="repro-recovery-bench-"))
    try:
        journal_dir = workdir / "journal"
        journaled = build_recovery_journal(journal_dir, events, shards)
        recover(journal_dir)  # warm-up
        elapsed: list[float] = []
        replayed = 0
        for _ in range(repeats):
            start = time.perf_counter()
            recovered = recover(journal_dir)
            elapsed.append(time.perf_counter() - start)
            replayed = recovered.replayed
        median = _best(elapsed)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    events_per_sec = replayed / median
    return {
        "events": journaled,
        "records_replayed": replayed,
        "recovery_sec": round(median, 4),
        "recovery_events_per_sec": round(events_per_sec, 1),
        "recovery_time_per_1k_events_ms": round(1000.0 * median / (replayed / 1000.0), 4),
    }


def run_journal_benchmark(
    messages: int = 20_000,
    recovery_events: int = 50_000,
    shards: int = 4,
) -> dict[str, Any]:
    """Both journal gates in one payload (feeds the BENCH envelope)."""
    overhead = measure_write_overhead(messages=messages, shards=shards)
    recovery = measure_recovery(events=recovery_events, shards=shards)
    return {
        "write": overhead,
        "recovery": recovery,
        "journal_write_overhead": overhead["journal_write_overhead"],
        "journal_write_overhead_cpu": overhead["journal_write_overhead_cpu"],
        "recovery_events_per_sec": recovery["recovery_events_per_sec"],
        "recovery_time_per_1k_events_ms": recovery["recovery_time_per_1k_events_ms"],
    }
