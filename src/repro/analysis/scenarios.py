"""Canned enterprise topologies used by tests, examples and benchmarks.

Three families:

* :func:`build_two_enterprise_pair` — the running PO-POA example between
  one buyer and one seller over a chosen protocol (Figures 1 and 14);
* :func:`build_fig15_community` — the Figure 15 deployment: one seller
  integrating three trading partners over three different B2B protocols
  into two back ends, plus the three buyers;
* :func:`advanced_synthetic_model` — a *model-only* advanced deployment of
  arbitrary (protocols x partners x back ends) size for the growth sweeps,
  with synthetic protocols/formats where the real three run out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.b2b.protocol import B2BProtocol, TRANSPORT_PLAIN, WireCodec, get_protocol
from repro.backend import OracleSimulator, SapSimulator
from repro.core.enterprise import Enterprise
from repro.core.integration import IntegrationModel
from repro.core.private_process import buyer_po_process, seller_po_process
from repro.core.public_process import buyer_request_reply, seller_request_reply
from repro.core.rules import approval_rule_set, routing_rule_set
from repro.errors import ConfigurationError
from repro.messaging.network import NetworkConditions, SimulatedNetwork
from repro.messaging.reliable import RetryPolicy
from repro.messaging.transport import ValueAddedNetwork
from repro.partners.agreement import TradingPartnerAgreement
from repro.partners.profile import TradingPartner
from repro.sim import EventScheduler
from repro.transform.catalog import build_standard_registry
from repro.transform.mapping import Field, Mapping

__all__ = [
    "TwoEnterprisePair",
    "Fig15Community",
    "build_two_enterprise_pair",
    "build_fig15_community",
    "advanced_synthetic_model",
    "build_registry_model",
    "synthetic_protocol",
]

REAL_PROTOCOLS = ("edi-van", "rosettanet", "oagis-http")


@dataclass
class TwoEnterprisePair:
    """The wired Figure 14 pair, ready to exchange purchase orders."""

    scheduler: EventScheduler
    network: SimulatedNetwork
    van: ValueAddedNetwork
    buyer: Enterprise
    seller: Enterprise

    def enterprises(self) -> list[Enterprise]:
        return [self.buyer, self.seller]

    @property
    def runtime(self):
        """The runtime kernel shared by every component of the pair."""
        return self.network.runtime


def build_two_enterprise_pair(
    protocol_name: str = "rosettanet",
    conditions: NetworkConditions | None = None,
    seed: int = 7,
    buyer_name: str = "TP1",
    seller_name: str = "ACME",
    buyer_threshold: float = 10000,
    seller_threshold: float = 55000,
    seller_delay: float = 1.0,
    retry_policy: RetryPolicy | None = None,
    auto_approve: bool = True,
    verify: bool = False,
    runtime=None,
) -> TwoEnterprisePair:
    """Assemble the paper's running example (Figure 1 / Figure 14).

    Buyer ``TP1`` runs an SAP-like ERP; seller ``ACME`` runs an Oracle-like
    ERP with ``seller_delay`` of asynchronous order processing.  Approval
    thresholds default to Figure 1's 10 000 (buyer) and the seller-side
    amount of the Figure 9 rules (55 000).

    With ``verify=True``, both assembled models are statically verified
    (:mod:`repro.verify`) and :class:`~repro.errors.VerificationError` is
    raised on any error-severity diagnostic.

    ``runtime`` swaps in an alternative kernel (e.g. a
    :class:`~repro.runtime.sharding.ShardedKernel`): pass a ``Runtime``
    instance, or a factory called with the scheduler clock.
    """
    scheduler = EventScheduler()
    # ``runtime`` may be a Runtime instance or a factory taking the
    # scheduler clock — kernels must share the simulation clock.
    if runtime is not None and not hasattr(runtime, "submit"):
        runtime = runtime(scheduler.clock)
    network = SimulatedNetwork(
        scheduler, conditions or NetworkConditions.perfect(), seed=seed, runtime=runtime
    )
    van = ValueAddedNetwork()

    buyer = Enterprise(buyer_name, network, van=van, retry_policy=retry_policy)
    seller = Enterprise(seller_name, network, van=van, retry_policy=retry_policy)

    buyer.deploy_private_process(buyer_po_process(owner=buyer_name))
    buyer.deploy_protocol(get_protocol(protocol_name), "private-po-buyer")
    buyer.add_backend(SapSimulator("SAP", scheduler=scheduler), "private-po-buyer")
    buyer.add_partner(
        TradingPartner(seller_name, protocols=(protocol_name,)),
        [TradingPartnerAgreement(seller_name, protocol_name, "buyer")],
    )
    buyer.add_rule_set(approval_rule_set({(seller_name, "SAP"): buyer_threshold}))

    seller.deploy_private_process(seller_po_process(owner=seller_name))
    seller.deploy_protocol(get_protocol(protocol_name), "private-po-seller")
    seller.add_backend(
        OracleSimulator("Oracle", scheduler=scheduler, processing_delay=seller_delay),
        "private-po-seller",
    )
    seller.add_partner(
        TradingPartner(buyer_name, protocols=(protocol_name,)),
        [TradingPartnerAgreement(buyer_name, protocol_name, "seller")],
    )
    seller.add_rule_set(approval_rule_set({("Oracle", buyer_name): seller_threshold}))
    seller.add_rule_set(routing_rule_set({buyer_name: "Oracle"}))

    if auto_approve:
        buyer.worklist.set_auto_policy(lambda item: {"approved": True})
        seller.worklist.set_auto_policy(lambda item: {"approved": True})
    if verify:
        buyer.model.verify(strict=True)
        seller.model.verify(strict=True)
    return TwoEnterprisePair(scheduler, network, van, buyer, seller)


def build_order_to_cash_pair(
    po_protocol: str = "rosettanet",
    fulfillment_protocol: str = "oagis-fulfillment",
    seed: int = 7,
    conditions: NetworkConditions | None = None,
    seller_delay: float = 0.5,
    verify: bool = False,
) -> TwoEnterprisePair:
    """The Figure 14 pair extended with the order-to-cash dispatch.

    On top of the PO/POA exchange over ``po_protocol``, both enterprises
    deploy the one-way ``fulfillment_protocol`` exchange (OAGIS BODs by
    default, EDI 856/810 over the VAN with ``"edi-fulfillment"``): the
    seller's fulfillment process dispatches ship notice + invoice, the
    buyer's goods-receipt process receives, two-way-matches the invoice
    against its stored acknowledgment, and posts both to its document
    archive.
    """
    from repro.b2b.protocol import get_protocol as _get_protocol
    from repro.core.private_process import (
        buyer_goods_receipt_process,
        seller_fulfillment_process,
    )
    from repro.core.rules import invoice_match_rule_set

    pair = build_two_enterprise_pair(
        po_protocol, conditions=conditions, seed=seed, seller_delay=seller_delay
    )
    buyer, seller = pair.buyer, pair.seller

    seller.deploy_private_process(seller_fulfillment_process(owner=seller.name))
    seller.deploy_protocol(
        _get_protocol(fulfillment_protocol), "private-fulfillment-seller"
    )
    seller.model.partners.update_partner(
        seller.model.partners.get_partner(buyer.name).with_protocol(fulfillment_protocol)
    )
    seller.model.partners.add_agreement(
        TradingPartnerAgreement(
            buyer.name, fulfillment_protocol, "seller",
            doc_types=("ship_notice", "invoice"),
        )
    )

    buyer.deploy_private_process(buyer_goods_receipt_process(owner=buyer.name))
    buyer.deploy_protocol(
        _get_protocol(fulfillment_protocol), "private-goods-receipt"
    )
    buyer.model.partners.update_partner(
        buyer.model.partners.get_partner(seller.name).with_protocol(fulfillment_protocol)
    )
    buyer.model.partners.add_agreement(
        TradingPartnerAgreement(
            seller.name, fulfillment_protocol, "buyer",
            doc_types=("ship_notice", "invoice"),
        )
    )

    def expected_amount(po_number: str) -> float | None:
        """What the buyer believes it owes: the accepted amount of the
        acknowledgment stored in its own ERP."""
        ack = buyer.backends["SAP"].stored_acks.get(po_number)
        if ack is None:
            return None
        return float(ack.get("summary.summe"))

    buyer.add_rule_set(invoice_match_rule_set(expected_amount))
    if verify:
        buyer.model.verify(strict=True)
        seller.model.verify(strict=True)
    return pair


@dataclass
class SourcingCommunity:
    """One buyer broadcasting RFQs to several quoting sellers."""

    scheduler: EventScheduler
    network: SimulatedNetwork
    buyer: Enterprise
    sellers: dict[str, Enterprise]

    def enterprises(self) -> list[Enterprise]:
        return [self.buyer, *self.sellers.values()]

    @property
    def runtime(self):
        """The runtime kernel shared by every component of the community."""
        return self.network.runtime


def build_sourcing_community(
    seller_prices: dict[str, dict[str, float]],
    seed: int = 7,
    conditions: NetworkConditions | None = None,
    buyer_name: str = "TP1",
    verify: bool = False,
) -> SourcingCommunity:
    """Assemble the Section 2.3 RFQ scenario: one buyer, N quoting sellers.

    ``seller_prices`` maps seller id -> its private price catalog
    (sku -> unit price).  The buyer's quote-scoring rule and each seller's
    pricing rule are *body* rules — the competitive knowledge the paper
    says must never be shared.
    """
    from repro.core.private_process import (
        buyer_sourcing_process,
        seller_quotation_process,
    )
    from repro.core.rules import BusinessRule, RuleSet

    scheduler = EventScheduler()
    network = SimulatedNetwork(scheduler, conditions or NetworkConditions.perfect(), seed=seed)

    buyer = Enterprise(buyer_name, network)
    buyer.deploy_private_process(buyer_sourcing_process(owner=buyer_name))
    buyer.deploy_protocol(get_protocol("oagis-quotation"), "private-sourcing")

    def lowest_total(source: str, target: str, quote) -> float:
        """The buyer's secret scoring rule: cheaper is better."""
        return -float(quote.get("summary.total_amount"))

    lowest_total.__name__ = "score_lowest_total"
    buyer.add_rule_set(RuleSet("score_quote", [BusinessRule("lowest total", body=lowest_total)]))

    sellers: dict[str, Enterprise] = {}
    for seller_id, catalog in seller_prices.items():
        seller = Enterprise(seller_id, network)
        seller.deploy_private_process(seller_quotation_process(owner=seller_id))
        seller.deploy_protocol(get_protocol("oagis-quotation"), "private-quotation-seller")
        seller.add_partner(
            TradingPartner(buyer_name, protocols=("oagis-quotation",)),
            [
                TradingPartnerAgreement(
                    buyer_name, "oagis-quotation", "seller",
                    doc_types=("request_for_quote", "quote"),
                )
            ],
        )

        def price(source: str, target: str, rfq, _catalog=dict(catalog)) -> dict[str, float]:
            """The seller's secret price catalog."""
            return {
                line["sku"]: _catalog[line["sku"]]
                for line in rfq.get("lines")
                if line["sku"] in _catalog
            }

        price.__name__ = f"price_catalog_{seller_id}"
        seller.add_rule_set(RuleSet("price_catalog", [BusinessRule("catalog", body=price)]))

        buyer.add_partner(
            TradingPartner(seller_id, protocols=("oagis-quotation",)),
            [
                TradingPartnerAgreement(
                    seller_id, "oagis-quotation", "buyer",
                    doc_types=("request_for_quote", "quote"),
                )
            ],
        )
        sellers[seller_id] = seller

    if verify:
        for enterprise in (buyer, *sellers.values()):
            enterprise.model.verify(strict=True)
    return SourcingCommunity(scheduler, network, buyer, sellers)


@dataclass
class Fig15Community:
    """The Figure 15 deployment: a seller, three buyers, three protocols."""

    scheduler: EventScheduler
    network: SimulatedNetwork
    van: ValueAddedNetwork
    seller: Enterprise
    buyers: dict[str, Enterprise]

    def enterprises(self) -> list[Enterprise]:
        return [self.seller, *self.buyers.values()]

    @property
    def runtime(self):
        """The runtime kernel shared by every component of the community."""
        return self.network.runtime


# Figure 9/10 rule amounts: TP1/TP2 at 55 000 / 40 000, TP3 (the Figure 10
# addition) at 10 000.
FIG15_PARTNERS: dict[str, tuple[str, float, str]] = {
    "TP1": ("edi-van", 55000, "SAP"),
    "TP2": ("rosettanet", 40000, "Oracle"),
    "TP3": ("oagis-http", 10000, "SAP"),
}


def build_fig15_community(
    seed: int = 7,
    conditions: NetworkConditions | None = None,
    seller_delay: float = 0.5,
    partners: dict[str, tuple[str, float, str]] | None = None,
    verify: bool = False,
) -> Fig15Community:
    """Assemble the Figure 15 topology.

    ``partners`` maps partner id -> (protocol, approval threshold, target
    application); defaults to the paper's TP1/TP2/TP3.  Every buyer runs an
    SAP-like back end; the seller runs both an SAP-like and an Oracle-like
    back end, with routing decided by the external rule set.
    """
    partners = partners or dict(FIG15_PARTNERS)
    scheduler = EventScheduler()
    network = SimulatedNetwork(scheduler, conditions or NetworkConditions.perfect(), seed=seed)
    van = ValueAddedNetwork()

    seller = Enterprise("ACME", network, van=van)
    seller.deploy_private_process(seller_po_process(owner="ACME"))
    for protocol_name in sorted({spec[0] for spec in partners.values()}):
        seller.deploy_protocol(get_protocol(protocol_name), "private-po-seller")
    seller.add_backend(
        SapSimulator("SAP", scheduler=scheduler, processing_delay=seller_delay),
        "private-po-seller",
    )
    seller.add_backend(
        OracleSimulator("Oracle", scheduler=scheduler, processing_delay=seller_delay),
        "private-po-seller",
    )
    thresholds = {}
    routing = {}
    for partner_id, (protocol_name, threshold, application) in partners.items():
        seller.add_partner(
            TradingPartner(partner_id, protocols=(protocol_name,)),
            [TradingPartnerAgreement(partner_id, protocol_name, "seller")],
        )
        routing[partner_id] = application
        for app in ("SAP", "Oracle"):
            thresholds[(app, partner_id)] = threshold
    seller.add_rule_set(approval_rule_set(thresholds))
    seller.add_rule_set(routing_rule_set(routing))
    seller.worklist.set_auto_policy(lambda item: {"approved": True})

    buyers: dict[str, Enterprise] = {}
    for partner_id, (protocol_name, _, _) in partners.items():
        buyer = Enterprise(partner_id, network, van=van)
        buyer.deploy_private_process(buyer_po_process(owner=partner_id))
        buyer.deploy_protocol(get_protocol(protocol_name), "private-po-buyer")
        buyer.add_backend(SapSimulator("SAP", scheduler=scheduler), "private-po-buyer")
        buyer.add_partner(
            TradingPartner("ACME", protocols=(protocol_name,)),
            [TradingPartnerAgreement("ACME", protocol_name, "buyer")],
        )
        buyer.add_rule_set(approval_rule_set({("ACME", "SAP"): 10000}))
        buyer.worklist.set_auto_policy(lambda item: {"approved": True})
        buyers[partner_id] = buyer

    if verify:
        for enterprise in (seller, *buyers.values()):
            enterprise.model.verify(strict=True)
    return Fig15Community(scheduler, network, van, seller, buyers)


# ---------------------------------------------------------------------------
# Synthetic advanced models for the growth sweeps
# ---------------------------------------------------------------------------


def synthetic_protocol(name: str, wire_format: str) -> B2BProtocol:
    """A protocol descriptor for size sweeps (never transmitted)."""

    def _unusable(*_args):  # pragma: no cover - sweeps never serialize
        raise ConfigurationError(f"synthetic protocol {name} has no codec")

    return B2BProtocol(
        name=name,
        codec=WireCodec(wire_format, _unusable, _unusable),
        transport=TRANSPORT_PLAIN,
        buyer_process=lambda: buyer_request_reply(f"{name}/buyer", name, wire_format),
        seller_process=lambda: seller_request_reply(f"{name}/seller", name, wire_format),
    )


def _synthetic_mappings(format_name: str) -> list[Mapping]:
    """Representative expert mappings for a synthetic format.

    Sized after the real catalog (roughly a dozen field rules per mapping)
    so the sweep's mapping counts stay honest.
    """
    mappings = []
    for doc_type in ("purchase_order", "po_ack"):
        for source, target in ((format_name, "normalized"), ("normalized", format_name)):
            rules = [
                Field(f"header.field_{i}", f"header.mapped_{i}") for i in range(10)
            ]
            mappings.append(
                Mapping(
                    name=f"{source}__to__{target}/{doc_type}",
                    source_format=source,
                    target_format=target,
                    doc_type=doc_type,
                    rules=rules,
                )
            )
    return mappings


def advanced_synthetic_model(
    protocol_count: int, partner_count: int, backend_count: int
) -> IntegrationModel:
    """Build the advanced integration model for an arbitrary topology size.

    The first three protocols/back ends are the real ones (real mapping
    catalog); beyond that, synthetic protocols and formats with
    representative mappings keep the element counts comparable.
    """
    model = IntegrationModel(f"sweep-{protocol_count}x{partner_count}x{backend_count}")
    model.add_private_process(seller_po_process(owner=model.name))
    # Count only the mappings the deployment actually needs: 4 per deployed
    # format (2 doc kinds x 2 directions).  Loading the whole catalog would
    # make real formats look free in the growth curves.
    standard_by_format: dict[str, list[Mapping]] = {}
    for mapping in build_standard_registry().mappings():
        if mapping.doc_type not in ("purchase_order", "po_ack"):
            continue  # the sweep models the PO/POA exchange only
        foreign = (
            mapping.source_format
            if mapping.source_format != "normalized"
            else mapping.target_format
        )
        standard_by_format.setdefault(foreign, []).append(mapping)

    protocol_names: list[str] = []
    for index in range(protocol_count):
        if index < len(REAL_PROTOCOLS):
            protocol = get_protocol(REAL_PROTOCOLS[index])
            model.transforms.register_all(standard_by_format[protocol.wire_format])
        else:
            wire_format = f"wire-{index + 1}"
            protocol = synthetic_protocol(f"proto-{index + 1}", wire_format)
            model.transforms.register_all(_synthetic_mappings(wire_format))
        model.add_protocol(protocol, "private-po-seller")
        protocol_names.append(protocol.name)

    real_backends = (("SAP", "sap-idoc"), ("Oracle", "oracle-oif"))
    backend_names: list[str] = []
    for index in range(backend_count):
        if index < len(real_backends):
            name, native_format = real_backends[index]
            model.transforms.register_all(standard_by_format[native_format])
        else:
            name, native_format = f"app-{index + 1}", f"native-{index + 1}"
            model.transforms.register_all(_synthetic_mappings(native_format))
        model.add_application(name, native_format, "private-po-seller")
        backend_names.append(name)

    thresholds = {}
    routing = {}
    for index in range(1, partner_count + 1):
        partner_id = f"TP{index}"
        protocol_name = protocol_names[(index - 1) % len(protocol_names)]
        model.partners.add_partner(
            TradingPartner(partner_id, protocols=(protocol_name,))
        )
        model.partners.add_agreement(
            TradingPartnerAgreement(partner_id, protocol_name, "seller")
        )
        routing[partner_id] = backend_names[(index - 1) % len(backend_names)]
        for backend_name in backend_names:
            thresholds[(backend_name, partner_id)] = 10000.0 * index
    model.rules.register(approval_rule_set(thresholds))
    model.rules.register(routing_rule_set(routing))
    return model


def build_registry_model(agreements: int, seed: int = 7) -> IntegrationModel:
    """A deployment-scale model: one hub, ``agreements`` partner agreements.

    Every extended protocol is deployed once (the §4.6 advantage: adding a
    partner reuses the deployed public processes); each trading partner
    holds one agreement whose protocol, role and doc types are assigned
    deterministically from ``seed`` — the substrate for registry-sweep
    verification and its benchmarks.  Same ``(agreements, seed)`` always
    builds a digest-identical model.
    """
    import random

    from repro.b2b.protocol import extended_protocols

    rng = random.Random(seed)
    model = IntegrationModel(f"registry-{agreements}")
    model.transforms = build_standard_registry()
    model.add_private_process(seller_po_process(owner=model.name))
    protocols = extended_protocols()
    protocol_names = sorted(protocols)
    doc_types: dict[str, tuple[str, ...]] = {}
    for name in protocol_names:
        protocol = protocols[name]
        model.add_protocol(protocol, "private-po-seller")
        doc_types[name] = tuple(sorted(
            {step.doc_type for step in protocol.buyer_process().steps if step.doc_type}
        ))
    for index in range(1, agreements + 1):
        partner_id = f"TP{index}"
        protocol_name = rng.choice(protocol_names)
        our_role = rng.choice(("buyer", "seller"))
        model.partners.add_partner(
            TradingPartner(partner_id, protocols=(protocol_name,))
        )
        model.partners.add_agreement(
            TradingPartnerAgreement(
                partner_id, protocol_name, our_role,
                doc_types=doc_types[protocol_name],
            )
        )
    return model
