"""Sharded-hub throughput benchmark: msgs/sec vs shard count.

The workload models the paper's §4.6 hub: P trading partners fire
messages at one integration hub, each message is routed to its partner's
shard (stable hash), handled with a small amount of per-message Python
work, and every ``commit_interval``-th message per partner pays a
*durable commit* wait — the stand-in for the fsync/DB round trip a real
hub performs per batch of state changes.  A small fraction of messages
additionally trigger cross-partner notifications, which exercises the
explicit inter-shard channel.

Why sharding pays even on one core: the per-message Python work is
serialized by the interpreter lock no matter how many shards exist, but
the commit *waits* are not — with one shard they serialize behind each
other, with N shards up to N of them overlap.  With total Python cost C
and total commit wait W, expected wall time is ``T(s) = C + W/s``, so
the benchmark calibrates W to ``wait_factor x C`` (default 8; generous
because sleep slack and thread switching inflate the effective C) and
the 4-shard parallel configuration lands near 2.5x the single-shard
rate — comfortably above the CI floor of 2x.

The deterministic check rides along: the same workload (minus waits) is
run in deterministic mode at several shard counts with the trace on, and
the rendered traces must be identical — the global-sequence merge makes
shard count unobservable.  A final small run attaches a
:class:`~repro.messaging.network.SimulatedNetwork` transport plane so
shard-to-shard links show up in per-link network stats.
"""

from __future__ import annotations

import time
from typing import Any

from repro.runtime.events import DocumentReceived
from repro.runtime.sharding import DETERMINISTIC, PARALLEL, ShardedKernel

__all__ = ["run_hub_benchmark", "deterministic_trace", "DEFAULT_SHARD_COUNTS"]

DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)


class _HubWorkload:
    """Per-partner counters + checksums + batched durable-commit waits."""

    def __init__(
        self,
        kernel: ShardedKernel,
        partner_ids: list[str],
        commit_interval: int,
        commit_wait: float,
        cross_every: int,
        emit_events: bool = False,
    ) -> None:
        self.kernel = kernel
        self.partner_ids = partner_ids
        self.commit_interval = commit_interval
        self.commit_wait = commit_wait
        self.cross_every = cross_every
        self.emit_events = emit_events
        # All three maps are keyed by partner, and a partner's entries are
        # only touched by the shard that owns the partner — so parallel
        # workers never contend on them (no locks, no lost updates).
        self.counts = {partner: 0 for partner in partner_ids}
        self.notified = {partner: 0 for partner in partner_ids}
        self.checksums = {partner: 0 for partner in partner_ids}

    @property
    def processed(self) -> int:
        return sum(self.counts.values()) + sum(self.notified.values())

    def handle(self, partner: str, sequence: int) -> None:
        """One inbound message: update partner state, maybe commit/fan out.

        Each partner's state is only ever touched by that partner's shard
        (stable routing), so no locking is needed in parallel mode.
        """
        self.counts[partner] += 1
        self.checksums[partner] = (
            self.checksums[partner] * 31 + sequence
        ) & 0xFFFFFFFF
        if self.emit_events:
            self.kernel.emit(
                DocumentReceived,
                "hub",
                conversation_id=f"C-{sequence}",
                doc_type="purchase_order",
                partner_id=partner,
            )
        if self.cross_every and sequence % self.cross_every == 0:
            # Notify the next partner (usually on another shard): goes
            # through the explicit inter-shard channel, never a direct
            # cross-shard queue append.
            sibling = self.partner_ids[
                (self.partner_ids.index(partner) + 1) % len(self.partner_ids)
            ]
            self.kernel.submit(
                lambda: self.notify(sibling, sequence),
                label=f"notify:{sibling}",
                partner_key=sibling,
            )
        # Every commit_interval-th message through the hub pays a durable
        # batch commit, on the shard that handled it.  Keying off the
        # global sequence (messages are dealt round-robin) makes commit
        # density independent of the partner count, so scaled-down runs
        # keep the same compute-to-wait ratio as the full benchmark.
        if self.commit_wait and sequence % self.commit_interval == 0:
            time.sleep(self.commit_wait)  # durable batch commit

    def notify(self, partner: str, sequence: int) -> None:
        self.checksums[partner] = (self.checksums[partner] * 17 + sequence) & 0xFFFFFFFF
        self.notified[partner] += 1
        if self.emit_events:
            self.kernel.emit(
                DocumentReceived,
                "hub",
                conversation_id=f"X-{sequence}",
                doc_type="notification",
                partner_id=partner,
            )


def _feed(
    kernel: ShardedKernel,
    workload: _HubWorkload,
    messages: int,
    chunk: int,
) -> None:
    partner_ids = workload.partner_ids
    partner_count = len(partner_ids)
    fed = 0
    while fed < messages:
        batch = min(chunk, messages - fed)
        for offset in range(batch):
            sequence = fed + offset
            partner = partner_ids[sequence % partner_count]
            kernel.submit(
                lambda partner=partner, sequence=sequence: workload.handle(
                    partner, sequence
                ),
                partner_key=partner,
            )
        kernel.drain()
        fed += batch


def _run_config(
    shards: int,
    mode: str,
    messages: int,
    partners: int,
    commit_interval: int,
    commit_wait: float,
    cross_every: int,
    chunk: int,
) -> dict[str, Any]:
    kernel = ShardedKernel(shards=shards, mode=mode)
    partner_ids = [f"partner-{index:03d}" for index in range(partners)]
    workload = _HubWorkload(
        kernel, partner_ids, commit_interval, commit_wait, cross_every
    )
    start = time.perf_counter()
    _feed(kernel, workload, messages, chunk)
    elapsed = time.perf_counter() - start
    return {
        "shards": shards,
        "mode": mode,
        "messages": messages,
        "processed": workload.processed,
        "elapsed_sec": round(elapsed, 4),
        "msgs_per_sec": round(workload.processed / elapsed, 1),
        "cross_shard_tasks": sum(kernel.link_counters.values()),
        "per_shard": kernel.shard_report(),
    }


def _calibrate_commit_wait(
    partners: int,
    commit_interval: int,
    cross_every: int,
    wait_factor: float,
    sample: int = 20_000,
) -> float:
    """Pick the commit wait so total wait ~= wait_factor x Python cost.

    Measures the per-message Python cost on a wait-free single-shard
    parallel run, then sizes the wait so the scaling ratio is governed by
    the (machine-independent) wait factor instead of absolute CPU speed.
    """
    probe = _run_config(
        shards=1,
        mode=PARALLEL,
        messages=sample,
        partners=partners,
        commit_interval=commit_interval,
        commit_wait=0.0,
        cross_every=cross_every,
        chunk=10_000,
    )
    per_message_cost = probe["elapsed_sec"] / probe["processed"]
    return wait_factor * per_message_cost * commit_interval


def deterministic_trace(
    shards: int,
    messages: int = 2_000,
    partners: int = 16,
    cross_every: int = 40,
) -> str:
    """Rendered event trace of a small deterministic run at ``shards``.

    Identical for every shard count: the deterministic drain executes in
    global submission order regardless of partitioning.
    """
    kernel = ShardedKernel(shards=shards, mode=DETERMINISTIC)
    trace = kernel.enable_trace(capacity=4 * messages)
    partner_ids = [f"partner-{index:03d}" for index in range(partners)]
    workload = _HubWorkload(
        kernel,
        partner_ids,
        commit_interval=10**9,
        commit_wait=0.0,
        cross_every=cross_every,
        emit_events=True,
    )
    _feed(kernel, workload, messages, chunk=500)
    return trace.render()


def _network_linked_run(
    shards: int = 4,
    messages: int = 2_000,
    partners: int = 16,
    cross_every: int = 20,
) -> dict[str, Any]:
    """Deterministic run with cross-shard traffic over a real transport
    plane; returns the per-link network stats for the shard links."""
    from repro.messaging.network import NetworkConditions, SimulatedNetwork
    from repro.sim import EventScheduler

    scheduler = EventScheduler()
    transport = SimulatedNetwork(scheduler, NetworkConditions.perfect(), seed=5)
    kernel = ShardedKernel(shards=shards, mode=DETERMINISTIC, clock=scheduler.clock)
    kernel.attach_network(transport)
    partner_ids = [f"partner-{index:03d}" for index in range(partners)]
    workload = _HubWorkload(
        kernel,
        partner_ids,
        commit_interval=10**9,
        commit_wait=0.0,
        cross_every=cross_every,
    )
    _feed(kernel, workload, messages, chunk=500)
    return {
        "processed": workload.processed,
        "links": transport.link_report(),
    }


def run_hub_benchmark(
    messages_per_config: int = 250_000,
    shard_counts: tuple[int, ...] = DEFAULT_SHARD_COUNTS,
    partners: int = 64,
    commit_interval: int = 500,
    commit_wait: float | None = None,
    wait_factor: float = 8.0,
    cross_every: int = 50,
    chunk: int = 10_000,
) -> dict[str, Any]:
    """Push ``messages_per_config`` messages through the hub at each shard
    count (parallel mode), verify deterministic trace invariance, and
    report msgs/sec plus the 4-shard scaling ratio.
    """
    if commit_wait is None:
        commit_wait = _calibrate_commit_wait(
            partners, commit_interval, cross_every, wait_factor
        )
    parallel: dict[str, Any] = {}
    for shards in shard_counts:
        parallel[str(shards)] = _run_config(
            shards=shards,
            mode=PARALLEL,
            messages=messages_per_config,
            partners=partners,
            commit_interval=commit_interval,
            commit_wait=commit_wait,
            cross_every=cross_every,
            chunk=chunk,
        )
    baseline_rate = parallel[str(shard_counts[0])]["msgs_per_sec"]
    scaling = {
        str(shards): round(parallel[str(shards)]["msgs_per_sec"] / baseline_rate, 3)
        for shards in shard_counts
    }
    traces = {
        shards: deterministic_trace(shards)
        for shards in sorted(set(shard_counts))[:3]
    }
    reference = next(iter(traces.values()))
    invariant = all(trace == reference for trace in traces.values())
    network = _network_linked_run()
    return {
        "messages_per_config": messages_per_config,
        "total_messages": sum(
            entry["processed"] for entry in parallel.values()
        ),
        "shard_counts": list(shard_counts),
        "partners": partners,
        "commit_interval": commit_interval,
        "commit_wait_sec": round(commit_wait, 6),
        "parallel": parallel,
        "scaling": scaling,
        "scaling_4x": scaling.get("4"),
        "deterministic_trace_invariant": invariant,
        "inter_shard_network": network,
    }
