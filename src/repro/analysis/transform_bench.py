"""Transformation cache + columnar batch benchmarks.

Two dimensionless numbers gate the transformation engine in CI:

* ``transform_cache_hit_rate`` — warm hit rate of the content-addressed
  result cache (:meth:`TransformationRegistry.enable_cache`) under a
  Zipf-distributed request stream, the canonical model of repetitive B2B
  traffic: the same purchase orders and acks arrive over and over, with
  a long tail of one-off documents.  The cache capacity covers the
  document population, so after the cold pass the hot head is served
  from memoized results.  Floor: 0.9.

* ``transform_batch_speedup`` — columnar ``transform_batch`` over the
  per-document ``transform`` loop on the cacheable inbound wire route
  (EDI X12 -> normalized purchase orders) at 100-document batches, with
  no cache attached so the number isolates the batch path itself (route
  resolution, schema walk and rule dispatch hoisted out of the
  per-document loop).  Floor: 3.0.

A trace-parity check rides along, mirroring the sharded-hub benchmark's
deterministic invariant: a transform hub draining batchable tasks
(coalesced into ``transform_batch`` calls) must render the exact same
event trace as the one-at-a-time hub, at every shard count.  Batching is
a throughput optimisation, never an observable behaviour change.

Timings interleave the two paths and take the best (minimum) of repeats,
the same noise control the journal benchmarks use.
"""

from __future__ import annotations

import random
import time
from typing import Any

from repro.documents.model import Document
from repro.documents.normalized import NORMALIZED, make_purchase_order
from repro.runtime.events import DocumentReceived
from repro.runtime.sharding import DETERMINISTIC, ShardedKernel
from repro.transform.catalog import build_standard_registry
from repro.transform.transformer import TransformationRegistry

__all__ = [
    "run_transform_benchmark",
    "measure_cache_hit_rate",
    "measure_batch_speedup",
    "transform_hub_trace",
    "BATCH_SPEEDUP_FLOOR",
    "CACHE_HIT_RATE_FLOOR",
]

# Mirrored by SPEEDUP_FLOORS in repro.analysis.bench.
BATCH_SPEEDUP_FLOOR = 3.0
CACHE_HIT_RATE_FLOOR = 0.9

_CONTEXT = {"sender_id": "ACME", "receiver_id": "TP1", "now": 1.0}


def _document_population(registry: TransformationRegistry, count: int) -> list[Document]:
    """``count`` distinct EDI X12 purchase orders (the inbound wire docs)."""
    population = []
    for index in range(count):
        po = make_purchase_order(
            f"PO-{index:05d}",
            "TP1",
            "ACME",
            [
                {"sku": f"SKU-{index % 17}", "quantity": 1 + index % 9,
                 "unit_price": 10.0 + index},
                {"sku": "DOCK-1", "quantity": 5, "unit_price": 150.0},
            ],
        )
        population.append(registry.transform(po, "edi-x12", _CONTEXT))
    return population


def _zipf_indexes(population: int, requests: int, exponent: float, seed: int) -> list[int]:
    """A Zipf(``exponent``) sample over ``range(population)``: rank r is
    drawn with probability proportional to 1/r^exponent — a hot head of
    repeated documents with a long tail, i.e. real B2B traffic."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(population)]
    return rng.choices(range(population), weights=weights, k=requests)


def measure_cache_hit_rate(
    population: int = 50,
    requests: int = 5_000,
    exponent: float = 1.1,
    capacity: int = 4_096,
    seed: int = 7,
) -> dict[str, Any]:
    """Hit rate + cached-vs-uncached wall time on the Zipf stream.

    The stream transforms inbound EDI purchase orders to the normalized
    layout — a cacheable route (no context-reading computes) — so every
    repeat of a population document after the cold pass is a cache hit.
    """
    base = build_standard_registry()
    documents = _document_population(base, population)
    indexes = _zipf_indexes(population, requests, exponent, seed)

    uncached = build_standard_registry()
    start = time.perf_counter()
    for index in indexes:
        uncached.transform(documents[index], NORMALIZED)
    uncached_sec = time.perf_counter() - start

    cached = build_standard_registry()
    cache = cached.enable_cache(capacity)
    start = time.perf_counter()
    for index in indexes:
        cached.transform(documents[index], NORMALIZED)
    cached_sec = time.perf_counter() - start

    snapshot = cache.snapshot()
    return {
        "population": population,
        "requests": requests,
        "zipf_exponent": exponent,
        "capacity": capacity,
        "hits": snapshot["hits"],
        "misses": snapshot["misses"],
        "evictions": snapshot["evictions"],
        "bypasses": snapshot["bypasses"],
        "transform_cache_hit_rate": round(snapshot["hit_rate"], 4),
        "uncached_sec": round(uncached_sec, 4),
        "cached_sec": round(cached_sec, 4),
        "cache_speedup": round(uncached_sec / cached_sec, 2) if cached_sec else None,
    }


def measure_batch_speedup(
    batch_size: int = 100,
    batches: int = 20,
    repeats: int = 5,
) -> dict[str, Any]:
    """Columnar vs per-document transformation on the inbound wire route.

    Distinct documents, no cache: the ratio isolates the batch path.  The
    outbound (normalized -> EDI X12) route is measured alongside for the
    report; the gate reads the inbound number.
    """
    registry = build_standard_registry()
    inbound = _document_population(registry, batch_size * batches)
    normalized = [registry.transform(document, NORMALIZED) for document in inbound]

    def run_route(documents: list[Document], target: str) -> dict[str, Any]:
        groups = [
            documents[start:start + batch_size]
            for start in range(0, len(documents), batch_size)
        ]
        # warm both paths (compiles mappings and batch programs)
        registry.transform_batch(groups[0], target, _CONTEXT)
        [registry.transform(document, target, _CONTEXT) for document in groups[0]]
        per_doc: list[float] = []
        batched: list[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            for group in groups:
                for document in group:
                    registry.transform(document, target, _CONTEXT)
            per_doc.append(time.perf_counter() - start)
            start = time.perf_counter()
            for group in groups:
                registry.transform_batch(group, target, _CONTEXT)
            batched.append(time.perf_counter() - start)
        best_per_doc = min(per_doc)
        best_batched = min(batched)
        return {
            "per_doc_sec": round(best_per_doc, 4),
            "batch_sec": round(best_batched, 4),
            "speedup": round(best_per_doc / best_batched, 2),
        }

    inbound_result = run_route(inbound, NORMALIZED)
    outbound_result = run_route(normalized, "edi-x12")
    return {
        "batch_size": batch_size,
        "batches": batches,
        "documents": batch_size * batches,
        "inbound": inbound_result,
        "outbound": outbound_result,
        "transform_batch_speedup": inbound_result["speedup"],
    }


class _TransformHubBatcher:
    """The hub's batchable-task hook: coalesced payloads go through
    ``transform_batch`` in one call, then each document's lifecycle event
    is emitted in payload order — the trace-parity contract."""

    def __init__(self, kernel: ShardedKernel, registry: TransformationRegistry) -> None:
        self.kernel = kernel
        self.registry = registry
        self.batch_calls = 0
        self.processed = 0

    def run_batch(self, payloads: list[tuple[str, int, Document]]) -> None:
        self.batch_calls += 1
        documents = [document for _, _, document in payloads]
        results = self.registry.transform_batch(documents, NORMALIZED)
        for (partner, sequence, _), result in zip(payloads, results):
            self.processed += 1
            self.kernel.emit(
                DocumentReceived,
                "transform-hub",
                conversation_id=f"C-{sequence}",
                doc_type=result.doc_type,
                partner_id=partner,
            )


def transform_hub_trace(
    shards: int,
    batched: bool,
    messages: int = 600,
    partners: int = 16,
    population: int = 40,
    chunk: int = 150,
) -> tuple[str, dict[str, int]]:
    """Rendered trace of a deterministic transform-hub run.

    Inbound wire documents are routed to their partner's shard and
    normalized there; ``batched`` switches between one plain task per
    document and batchable tasks the drain coalesces into
    ``transform_batch`` calls.  Returns ``(trace, stats)``.
    """
    registry = build_standard_registry()
    registry.enable_cache()
    documents = _document_population(registry, population)
    kernel = ShardedKernel(shards=shards, mode=DETERMINISTIC)
    trace = kernel.enable_trace(capacity=4 * messages)
    batcher = _TransformHubBatcher(kernel, registry)
    partner_ids = [f"partner-{index:03d}" for index in range(partners)]
    fed = 0
    while fed < messages:
        batch = min(chunk, messages - fed)
        for offset in range(batch):
            sequence = fed + offset
            partner = partner_ids[sequence % partners]
            payload = (partner, sequence, documents[sequence % population])
            if batched:
                kernel.submit_batchable(
                    batcher, payload, label=f"transform:{partner}",
                    partner_key=partner,
                )
            else:
                kernel.submit(
                    lambda payload=payload: batcher.run_batch([payload]),
                    label=f"transform:{payload[0]}",
                    partner_key=payload[0],
                )
        kernel.drain()
        fed += batch
    # Surface the cache counters through the kernel's metrics observer.
    registry.cache.publish(kernel)
    stats = {
        "processed": batcher.processed,
        "batch_calls": batcher.batch_calls,
        "cache_hits": registry.cache.hits,
        "snapshot_events": kernel.metrics.count("transform_cache_snapshot"),
    }
    return trace.render(), stats


def _hub_parity(shard_counts: tuple[int, ...] = (1, 2, 4)) -> dict[str, Any]:
    """Batched and unbatched hub traces must agree at every shard count."""
    traces: dict[str, str] = {}
    stats: dict[str, dict[str, int]] = {}
    for shards in shard_counts:
        for batched in (False, True):
            key = f"{shards}-{'batched' if batched else 'per-doc'}"
            traces[key], stats[key] = transform_hub_trace(shards, batched)
    reference = next(iter(traces.values()))
    parity = all(trace == reference for trace in traces.values())
    coalesced = {
        key: entry["batch_calls"]
        for key, entry in stats.items()
        if key.endswith("batched")
    }
    return {
        "shard_counts": list(shard_counts),
        "trace_parity": parity,
        "batch_calls": coalesced,
        "snapshot_events_seen": all(
            entry["snapshot_events"] == 1 for entry in stats.values()
        ),
    }


def run_transform_benchmark(
    batch_size: int = 100,
    batches: int = 20,
    population: int = 50,
    requests: int = 5_000,
) -> dict[str, Any]:
    """All three transformation measurements in one payload (feeds the
    BENCH envelope and the standalone CI gate)."""
    cache = measure_cache_hit_rate(population=population, requests=requests)
    batch = measure_batch_speedup(batch_size=batch_size, batches=batches)
    hub = _hub_parity()
    if not hub["trace_parity"]:
        raise RuntimeError(
            "transform hub: batched trace differs from per-document trace"
        )
    return {
        "cache": cache,
        "batch": batch,
        "hub": hub,
        "transform_cache_hit_rate": cache["transform_cache_hit_rate"],
        "transform_batch_speedup": batch["transform_batch_speedup"],
    }
