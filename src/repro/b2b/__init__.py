"""B2B protocol layer: protocol descriptors and public-process templates.

Three protocols with genuinely different transport disciplines, matching
Section 5.1's standards landscape:

* ``edi-van`` — X12 interchanges over a store-and-forward Value Added
  Network (lossless, batch pickup, no acknowledgment machinery);
* ``rosettanet`` — PIP-3A4-like XML over RNIF-style reliable messaging
  (acks, time-outs, retries over the lossy Internet);
* ``oagis-http`` — OAGIS BODs over plain point-to-point delivery.
"""

from repro.b2b.protocol import (
    B2BProtocol,
    WireCodec,
    extended_protocols,
    get_protocol,
    standard_protocols,
)
from repro.b2b.custom import negotiated_protocol

__all__ = [
    "B2BProtocol",
    "WireCodec",
    "standard_protocols",
    "extended_protocols",
    "get_protocol",
    "negotiated_protocol",
]
