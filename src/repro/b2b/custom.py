"""ebXML-style negotiated collaborations (Section 5.1).

Where RosettaNet pre-defines its PIPs, ebXML "provides a general language
(ebXML BPSS) to define arbitrary public processes called collaborations
... two enterprises have to agree on a definition of their public
processes first".  :func:`negotiated_protocol` is that agreement artifact:
the two parties supply their public-process step lists, and the resulting
descriptor refuses to exist unless the two sides are *complementary* —
the CPA-activation check the paper's Section 3 sequencing requirement
demands.

The paper's ebXML example — acknowledging "line items separately" or
adding documents a pre-defined PIP would not allow — becomes a few lines
of step definitions (see ``tests/integration/test_negotiated.py`` for a
PO -> POA -> invoice collaboration negotiated over OAGIS BODs).
"""

from __future__ import annotations

from typing import Sequence

from repro.b2b.protocol import B2BProtocol, TRANSPORT_PLAIN, WireCodec
from repro.core.public_process import (
    PublicProcessDefinition,
    PublicStep,
    check_complementary,
)
from repro.errors import ProtocolError

__all__ = ["negotiated_protocol"]


def negotiated_protocol(
    name: str,
    codec: WireCodec,
    buyer_steps: Sequence[PublicStep],
    seller_steps: Sequence[PublicStep],
    transport: str = TRANSPORT_PLAIN,
    ack_timeout: float = 1.0,
    max_retries: int = 3,
) -> B2BProtocol:
    """Build a protocol descriptor from two negotiated public processes.

    :param name: the collaboration's agreed name (the CPA id).
    :param codec: the wire format both sides agreed on.
    :param buyer_steps / seller_steps: each party's public process.
    :raises ProtocolError: when the two sides cannot collaborate — a
        mis-negotiated CPA must fail *before* deployment, not at runtime.
    """
    buyer_definition = PublicProcessDefinition(
        f"{name}/buyer", name, "buyer", codec.format_name, list(buyer_steps)
    )
    seller_definition = PublicProcessDefinition(
        f"{name}/seller", name, "seller", codec.format_name, list(seller_steps)
    )
    problems = check_complementary(buyer_definition, seller_definition)
    if problems:
        raise ProtocolError(
            f"collaboration {name!r} cannot be activated: {'; '.join(problems)}"
        )
    return B2BProtocol(
        name=name,
        codec=codec,
        transport=transport,
        ack_timeout=ack_timeout,
        max_retries=max_retries,
        buyer_process=lambda: PublicProcessDefinition(
            f"{name}/buyer", name, "buyer", codec.format_name, list(buyer_steps)
        ),
        seller_process=lambda: PublicProcessDefinition(
            f"{name}/seller", name, "seller", codec.format_name, list(seller_steps)
        ),
    )
