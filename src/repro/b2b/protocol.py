"""B2B protocol descriptors.

A :class:`B2BProtocol` bundles everything the B2B engine must know to run
one standard: the wire format and its codec, the transport discipline
(reliable / VAN / plain), retry parameters, and factories for the buyer and
seller public-process definitions.  Adding a new standard to an enterprise
means registering one of these plus its mappings — the locality the
Section 4.6 scalability experiment measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.public_process import (
    PublicProcessDefinition,
    buyer_request_reply,
    seller_request_reply,
)
from repro.documents import edi, oagis, rosettanet
from repro.documents.model import Document
from repro.errors import ProtocolError
from repro.messaging.disciplines import (
    ALL_TRANSPORTS as _TRANSPORTS,
    TRANSPORT_PLAIN,
    TRANSPORT_RELIABLE,
    TRANSPORT_VAN,
)

__all__ = [
    "TRANSPORT_RELIABLE",
    "TRANSPORT_VAN",
    "TRANSPORT_PLAIN",
    "WireCodec",
    "B2BProtocol",
    "standard_protocols",
    "get_protocol",
]


@dataclass(frozen=True)
class WireCodec:
    """Serialize/parse functions for one wire format."""

    format_name: str
    to_wire: Callable[[Document], str]
    from_wire: Callable[[str], Document]


@dataclass(frozen=True)
class B2BProtocol:
    """Everything the engine needs to speak one B2B standard.

    :param name: protocol id used in agreements and messages.
    :param codec: the wire format codec.
    :param transport: delivery discipline (see module constants).
    :param ack_timeout / max_retries: reliable-transport knobs (RNIF
        profile); ignored by other transports.
    :param buyer_process / seller_process: factories returning the two
        public-process definitions.
    :param receipt_builder: for protocols whose public processes model
        business-level receipt acknowledgments (Section 4.5's "explicitly
        model transport acknowledgments" variant): builds the receipt
        document for a received wire document.  ``None`` for protocols
        without modeled receipts.
    """

    name: str
    codec: WireCodec
    transport: str
    ack_timeout: float = 1.0
    max_retries: int = 3
    buyer_process: Callable[[], PublicProcessDefinition] = field(repr=False, default=None)  # type: ignore[assignment]
    seller_process: Callable[[], PublicProcessDefinition] = field(repr=False, default=None)  # type: ignore[assignment]
    receipt_builder: Callable[[Document, float], Document] | None = field(
        repr=False, default=None
    )

    def __post_init__(self) -> None:
        if self.transport not in _TRANSPORTS:
            raise ProtocolError(f"unknown transport {self.transport!r}")
        if self.buyer_process is None or self.seller_process is None:
            raise ProtocolError(f"protocol {self.name!r} needs both process factories")

    @property
    def wire_format(self) -> str:
        """The wire document layout name."""
        return self.codec.format_name

    def public_process(self, role: str) -> PublicProcessDefinition:
        """Build the public process definition for ``role``."""
        if role == "buyer":
            return self.buyer_process()
        if role == "seller":
            return self.seller_process()
        raise ProtocolError(f"unknown role {role!r}")


def _edi_van() -> B2BProtocol:
    return B2BProtocol(
        name="edi-van",
        codec=WireCodec(edi.EDI_X12, edi.to_wire, edi.from_wire),
        transport=TRANSPORT_VAN,
        buyer_process=lambda: buyer_request_reply(
            "edi-van/850-855/buyer", "edi-van", edi.EDI_X12
        ),
        seller_process=lambda: seller_request_reply(
            "edi-van/850-855/seller", "edi-van", edi.EDI_X12
        ),
    )


def _rosettanet() -> B2BProtocol:
    return B2BProtocol(
        name="rosettanet",
        codec=WireCodec(rosettanet.ROSETTANET, rosettanet.to_wire, rosettanet.from_wire),
        transport=TRANSPORT_RELIABLE,
        ack_timeout=2.0,
        max_retries=3,
        buyer_process=lambda: buyer_request_reply(
            "rosettanet/3a4/buyer", "rosettanet", rosettanet.ROSETTANET
        ),
        seller_process=lambda: seller_request_reply(
            "rosettanet/3a4/seller", "rosettanet", rosettanet.ROSETTANET
        ),
    )


def _oagis_http() -> B2BProtocol:
    return B2BProtocol(
        name="oagis-http",
        codec=WireCodec(oagis.OAGIS, oagis.to_wire, oagis.from_wire),
        transport=TRANSPORT_PLAIN,
        buyer_process=lambda: buyer_request_reply(
            "oagis-http/po-bod/buyer", "oagis-http", oagis.OAGIS
        ),
        seller_process=lambda: seller_request_reply(
            "oagis-http/po-bod/seller", "oagis-http", oagis.OAGIS
        ),
    )


def _rosettanet_acknowledged() -> B2BProtocol:
    """RosettaNet with *business-level* receipt acknowledgments modeled in
    the public processes (Section 4.5's local-change example): every
    receive is answered with a ReceiptAcknowledgment, every send awaits
    one.  The receipts are produced and consumed entirely at the public
    level — the private process never sees them.
    """
    from repro.core.public_process import PublicProcessDefinition, PublicStep

    def buyer() -> PublicProcessDefinition:
        return PublicProcessDefinition(
            "rosettanet-ra/3a4/buyer",
            "rosettanet-ra",
            "buyer",
            rosettanet.ROSETTANET,
            [
                PublicStep("from_binding_request", "from_binding", "purchase_order"),
                PublicStep("send_request", "send", "purchase_order"),
                PublicStep("receive_request_receipt", "receive", "receipt_ack",
                           {"ack": True}),
                PublicStep("receive_reply", "receive", "po_ack"),
                PublicStep("send_reply_receipt", "send", "receipt_ack",
                           {"auto_ack": True}),
                PublicStep("to_binding_reply", "to_binding", "po_ack"),
            ],
        )

    def seller() -> PublicProcessDefinition:
        return PublicProcessDefinition(
            "rosettanet-ra/3a4/seller",
            "rosettanet-ra",
            "seller",
            rosettanet.ROSETTANET,
            [
                PublicStep("receive_request", "receive", "purchase_order"),
                PublicStep("send_request_receipt", "send", "receipt_ack",
                           {"auto_ack": True}),
                PublicStep("to_binding_request", "to_binding", "purchase_order"),
                PublicStep("from_binding_reply", "from_binding", "po_ack"),
                PublicStep("send_reply", "send", "po_ack"),
                PublicStep("receive_reply_receipt", "receive", "receipt_ack",
                           {"ack": True}),
            ],
        )

    return B2BProtocol(
        name="rosettanet-ra",
        codec=WireCodec(rosettanet.ROSETTANET, rosettanet.to_wire, rosettanet.from_wire),
        transport=TRANSPORT_RELIABLE,
        ack_timeout=2.0,
        max_retries=3,
        buyer_process=buyer,
        seller_process=seller,
        receipt_builder=rosettanet.make_receipt_ack,
    )


def _oagis_fulfillment() -> B2BProtocol:
    """A one-way, multi-step exchange: the *seller* dispatches a ship
    notice and then an invoice; the buyer only receives.  Demonstrates the
    paper's claim that the public/private concepts "support the general
    case of all possible patterns like one-way messages ... or multi-step
    message exchanges" (Section 1).
    """
    from repro.core.public_process import PublicProcessDefinition, PublicStep

    def seller() -> PublicProcessDefinition:
        return PublicProcessDefinition(
            "oagis-fulfillment/dispatch",
            "oagis-fulfillment",
            "seller",
            oagis.OAGIS,
            [
                PublicStep("from_binding_asn", "from_binding", "ship_notice"),
                PublicStep("send_asn", "send", "ship_notice"),
                PublicStep("from_binding_invoice", "from_binding", "invoice"),
                PublicStep("send_invoice", "send", "invoice"),
            ],
        )

    def buyer() -> PublicProcessDefinition:
        return PublicProcessDefinition(
            "oagis-fulfillment/receipt",
            "oagis-fulfillment",
            "buyer",
            oagis.OAGIS,
            [
                PublicStep("receive_asn", "receive", "ship_notice"),
                PublicStep("to_binding_asn", "to_binding", "ship_notice"),
                PublicStep("receive_invoice", "receive", "invoice"),
                PublicStep("to_binding_invoice", "to_binding", "invoice"),
            ],
        )

    return B2BProtocol(
        name="oagis-fulfillment",
        codec=WireCodec(oagis.OAGIS, oagis.to_wire, oagis.from_wire),
        transport=TRANSPORT_PLAIN,
        buyer_process=buyer,
        seller_process=seller,
    )


def _edi_van_997() -> B2BProtocol:
    """EDI over the VAN with 997 functional acknowledgments modeled in
    the public processes — the EDI-world twin of ``rosettanet-ra``."""
    from repro.core.public_process import PublicProcessDefinition, PublicStep

    def buyer() -> PublicProcessDefinition:
        return PublicProcessDefinition(
            "edi-van-997/850-855/buyer",
            "edi-van-997",
            "buyer",
            edi.EDI_X12,
            [
                PublicStep("from_binding_request", "from_binding", "purchase_order"),
                PublicStep("send_request", "send", "purchase_order"),
                PublicStep("receive_request_997", "receive", "functional_ack",
                           {"ack": True}),
                PublicStep("receive_reply", "receive", "po_ack"),
                PublicStep("send_reply_997", "send", "functional_ack",
                           {"auto_ack": True}),
                PublicStep("to_binding_reply", "to_binding", "po_ack"),
            ],
        )

    def seller() -> PublicProcessDefinition:
        return PublicProcessDefinition(
            "edi-van-997/850-855/seller",
            "edi-van-997",
            "seller",
            edi.EDI_X12,
            [
                PublicStep("receive_request", "receive", "purchase_order"),
                PublicStep("send_request_997", "send", "functional_ack",
                           {"auto_ack": True}),
                PublicStep("to_binding_request", "to_binding", "purchase_order"),
                PublicStep("from_binding_reply", "from_binding", "po_ack"),
                PublicStep("send_reply", "send", "po_ack"),
                PublicStep("receive_reply_997", "receive", "functional_ack",
                           {"ack": True}),
            ],
        )

    return B2BProtocol(
        name="edi-van-997",
        codec=WireCodec(edi.EDI_X12, edi.to_wire, edi.from_wire),
        transport=TRANSPORT_VAN,
        buyer_process=buyer,
        seller_process=seller,
        receipt_builder=edi.make_functional_ack,
    )


def _edi_fulfillment() -> B2BProtocol:
    """The one-way fulfillment dispatch over classic EDI: an 856 advance
    ship notice followed by an 810 invoice through the VAN."""
    from repro.core.public_process import PublicProcessDefinition, PublicStep

    def seller() -> PublicProcessDefinition:
        return PublicProcessDefinition(
            "edi-fulfillment/dispatch",
            "edi-fulfillment",
            "seller",
            edi.EDI_X12,
            [
                PublicStep("from_binding_asn", "from_binding", "ship_notice"),
                PublicStep("send_asn", "send", "ship_notice"),
                PublicStep("from_binding_invoice", "from_binding", "invoice"),
                PublicStep("send_invoice", "send", "invoice"),
            ],
        )

    def buyer() -> PublicProcessDefinition:
        return PublicProcessDefinition(
            "edi-fulfillment/receipt",
            "edi-fulfillment",
            "buyer",
            edi.EDI_X12,
            [
                PublicStep("receive_asn", "receive", "ship_notice"),
                PublicStep("to_binding_asn", "to_binding", "ship_notice"),
                PublicStep("receive_invoice", "receive", "invoice"),
                PublicStep("to_binding_invoice", "to_binding", "invoice"),
            ],
        )

    return B2BProtocol(
        name="edi-fulfillment",
        codec=WireCodec(edi.EDI_X12, edi.to_wire, edi.from_wire),
        transport=TRANSPORT_VAN,
        buyer_process=buyer,
        seller_process=seller,
    )


def _oagis_quotation() -> B2BProtocol:
    """RFQ/quote over OAGIS BODs — the exchange behind the paper's
    Section 2.3 confidentiality example.  Buyers typically *broadcast* the
    RFQ to several sellers (``B2BEngine.broadcast``); each resulting
    conversation is an ordinary request/reply instance of this protocol.
    """
    return B2BProtocol(
        name="oagis-quotation",
        codec=WireCodec(oagis.OAGIS, oagis.to_wire, oagis.from_wire),
        transport=TRANSPORT_PLAIN,
        buyer_process=lambda: buyer_request_reply(
            "oagis-quotation/buyer", "oagis-quotation", oagis.OAGIS,
            request_doc="request_for_quote", reply_doc="quote",
        ),
        seller_process=lambda: seller_request_reply(
            "oagis-quotation/seller", "oagis-quotation", oagis.OAGIS,
            request_doc="request_for_quote", reply_doc="quote",
        ),
    )


_STANDARD: dict[str, Callable[[], B2BProtocol]] = {
    "edi-van": _edi_van,
    "rosettanet": _rosettanet,
    "oagis-http": _oagis_http,
}

_EXTENDED: dict[str, Callable[[], B2BProtocol]] = {
    **_STANDARD,
    "rosettanet-ra": _rosettanet_acknowledged,
    "edi-van-997": _edi_van_997,
    "oagis-fulfillment": _oagis_fulfillment,
    "edi-fulfillment": _edi_fulfillment,
    "oagis-quotation": _oagis_quotation,
}


# Descriptors are frozen and their process factories build fresh definitions
# per call, so the built descriptors can be shared.  The naive baselines call
# get_protocol() from per-message activities (decode/encode steps), which made
# descriptor construction a hot-path cost worth caching.
_BUILT: dict[str, B2BProtocol] = {}


def standard_protocols() -> dict[str, B2BProtocol]:
    """The paper's three standard protocol descriptors."""
    return {name: get_protocol(name) for name in _STANDARD}


def extended_protocols() -> dict[str, B2BProtocol]:
    """All protocols including the receipt-acknowledged RosettaNet variant."""
    return {name: get_protocol(name) for name in _EXTENDED}


def get_protocol(name: str) -> B2BProtocol:
    """Look up one protocol descriptor by name (built once, shared)."""
    protocol = _BUILT.get(name)
    if protocol is None:
        try:
            factory = _EXTENDED[name]
        except KeyError:
            raise ProtocolError(
                f"unknown B2B protocol {name!r}; known: {sorted(_EXTENDED)}"
            ) from None
        protocol = _BUILT[name] = factory()
    return protocol
