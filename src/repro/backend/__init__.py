"""Back-end application simulators (the paper's ERPs).

Figure 1's process starts and ends inside "ERP" boxes: purchase orders are
*extracted from* and acknowledgments *stored into* back-end applications.
This package simulates two ERPs with genuinely different native formats —
an SAP-like system speaking IDoc flat files and an Oracle-like system
speaking open-interface-table records — so the integration layer has real
heterogeneity to bridge (the substitution table in DESIGN.md records why
these stand in for the paper's SAP [41] and Oracle [37]).

Each simulator owns an order store, an acceptance policy deciding how
incoming POs are acknowledged, an outbound document queue the integration
layer extracts from, and an optional processing delay on the shared event
scheduler.
"""

from repro.backend.base import (
    ERPSimulator,
    OrderRecord,
    accept_all,
    reject_over,
    partial_backorder,
)
from repro.backend.sap_sim import SapSimulator
from repro.backend.oracle_sim import OracleSimulator

__all__ = [
    "ERPSimulator",
    "OrderRecord",
    "SapSimulator",
    "OracleSimulator",
    "accept_all",
    "reject_over",
    "partial_backorder",
]
