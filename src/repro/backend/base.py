"""ERP simulator base: order store, acceptance policies, outbound queue.

An ERP simulator consumes and produces documents exclusively in its *native*
format (IDoc for the SAP-like system, OIF records for the Oracle-like one).
The application bindings of Section 4.4 are responsible for all translation
— a simulator raises on any other format, which is exactly the constraint
that forces the "Transform to SAP PO"/"Transform to normalized POA" steps
of Figure 14 to exist.

Acceptance policies stand in for the ERP's internal order logic: given the
order's key figures they decide the acknowledgment status and per-line
statuses.  ``processing_delay`` (with a shared scheduler) models the
asynchronous "once the PO is processed within the ERP" step of the paper's
running example.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.documents.model import Document
from repro.errors import BackendError
from repro.sim import EventScheduler

__all__ = [
    "OrderRecord",
    "AcceptancePolicy",
    "ERPSimulator",
    "accept_all",
    "reject_over",
    "partial_backorder",
]

# policy(po_number, total_amount, lines) -> (status, {line_no: line_status})
# statuses use the normalized vocabulary; subclasses translate to native codes.
AcceptancePolicy = Callable[[str, float, list[dict[str, Any]]], tuple[str, dict[int, str]]]

ReadyCallback = Callable[[str, Document], None]


def accept_all(po_number: str, total: float, lines: list[dict[str, Any]]) -> tuple[str, dict[int, str]]:
    """Accept every order in full (the default policy)."""
    return "accepted", {}


def reject_over(limit: float) -> AcceptancePolicy:
    """Reject orders whose total exceeds ``limit`` (credit-limit policy)."""

    def policy(po_number: str, total: float, lines: list[dict[str, Any]]) -> tuple[str, dict[int, str]]:
        if total > limit:
            return "rejected", {}
        return "accepted", {}

    return policy


def partial_backorder(out_of_stock: set[str]) -> AcceptancePolicy:
    """Backorder lines whose sku is out of stock; accept the rest."""

    def policy(po_number: str, total: float, lines: list[dict[str, Any]]) -> tuple[str, dict[int, str]]:
        line_statuses = {
            line["line_no"]: "backordered"
            for line in lines
            if line["sku"] in out_of_stock
        }
        if not line_statuses:
            return "accepted", {}
        if len(line_statuses) == len(lines):
            return "rejected", {line["line_no"]: "rejected" for line in lines}
        return "partial", line_statuses

    return policy


@dataclass
class OrderRecord:
    """One order as the ERP knows it."""

    po_number: str
    total_amount: float
    status: str                       # accepted / rejected / partial
    document: Document                # the native PO as received
    line_statuses: dict[int, str] = field(default_factory=dict)
    received_at: float = 0.0
    acknowledged_at: float | None = None


class ERPSimulator:
    """Base class for back-end application simulators.

    Subclasses define the native format and three hooks:
    :meth:`_po_fields`, :meth:`_build_ack` and :meth:`_ack_po_number`.

    :param name: application id (e.g. ``"SAP"``), used in rules and bindings.
    :param acceptance_policy: how incoming POs are acknowledged.
    :param scheduler: shared event scheduler; with ``processing_delay > 0``
        acknowledgments appear asynchronously.
    :param processing_delay: logical time between storing a PO and its
        acknowledgment becoming extractable.
    """

    format_name = ""  # subclasses set their native format

    def __init__(
        self,
        name: str,
        acceptance_policy: AcceptancePolicy | None = None,
        scheduler: EventScheduler | None = None,
        processing_delay: float = 0.0,
    ):
        if not self.format_name:
            raise BackendError("ERPSimulator subclasses must set format_name")
        self.name = name
        self.acceptance_policy = acceptance_policy or accept_all
        self.scheduler = scheduler
        self.processing_delay = processing_delay
        if processing_delay > 0 and scheduler is None:
            raise BackendError("processing_delay needs a scheduler")
        self.orders: dict[str, OrderRecord] = {}
        self.stored_acks: dict[str, Document] = {}
        self.outbound: deque[Document] = deque()
        self._ready_callbacks: list[ReadyCallback] = []
        self.stored_count = 0
        self.extracted_count = 0

    # -- integration-facing API ---------------------------------------------------

    def store_document(self, document: Document) -> None:
        """Accept a native-format document (the binding's 'Store' step)."""
        if document.format_name != self.format_name:
            raise BackendError(
                f"{self.name} only accepts {self.format_name!r} documents, "
                f"got {document.format_name!r} — a binding transformation is missing"
            )
        self.stored_count += 1
        if document.doc_type == "purchase_order":
            self._process_purchase_order(document.copy())
        elif document.doc_type == "po_ack":
            self._store_ack(document.copy())
        else:
            raise BackendError(
                f"{self.name} cannot process doc_type {document.doc_type!r}"
            )

    def extract_documents(self, doc_type: str | None = None) -> list[Document]:
        """Drain the outbound queue (the binding's 'Extract' step)."""
        drained: list[Document] = []
        remaining: deque[Document] = deque()
        while self.outbound:
            document = self.outbound.popleft()
            if doc_type is None or document.doc_type == doc_type:
                drained.append(document)
            else:
                remaining.append(document)
        self.outbound = remaining
        self.extracted_count += len(drained)
        return drained

    def extract_ack_for(self, po_number: str) -> Document | None:
        """Extract the acknowledgment answering ``po_number``, if ready."""
        return self.extract_document_for(po_number, "po_ack")

    def extract_document_for(self, po_number: str, doc_type: str) -> Document | None:
        """Extract the queued document of ``doc_type`` for ``po_number``."""
        for index, document in enumerate(self.outbound):
            if document.doc_type == doc_type and self._document_po_number(document) == po_number:
                del self.outbound[index]
                self.extracted_count += 1
                return document
        return None

    def _document_po_number(self, document: Document) -> str:
        if document.doc_type == "po_ack":
            return self._ack_po_number(document)
        po_number, _, _ = self._po_fields(document)
        return po_number

    def on_document_ready(self, callback: ReadyCallback) -> None:
        """Register a callback fired when an outbound document appears."""
        self._ready_callbacks.append(callback)

    def pending_outbound(self) -> int:
        """Number of documents waiting to be extracted."""
        return len(self.outbound)

    # -- order book queries ----------------------------------------------------------

    def order(self, po_number: str) -> OrderRecord:
        """Return the order record for ``po_number``."""
        try:
            return self.orders[po_number]
        except KeyError:
            raise BackendError(f"{self.name} has no order {po_number!r}") from None

    def has_order(self, po_number: str) -> bool:
        """True when the ERP holds an order with this number."""
        return po_number in self.orders

    def order_count(self) -> int:
        """Number of orders in the book."""
        return len(self.orders)

    # -- processing -----------------------------------------------------------------

    def _process_purchase_order(self, document: Document) -> None:
        po_number, total, lines = self._po_fields(document)
        if po_number in self.orders:
            raise BackendError(
                f"{self.name} already has order {po_number!r} "
                "(duplicate suppression belongs to the messaging layer)"
            )
        status, line_statuses = self.acceptance_policy(po_number, total, lines)
        now = self.scheduler.clock.now() if self.scheduler else 0.0
        record = OrderRecord(
            po_number=po_number,
            total_amount=total,
            status=status,
            document=document,
            line_statuses=line_statuses,
            received_at=now,
        )
        self.orders[po_number] = record
        if self.processing_delay > 0 and self.scheduler is not None:
            self.scheduler.after(
                self.processing_delay,
                lambda: self._emit_ack(record),
                label=f"{self.name} acknowledge {po_number}",
            )
        else:
            self._emit_ack(record)

    def _emit_ack(self, record: OrderRecord) -> None:
        now = self.scheduler.clock.now() if self.scheduler else 0.0
        record.acknowledged_at = now
        ack = self._build_ack(record, now)
        self.outbound.append(ack)
        for callback in self._ready_callbacks:
            callback(self.name, ack)

    def _store_ack(self, document: Document) -> None:
        po_number = self._ack_po_number(document)
        self.stored_acks[po_number] = document

    # -- subclass hooks ----------------------------------------------------------------

    def _po_fields(self, document: Document) -> tuple[str, float, list[dict[str, Any]]]:
        """Return (po_number, total_amount, lines) from a native PO.

        Lines use normalized keys: line_no, sku, quantity, unit_price.
        """
        raise NotImplementedError

    def _build_ack(self, record: OrderRecord, now: float) -> Document:
        """Build the native acknowledgment for a processed order."""
        raise NotImplementedError

    def _ack_po_number(self, document: Document) -> str:
        """Return the PO number a native acknowledgment answers."""
        raise NotImplementedError


def accepted_amount(lines: list[dict[str, Any]], line_statuses: dict[int, str], default_status: str) -> float:
    """Sum quantity x price over lines whose effective status is accepted."""
    total = 0.0
    for line in lines:
        status = line_statuses.get(line["line_no"], _default_line_status(default_status))
        if status == "accepted":
            total += line["quantity"] * line["unit_price"]
    return round(total, 2)


def _default_line_status(header_status: str) -> str:
    return "accepted" if header_status in ("accepted", "partial") else "rejected"
