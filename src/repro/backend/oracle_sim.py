"""Oracle-like ERP simulator: consumes/produces open-interface records.

Stands in for the paper's ``Oracle [37]`` back end.  Orders arrive as
``PO_HEADERS_INTERFACE``/``PO_LINES_INTERFACE`` record sets, and are
answered with ``PO_ACK_HEADERS``/``PO_ACK_LINES`` record sets; the
buyer-side API :meth:`enter_order` creates an outbound PO the way a
requisition import run would.
"""

from __future__ import annotations

from typing import Any

from repro.backend.base import ERPSimulator, OrderRecord, accepted_amount
from repro.documents import oracle_oif
from repro.documents.model import Document
from repro.errors import BackendError

__all__ = ["OracleSimulator"]


class OracleSimulator(ERPSimulator):
    """An ERP whose native tongue is the ``oracle-oif`` record format."""

    format_name = oracle_oif.ORACLE_OIF

    # -- subclass hooks -----------------------------------------------------------

    def _po_fields(self, document: Document) -> tuple[str, float, list[dict[str, Any]]]:
        po_number = document.get("header.document_num")
        total = float(document.get("header.total_amount"))
        lines = [
            {
                "line_no": int(line["line_num"]),
                "sku": line["item_id"],
                "quantity": float(line["quantity"]),
                "unit_price": float(line["unit_price"]),
            }
            for line in document.get("lines")
        ]
        return po_number, total, lines

    def _build_ack(self, record: OrderRecord, now: float) -> Document:
        po_document = record.document
        _, _, lines = self._po_fields(po_document)
        ack_lines = []
        for line in lines:
            status = record.line_statuses.get(
                line["line_no"],
                "accepted" if record.status in ("accepted", "partial") else "rejected",
            )
            quantity = 0.0 if status == "rejected" else line["quantity"]
            ack_lines.append(
                {
                    "line_num": line["line_no"],
                    "item_id": line["sku"],
                    "line_status": oracle_oif.LINE_STATUS_BY_STATUS[status],
                    "quantity": quantity,
                }
            )
        data = {
            "header": {
                "interface_header_id": f"POA-DOC-{record.po_number}",
                "document_num": record.po_number,
                "acceptance_code": oracle_oif.ACCEPTANCE_BY_STATUS[record.status],
                "buyer_org": po_document.get("header.buyer_org"),
                "vendor_org": po_document.get("header.vendor_org"),
                "accepted_amount": accepted_amount(
                    lines, record.line_statuses, record.status
                ),
                "creation_date": now,
            },
            "lines": ack_lines,
        }
        return Document(oracle_oif.ORACLE_OIF, "po_ack", data)

    def _ack_po_number(self, document: Document) -> str:
        return document.get("header.document_num")

    # -- buyer-side order entry ---------------------------------------------------

    def enter_order(
        self,
        po_number: str,
        buyer_id: str,
        seller_id: str,
        lines: list[dict[str, Any]],
        currency: str = "USD",
        payment_terms: str = "NET30",
    ) -> Document:
        """Create a purchase order inside the ERP and queue it for extraction."""
        if not lines:
            raise BackendError("an order needs at least one line")
        now = self.scheduler.clock.now() if self.scheduler else 0.0
        records = []
        total = 0.0
        for position, line in enumerate(lines, start=1):
            quantity = float(line["quantity"])
            price = round(float(line["unit_price"]), 2)
            total += quantity * price
            records.append(
                {
                    "line_num": int(line.get("line_no", position)),
                    "item_id": str(line["sku"]),
                    "item_description": str(line.get("description", "")),
                    "quantity": quantity,
                    "unit_price": price,
                }
            )
        data = {
            "header": {
                "interface_header_id": f"PO-DOC-{po_number}",
                "document_num": str(po_number),
                "currency_code": str(currency),
                "buyer_org": str(buyer_id),
                "vendor_org": str(seller_id),
                "terms": str(payment_terms),
                "total_amount": round(total, 2),
                "creation_date": now,
            },
            "lines": records,
        }
        document = Document(oracle_oif.ORACLE_OIF, "purchase_order", data)
        self.outbound.append(document)
        for callback in self._ready_callbacks:
            callback(self.name, document)
        return document
