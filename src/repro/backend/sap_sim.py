"""SAP-like ERP simulator: consumes/produces IDoc documents.

Stands in for the paper's ``SAP [41]`` back end.  Orders arrive as
``ORDERS`` IDocs, are booked against the acceptance policy, and are
answered with ``ORDRSP`` IDocs; the buyer-side API :meth:`enter_order`
creates an outbound ``ORDERS`` IDoc the way an SAP user saving a purchase
requisition would.
"""

from __future__ import annotations

from typing import Any

from repro.backend.base import ERPSimulator, OrderRecord, accepted_amount
from repro.documents import idoc
from repro.documents.model import Document
from repro.errors import BackendError

__all__ = ["SapSimulator"]


class SapSimulator(ERPSimulator):
    """An ERP whose native tongue is the ``sap-idoc`` flat format."""

    format_name = idoc.SAP_IDOC

    # -- subclass hooks -----------------------------------------------------------

    def _po_fields(self, document: Document) -> tuple[str, float, list[dict[str, Any]]]:
        po_number = document.get("header.belnr")
        total = float(document.get("summary.summe"))
        lines = [
            {
                "line_no": int(item["posex"]),
                "sku": item["matnr"],
                "quantity": float(item["menge"]),
                "unit_price": float(item["vprei"]),
            }
            for item in document.get("items")
        ]
        return po_number, total, lines

    def _build_ack(self, record: OrderRecord, now: float) -> Document:
        po_document = record.document
        _, _, lines = self._po_fields(po_document)
        items = []
        for line in lines:
            status = record.line_statuses.get(
                line["line_no"],
                "accepted" if record.status in ("accepted", "partial") else "rejected",
            )
            quantity = 0.0 if status == "rejected" else line["quantity"]
            items.append(
                {
                    "posex": line["line_no"],
                    "menge": quantity,
                    "matnr": line["sku"],
                    "action": idoc.ITEM_ACTION_BY_STATUS[status],
                }
            )
        data = {
            "control": {
                "idoc_number": f"POA-DOC-{record.po_number}"[:24],
                "idoc_type": "ORDERS05",
                "message_type": "ORDRSP",
                "sender_port": "SAPERP",
                "receiver_port": "B2BHUB",
                "created_at": now,
            },
            "header": {
                "action": idoc.ACTION_BY_STATUS[record.status],
                "curcy": "",
                "belnr": record.po_number,
                "bsart": "NB",
                "zterm": "",
            },
            "partners": [dict(p) for p in po_document.get("partners")],
            "items": items,
            "summary": {
                "summe": accepted_amount(lines, record.line_statuses, record.status)
            },
        }
        return Document(idoc.SAP_IDOC, "po_ack", data)

    def _ack_po_number(self, document: Document) -> str:
        return document.get("header.belnr")

    # -- buyer-side order entry ---------------------------------------------------

    def enter_order(
        self,
        po_number: str,
        buyer_id: str,
        seller_id: str,
        lines: list[dict[str, Any]],
        currency: str = "USD",
        payment_terms: str = "NET30",
    ) -> Document:
        """Create a purchase order inside the ERP and queue it for extraction.

        ``lines`` items need ``sku``, ``quantity``, ``unit_price`` and may
        carry ``line_no``/``description``.
        """
        if not lines:
            raise BackendError("an order needs at least one line")
        now = self.scheduler.clock.now() if self.scheduler else 0.0
        items = []
        total = 0.0
        for position, line in enumerate(lines, start=1):
            quantity = float(line["quantity"])
            price = round(float(line["unit_price"]), 2)
            total += quantity * price
            items.append(
                {
                    "posex": int(line.get("line_no", position)),
                    "menge": quantity,
                    "vprei": price,
                    "matnr": str(line["sku"]),
                    "arktx": str(line.get("description", ""))[:40],
                }
            )
        data = {
            "control": {
                "idoc_number": f"PO-DOC-{po_number}"[:24],
                "idoc_type": "ORDERS05",
                "message_type": "ORDERS",
                "sender_port": "SAPERP",
                "receiver_port": "B2BHUB",
                "created_at": now,
            },
            "header": {
                "action": "000",
                "curcy": currency[:3],
                "belnr": str(po_number),
                "bsart": "NB",
                "zterm": payment_terms[:10],
            },
            "partners": [
                {"parvw": "AG", "partn": str(buyer_id)},
                {"parvw": "LF", "partn": str(seller_id)},
            ],
            "items": items,
            "summary": {"summe": round(total, 2)},
        }
        document = Document(idoc.SAP_IDOC, "purchase_order", data)
        self.outbound.append(document)
        for callback in self._ready_callbacks:
            callback(self.name, document)
        return document
