"""The rejected architectures, built and executable for comparison.

The paper's argument is comparative; to reproduce it the alternatives must
exist as real systems, not straw men:

* :mod:`repro.baselines.distributed_interorg` — Section 2's distributed
  inter-organizational workflow (shared types, instance migration,
  master/slave subworkflow distribution) with the knowledge-exposure
  metric of Section 2.3;
* :mod:`repro.baselines.cooperative` — Section 3's cooperative workflows
  (Figure 8): independent local workflows with message exchange,
  transformation and business rules coded inside the workflow types;
* :mod:`repro.baselines.monolithic` — the Figure 9/10 generator: the naive
  workflow type for any (protocols x partners x back ends) topology, both
  runnable and measurable, exhibiting the combinatorial growth the paper
  criticizes.
"""

from repro.baselines.monolithic import build_naive_seller_type, naive_element_index
from repro.baselines.cooperative import CooperativeCommunity
from repro.baselines.distributed_interorg import (
    build_interorg_roundtrip_types,
    foreign_rule_exposure,
)

__all__ = [
    "build_naive_seller_type",
    "naive_element_index",
    "CooperativeCommunity",
    "build_interorg_roundtrip_types",
    "foreign_rule_exposure",
]
