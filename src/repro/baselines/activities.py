"""Activities used by the baseline (naive) workflow types.

In the naive architectures, parsing, transformation, back-end access and
message sending are ordinary workflow steps *inside* the workflow type —
the entanglement Section 3 criticizes.  These activity implementations are
deliberately thin wrappers over the same substrates the advanced
architecture uses (codecs, the mapping catalog, the ERP simulators), so
the comparison measures *architecture*, not implementation quality.
"""

from __future__ import annotations

from typing import Any

from repro.b2b.protocol import get_protocol
from repro.errors import ActivityError
from repro.workflow.activities import ActivityContext, ActivityRegistry, Waiting

__all__ = ["register_naive_activities"]


def _decode_wire(context: ActivityContext) -> dict[str, Any]:
    """Parse a wire string into its format-layout document.

    Params: ``protocol``.  Inputs: ``wire_text``.  Output: ``document``.
    """
    protocol = get_protocol(context.params["protocol"])
    return {"document": protocol.codec.from_wire(context.inputs["wire_text"])}


def _encode_wire(context: ActivityContext) -> dict[str, Any]:
    """Serialize a format-layout document to its wire string.

    Params: ``protocol``.  Inputs: ``document``.  Output: ``wire_text``.
    """
    protocol = get_protocol(context.params["protocol"])
    return {"wire_text": protocol.codec.to_wire(context.inputs["document"])}


def _transform_document(context: ActivityContext) -> dict[str, Any]:
    """An inline transformation step (the naive Figure 9 'Transform X to Y').

    Params: ``target_format``.  Inputs: ``document``.  Output: ``document``.
    """
    transforms = context.service("transforms")
    document = transforms.transform(
        context.inputs["document"],
        context.params["target_format"],
        {"now": context.now, **{k: v for k, v in context.inputs.items() if k != "document"}},
    )
    return {"document": document}


def _naive_determine_target(context: ActivityContext) -> dict[str, Any]:
    """The naive 'Target' decision step with its routing table hardcoded
    into the workflow type (params), not externalized as a rule.

    Params: ``routing`` (partner -> application).  Inputs: ``source``.
    Output: ``target``.
    """
    routing: dict[str, str] = context.params["routing"]
    source = context.inputs["source"]
    if source not in routing:
        raise ActivityError(f"naive routing table has no entry for {source!r}")
    return {"target": routing[source]}


def _store_backend(context: ActivityContext) -> dict[str, Any]:
    """Store a native-format document directly into a back end.

    Params: ``application``.  Inputs: ``document``.
    Outputs: ``po_number``, ``amount``.
    """
    backends = context.service("backends")
    application = context.params["application"]
    try:
        backend = backends[application]
    except KeyError:
        raise ActivityError(f"no back end {application!r} wired") from None
    document = context.inputs["document"]
    backend.store_document(document)
    if document.doc_type == "purchase_order":
        po_number, amount, _ = backend._po_fields(document)
        return {"po_number": po_number, "amount": amount}
    return {"po_number": backend._document_po_number(document), "amount": 0.0}


def _extract_backend(context: ActivityContext) -> dict[str, Any] | Waiting:
    """Extract a document from a back end (native format).

    Params: ``application``, ``doc_type``.  Inputs: ``po_number``.
    Output: ``document``.
    """
    backends = context.service("backends")
    application = context.params["application"]
    doc_type = context.params.get("doc_type", "po_ack")
    try:
        backend = backends[application]
    except KeyError:
        raise ActivityError(f"no back end {application!r} wired") from None
    document = backend.extract_document_for(context.inputs["po_number"], doc_type)
    if document is None:
        return Waiting(wait_key=f"erp:{application}:{context.inputs['po_number']}:{doc_type}")
    return {"document": document}


def _send_wire(context: ActivityContext) -> dict[str, Any]:
    """Send a wire string to a partner through the naive runtime's sender.

    Params: ``protocol``.  Inputs: ``wire_text``, ``destination``,
    ``conversation_id``.
    """
    sender = context.service("naive_sender")
    sender(
        context.params["protocol"],
        context.inputs["destination"],
        context.inputs["wire_text"],
        context.inputs.get("conversation_id", ""),
    )
    return {}


def _receive_wire(context: ActivityContext) -> Waiting:
    """Park until the naive runtime delivers the awaited wire message.

    Inputs: ``conversation_id``.  Completed with ``{"wire_text": ...}``.
    """
    return Waiting(wait_key=f"naive:{context.inputs['conversation_id']}:reply")


def register_naive_activities(registry: ActivityRegistry) -> ActivityRegistry:
    """Register every naive-baseline activity into ``registry``."""
    registry.register_many(
        {
            "decode_wire": _decode_wire,
            "encode_wire": _encode_wire,
            "transform_document": _transform_document,
            "naive_determine_target": _naive_determine_target,
            "store_backend": _store_backend,
            "extract_backend": _extract_backend,
            "send_wire": _send_wire,
            "receive_wire": _receive_wire,
        }
    )
    return registry
