"""Cooperative inter-organizational workflows (Section 3, Figure 8).

Each enterprise runs one *local* workflow; only messages are shared.  This
fixes the knowledge-exposure problem of Section 2 — but message exchange
sequencing, transformations and business rules are still coded inside the
workflow types, so the baseline exhibits exactly the remaining problems of
Sections 3.1-3.3: a per-protocol, per-back-end, per-partner workflow type
whose conditions embed thresholds and whose steps embed formats.

:class:`CooperativeCommunity` wires a buyer and a seller enterprise with
these workflow types over the simulated network and runs the Figure 8
round trip end to end.
"""

from __future__ import annotations

from typing import Any

from repro.b2b.protocol import get_protocol
from repro.baselines.activities import register_naive_activities
from repro.backend.base import ERPSimulator
from repro.core.private_process import register_private_activities
from repro.errors import IntegrationError
from repro.messaging.envelope import Message
from repro.messaging.network import SimulatedNetwork
from repro.messaging.transport import Endpoint
from repro.transform.catalog import build_standard_registry
from repro.workflow.activities import built_in_registry
from repro.workflow.definitions import WorkflowBuilder, WorkflowType
from repro.workflow.engine import WorkflowEngine
from repro.workflow.instance import WorkflowInstance
from repro.workflow.worklist import Worklist

__all__ = [
    "build_cooperative_buyer_type",
    "build_cooperative_seller_type",
    "CooperativeCommunity",
]


def build_cooperative_buyer_type(
    protocol_name: str,
    application: str,
    native_format: str,
    approval_threshold: float,
    name: str = "coop-buyer",
) -> WorkflowType:
    """Figure 8's left workflow: extract PO -> transform -> (approve) ->
    send PO -> receive POA -> transform POA -> store POA.

    Note everything the paper criticizes is present: the wire format, the
    protocol, the back end and the approval threshold are all baked into
    the type.  Instance variables supplied at creation: ``po_number``,
    ``amount``, ``destination``, ``conversation_id``.
    """
    wire_format = get_protocol(protocol_name).wire_format
    builder = WorkflowBuilder(name, owner="buyer")
    builder.variable("po_number", "").variable("amount", 0.0)
    builder.variable("destination", "").variable("conversation_id", "")
    builder.variable("document").variable("wire_text", "").variable("approved", False)

    builder.activity(
        "extract_po",
        "extract_backend",
        params={"application": application, "doc_type": "purchase_order"},
        inputs={"po_number": "po_number"},
        outputs={"document": "document"},
        tags=("backend",),
        label="Extract PO",
    )
    builder.activity(
        "approve_po",
        "request_approval",
        inputs={"document": "document"},
        outputs={"approved": "approved"},
        tags=("business-rule", "approval"),
        label="Approve PO",
    )
    builder.activity(
        "transform_po",
        "transform_document",
        params={"target_format": wire_format},
        inputs={"document": "document"},
        outputs={"document": "document"},
        join="XOR",
        tags=("transformation",),
        label="Transform PO",
    )
    builder.activity(
        "encode_po",
        "encode_wire",
        params={"protocol": protocol_name},
        inputs={"document": "document"},
        outputs={"wire_text": "wire_text"},
        label="Encode PO",
        after="transform_po",
    )
    builder.activity(
        "send_po",
        "send_wire",
        params={"protocol": protocol_name},
        inputs={
            "wire_text": "wire_text",
            "destination": "destination",
            "conversation_id": "conversation_id",
        },
        tags=("send",),
        label="Send PO",
        after="encode_po",
    )
    # The split-induced extra control flow the paper calls out: receive
    # must be ordered after send explicitly once the round trip is split.
    builder.activity(
        "receive_poa",
        "receive_wire",
        inputs={"conversation_id": "conversation_id"},
        outputs={"wire_text": "wire_text"},
        tags=("receive",),
        label="Receive POA",
        after="send_po",
    )
    builder.activity(
        "decode_poa",
        "decode_wire",
        params={"protocol": protocol_name},
        inputs={"wire_text": "wire_text"},
        outputs={"document": "document"},
        label="Decode POA",
        after="receive_poa",
    )
    builder.activity(
        "transform_poa",
        "transform_document",
        params={"target_format": native_format},
        inputs={"document": "document"},
        outputs={"document": "document"},
        tags=("transformation",),
        label="Transform POA",
        after="decode_poa",
    )
    builder.activity(
        "store_poa",
        "store_backend",
        params={"application": application},
        inputs={"document": "document"},
        tags=("backend",),
        label="Store POA",
        after="transform_poa",
    )
    builder.link("extract_po", "approve_po", condition=f"amount > {approval_threshold}")
    builder.link("extract_po", "transform_po", otherwise=True)
    builder.link("approve_po", "transform_po")
    builder.meta(cooperative=True)
    return builder.build()


def build_cooperative_seller_type(
    protocol_name: str,
    application: str,
    native_format: str,
    thresholds: dict[str, float],
    name: str = "coop-seller",
) -> WorkflowType:
    """Figure 8's right workflow: receive PO -> transform -> (approve) ->
    store PO -> extract POA -> transform POA -> send POA.

    Instance variables supplied at creation: ``wire_text``, ``source``,
    ``conversation_id``.
    """
    wire_format = get_protocol(protocol_name).wire_format
    builder = WorkflowBuilder(name, owner="seller")
    builder.variable("wire_text", "").variable("source", "")
    builder.variable("conversation_id", "")
    builder.variable("document").variable("po_number", "").variable("amount", 0.0)
    builder.variable("approved", False)

    builder.activity(
        "receive_po",
        "noop",
        tags=("receive",),
        label="Receive PO",
    )
    builder.activity(
        "decode_po",
        "decode_wire",
        params={"protocol": protocol_name},
        inputs={"wire_text": "wire_text"},
        outputs={"document": "document"},
        label="Decode PO",
        after="receive_po",
    )
    builder.activity(
        "transform_po",
        "transform_document",
        params={"target_format": native_format},
        inputs={"document": "document", "sender_id": "source"},
        outputs={"document": "document"},
        tags=("transformation",),
        label="Transform PO",
        after="decode_po",
    )
    builder.activity(
        "store_po",
        "store_backend",
        params={"application": application},
        inputs={"document": "document"},
        outputs={"po_number": "po_number", "amount": "amount"},
        tags=("backend",),
        label="Store PO",
        after="transform_po",
    )
    builder.activity(
        "approve_po",
        "request_approval",
        inputs={"document": "document"},
        outputs={"approved": "approved"},
        tags=("business-rule", "approval"),
        label="Approve PO",
    )
    builder.activity(
        "extract_poa",
        "extract_backend",
        params={"application": application, "doc_type": "po_ack"},
        inputs={"po_number": "po_number"},
        outputs={"document": "document"},
        join="XOR",
        tags=("backend",),
        label="Extract POA",
    )
    builder.activity(
        "transform_poa",
        "transform_document",
        params={"target_format": wire_format},
        inputs={"document": "document"},
        outputs={"document": "document"},
        tags=("transformation",),
        label="Transform POA",
        after="extract_poa",
    )
    builder.activity(
        "encode_poa",
        "encode_wire",
        params={"protocol": protocol_name},
        inputs={"document": "document"},
        outputs={"wire_text": "wire_text"},
        label="Encode POA",
        after="transform_poa",
    )
    builder.activity(
        "send_poa",
        "send_wire",
        params={"protocol": protocol_name},
        inputs={
            "wire_text": "wire_text",
            "destination": "source",
            "conversation_id": "conversation_id",
        },
        tags=("send",),
        label="Send POA",
        after="encode_poa",
    )
    # The inline partner-specific rule of Figure 8 (right side).
    condition = " or ".join(
        f"amount > {threshold} and source == '{partner}'"
        for partner, threshold in sorted(thresholds.items())
    ) or "False"
    builder.link("store_po", "approve_po", condition=condition)
    builder.link("store_po", "extract_poa", otherwise=True)
    builder.link("approve_po", "extract_poa")
    builder.meta(cooperative=True)
    return builder.build()


class _CooperativeNode:
    """One enterprise in the cooperative community."""

    def __init__(self, name: str, network: SimulatedNetwork, backend: ERPSimulator):
        self.name = name
        self.endpoint = Endpoint(name, network)
        self.backend = backend
        self.worklist = Worklist(name)
        self.worklist.set_auto_policy(lambda item: {"approved": True})
        activities = register_naive_activities(built_in_registry())
        register_private_activities(activities)
        self.engine = WorkflowEngine(
            f"{name}-wfms",
            activities=activities,
            clock=network.scheduler.clock,
            services={
                "transforms": build_standard_registry(),
                "backends": {backend.name: backend},
                "worklist": self.worklist,
                "naive_sender": self._send,
            },
            runtime=network.runtime,
        )
        backend.on_document_ready(self._backend_ready)

    def _send(self, protocol: str, destination: str, wire_text: str, conversation_id: str) -> None:
        doc_type = "purchase_order" if self.name_is_buyer else "po_ack"
        self.endpoint.send(
            Message(
                message_id=self.endpoint.next_message_id(),
                sender=self.name,
                receiver=destination,
                protocol=protocol,
                doc_type=doc_type,
                body=wire_text,
                conversation_id=conversation_id,
            )
        )

    name_is_buyer = False

    def _backend_ready(self, application: str, document) -> None:
        po_number = self.backend._document_po_number(document)
        wait_key = f"erp:{application}:{po_number}:{document.doc_type}"
        if not self.engine.has_waiting(wait_key):
            return
        extracted = self.backend.extract_document_for(po_number, document.doc_type)
        if extracted is not None:
            self.engine.complete_waiting_step(wait_key, {"document": extracted})


class CooperativeCommunity:
    """A buyer and a seller running Figure 8's cooperative workflows.

    :param protocol_name: the single protocol both types hardcode.
    :param buyer_backend / seller_backend: the ERP simulators.
    :param buyer_threshold: the buyer's inline approval amount (Figure 1
        uses 10 000).
    :param seller_thresholds: partner -> amount (Figure 1 uses 550 000).
    """

    def __init__(
        self,
        network: SimulatedNetwork,
        buyer_name: str,
        seller_name: str,
        buyer_backend: ERPSimulator,
        seller_backend: ERPSimulator,
        protocol_name: str = "edi-van",
        buyer_threshold: float = 10000,
        seller_thresholds: dict[str, float] | None = None,
    ):
        self.network = network
        self.protocol_name = protocol_name
        self.buyer = _CooperativeNode(buyer_name, network, buyer_backend)
        self.buyer.name_is_buyer = True
        self.seller = _CooperativeNode(seller_name, network, seller_backend)
        self.buyer_type = build_cooperative_buyer_type(
            protocol_name,
            buyer_backend.name,
            buyer_backend.format_name,
            buyer_threshold,
        )
        self.seller_type = build_cooperative_seller_type(
            protocol_name,
            seller_backend.name,
            seller_backend.format_name,
            seller_thresholds or {buyer_name: 550000},
        )
        self.buyer.engine.deploy(self.buyer_type)
        self.seller.engine.deploy(self.seller_type)
        self.buyer.endpoint.on_message(self._buyer_receives)
        self.seller.endpoint.on_message(self._seller_receives)
        self._conversation_count = 0
        self.buyer_instances: dict[str, str] = {}   # conversation -> instance
        self.seller_instances: dict[str, str] = {}

    # -- traffic ------------------------------------------------------------------

    def _buyer_receives(self, message: Message) -> None:
        wait_key = f"naive:{message.conversation_id}:reply"
        if self.buyer.engine.has_waiting(wait_key):
            self.buyer.engine.complete_waiting_step(wait_key, {"wire_text": message.body})

    def _seller_receives(self, message: Message) -> None:
        # Partner-keyed ingress: on a sharded runtime the seller handles
        # each buyer's orders on that buyer's shard.
        self.seller.engine.runtime.submit(
            lambda: self._seller_handles(message),
            label=f"{self.seller.name}:ingress:{message.message_id}",
            partner_key=message.sender,
        )
        self.seller.engine.runtime.drain()

    def _seller_handles(self, message: Message) -> None:
        instance_id = self.seller.engine.create_instance(
            self.seller_type.name,
            variables={
                "wire_text": message.body,
                "source": message.sender,
                "conversation_id": message.conversation_id,
            },
        )
        self.seller_instances[message.conversation_id] = instance_id
        self.seller.engine.start(instance_id)

    # -- driving -------------------------------------------------------------------

    def submit_order(self, po_number: str, lines: list[dict[str, Any]]) -> str:
        """Enter an order at the buyer and start its local workflow.
        Returns the conversation id."""
        self._conversation_count += 1
        conversation_id = f"COOP-{self._conversation_count:04d}"
        order = self.buyer.backend.enter_order(
            po_number, self.buyer.name, self.seller.name, lines
        )
        po_number_str, amount, _ = self.buyer.backend._po_fields(order)
        instance_id = self.buyer.engine.create_instance(
            self.buyer_type.name,
            variables={
                "po_number": po_number_str,
                "amount": amount,
                "destination": self.seller.name,
                "conversation_id": conversation_id,
            },
        )
        self.buyer_instances[conversation_id] = instance_id
        self.buyer.engine.start(instance_id)
        return conversation_id

    def run(self, max_events: int = 100_000) -> None:
        """Drain the network until quiescent."""
        self.network.scheduler.run_until_idle(max_events)

    def buyer_instance(self, conversation_id: str) -> WorkflowInstance:
        """The buyer's local instance for a conversation."""
        try:
            return self.buyer.engine.get_instance(self.buyer_instances[conversation_id])
        except KeyError:
            raise IntegrationError(f"unknown conversation {conversation_id!r}") from None

    def seller_instance(self, conversation_id: str) -> WorkflowInstance:
        """The seller's local instance for a conversation."""
        try:
            return self.seller.engine.get_instance(self.seller_instances[conversation_id])
        except KeyError:
            raise IntegrationError(f"unknown conversation {conversation_id!r}") from None
