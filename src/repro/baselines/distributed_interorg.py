"""Distributed inter-organizational workflow management (Section 2),
executable, with the knowledge-exposure measurement of Section 2.3.

The Figure 2/3 round trip is modelled as **one** workflow type whose parts
belong to two different enterprises:

* ``interorg-left-prepare`` (owner: the buyer) — extract PO, the buyer's
  approval rule, transform/encode to the wire format;
* ``interorg-right-process`` (owner: the seller) — decode, transform to
  the seller's ERP, the seller's partner-specific approval rule, store,
  extract and encode the POA;
* ``interorg-left-finish`` (owner: the buyer) — decode and store the POA.

Two execution variants, matching Figure 5:

* **migration** (:func:`run_migrating_roundtrip`) — the whole type closure
  is deployed on both engines (Figure 6's automatic type migration does it)
  and the instance migrates buyer -> seller -> buyer at the hand-over
  points.  Consequence: *both* enterprises end up holding *both* parties'
  business rules — measured by :func:`foreign_rule_exposure`.
* **distribution** (:func:`run_distributed_roundtrip`) — the middle part is
  a :class:`~repro.workflow.definitions.RemoteSubworkflowStep` executed by
  the seller's engine; only the subworkflow *interface* crosses the
  boundary, but the master controls the slave's execution (the tight
  coupling of Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.b2b.protocol import get_protocol
from repro.backend.base import ERPSimulator
from repro.baselines.activities import register_naive_activities
from repro.core.metrics import comparison_terms
from repro.core.private_process import register_private_activities
from repro.runtime import Runtime
from repro.sim import Clock
from repro.workflow.activities import built_in_registry
from repro.workflow.definitions import (
    RemoteSubworkflowStep,
    WorkflowBuilder,
    WorkflowType,
)
from repro.workflow.distributed import EngineDirectory, MigrationReport, migrate_instance
from repro.workflow.engine import WorkflowEngine
from repro.workflow.instance import WorkflowInstance
from repro.workflow.worklist import Worklist

__all__ = [
    "build_interorg_roundtrip_types",
    "make_participant_engine",
    "run_migrating_roundtrip",
    "run_distributed_roundtrip",
    "foreign_rule_exposure",
    "InterorgResult",
]

_PROTOCOL = "edi-van"


def _left_prepare(owner: str, application: str, threshold: float) -> WorkflowType:
    wire_format = get_protocol(_PROTOCOL).wire_format
    builder = WorkflowBuilder("interorg-left-prepare", owner=owner)
    builder.variable("po_number", "").variable("amount", 0.0)
    builder.variable("document").variable("wire_text", "").variable("approved", False)
    builder.activity(
        "extract_po",
        "extract_backend",
        params={"application": application, "doc_type": "purchase_order"},
        inputs={"po_number": "po_number"},
        outputs={"document": "document"},
        tags=("backend",),
    )
    builder.activity(
        "approve_po",
        "request_approval",
        inputs={"document": "document"},
        outputs={"approved": "approved"},
        tags=("business-rule", "approval"),
    )
    builder.activity(
        "transform_po",
        "transform_document",
        params={"target_format": wire_format},
        inputs={"document": "document"},
        outputs={"document": "document"},
        join="XOR",
        tags=("transformation",),
    )
    builder.activity(
        "encode_po",
        "encode_wire",
        params={"protocol": _PROTOCOL},
        inputs={"document": "document"},
        outputs={"wire_text": "wire_text"},
        after="transform_po",
    )
    builder.link("extract_po", "approve_po", condition=f"amount > {threshold}")
    builder.link("extract_po", "transform_po", otherwise=True)
    builder.link("approve_po", "transform_po")
    return builder.build()


def _right_process(owner: str, application: str, thresholds: dict[str, float]) -> WorkflowType:
    wire_format = get_protocol(_PROTOCOL).wire_format
    builder = WorkflowBuilder("interorg-right-process", owner=owner)
    builder.variable("wire_text", "").variable("source", "")
    builder.variable("document").variable("po_number", "").variable("amount", 0.0)
    builder.variable("approved", False)
    native_format_param = {"application": application}
    builder.activity(
        "decode_po",
        "decode_wire",
        params={"protocol": _PROTOCOL},
        inputs={"wire_text": "wire_text"},
        outputs={"document": "document"},
    )
    builder.activity(
        "transform_po",
        "transform_document",
        params={"target_format": "__native__"},  # replaced below
        inputs={"document": "document", "sender_id": "source"},
        outputs={"document": "document"},
        tags=("transformation",),
        after="decode_po",
    )
    builder.activity(
        "store_po",
        "store_backend",
        params=dict(native_format_param),
        inputs={"document": "document"},
        outputs={"po_number": "po_number", "amount": "amount"},
        tags=("backend",),
        after="transform_po",
    )
    builder.activity(
        "approve_po",
        "request_approval",
        inputs={"document": "document"},
        outputs={"approved": "approved"},
        tags=("business-rule", "approval"),
    )
    builder.activity(
        "extract_poa",
        "extract_backend",
        params={"application": application, "doc_type": "po_ack"},
        inputs={"po_number": "po_number"},
        outputs={"document": "document"},
        join="XOR",
        tags=("backend",),
    )
    builder.activity(
        "transform_poa",
        "transform_document",
        params={"target_format": wire_format},
        inputs={"document": "document"},
        outputs={"document": "document"},
        tags=("transformation",),
        after="extract_poa",
    )
    builder.activity(
        "encode_poa",
        "encode_wire",
        params={"protocol": _PROTOCOL},
        inputs={"document": "document"},
        outputs={"wire_text": "wire_text"},
        after="transform_poa",
    )
    condition = " or ".join(
        f"amount > {threshold} and source == '{partner}'"
        for partner, threshold in sorted(thresholds.items())
    ) or "False"
    builder.link("store_po", "approve_po", condition=condition)
    builder.link("store_po", "extract_poa", otherwise=True)
    builder.link("approve_po", "extract_poa")
    return builder.build()


def _left_finish(owner: str, application: str, native_format: str) -> WorkflowType:
    builder = WorkflowBuilder("interorg-left-finish", owner=owner)
    builder.variable("wire_text", "").variable("document")
    builder.activity(
        "decode_poa",
        "decode_wire",
        params={"protocol": _PROTOCOL},
        inputs={"wire_text": "wire_text"},
        outputs={"document": "document"},
    )
    builder.activity(
        "transform_poa",
        "transform_document",
        params={"target_format": native_format},
        inputs={"document": "document"},
        outputs={"document": "document"},
        tags=("transformation",),
        after="decode_poa",
    )
    builder.activity(
        "store_poa",
        "store_backend",
        params={"application": application},
        inputs={"document": "document"},
        after="transform_poa",
    )
    return builder.build()


def build_interorg_roundtrip_types(
    left_owner: str,
    right_owner: str,
    left_application: str,
    left_native_format: str,
    right_application: str,
    right_native_format: str,
    left_threshold: float = 10000,
    right_thresholds: dict[str, float] | None = None,
    distributed: bool = False,
    remote_engine: str = "",
) -> list[WorkflowType]:
    """Build the Figure 2/3 type set.

    With ``distributed=True`` the combined type calls the right part as a
    remote subworkflow on ``remote_engine`` (Figure 5(b)); otherwise it is
    an ordinary subworkflow and the instance must migrate (Figure 5(a)).
    Returns ``[combined, left_prepare, right_process, left_finish]``.
    """
    left_prepare = _left_prepare(left_owner, left_application, left_threshold)
    right_process = _right_process(
        right_owner, right_application, right_thresholds or {left_owner: 550000}
    )
    # Patch the inbound transformation target to the right ERP's format.
    right_process.steps["transform_po"].params["target_format"] = right_native_format
    left_finish = _left_finish(left_owner, left_application, left_native_format)

    builder = WorkflowBuilder("interorg-roundtrip", owner=left_owner)
    builder.variable("po_number", "").variable("amount", 0.0)
    builder.variable("source", "").variable("wire_text", "")
    builder.subworkflow(
        "left_prepare",
        "interorg-left-prepare",
        inputs={"po_number": "po_number", "amount": "amount"},
        outputs={"wire_text": "wire_text"},
    )
    builder.activity(
        "handover_to_right",
        "wait_for_event",
        label="Hand over to the right enterprise",
        after="left_prepare",
    )
    if distributed:
        builder._steps.append(
            RemoteSubworkflowStep(
                step_id="right_process",
                subworkflow="interorg-right-process",
                engine=remote_engine,
                inputs={"wire_text": "wire_text", "source": "source"},
                outputs={"wire_text": "wire_text"},
            )
        )
        builder.link("handover_to_right", "right_process")
        builder._last_step = "right_process"
    else:
        builder.subworkflow(
            "right_process",
            "interorg-right-process",
            inputs={"wire_text": "wire_text", "source": "source"},
            outputs={"wire_text": "wire_text"},
            after="handover_to_right",
        )
    builder.activity(
        "handover_back",
        "wait_for_event",
        label="Hand back to the left enterprise",
        after="right_process",
    )
    builder.subworkflow(
        "left_finish",
        "interorg-left-finish",
        inputs={"wire_text": "wire_text"},
        after="handover_back",
    )
    combined = builder.build()
    return [combined, left_prepare, right_process, left_finish]


def make_participant_engine(
    name: str,
    backend: ERPSimulator,
    clock: Clock | None = None,
    runtime: Runtime | None = None,
) -> WorkflowEngine:
    """A WFMS for one participant: naive activities + its own back end.

    Pass a shared ``runtime`` so both participants of an inter-org run
    schedule on (and emit lifecycle events to) one kernel.
    """
    worklist = Worklist(name)
    worklist.set_auto_policy(lambda item: {"approved": True})
    activities = register_naive_activities(built_in_registry())
    register_private_activities(activities)
    engine = WorkflowEngine(
        f"{name}-wfms",
        activities=activities,
        clock=clock or (runtime.clock if runtime is not None else Clock()),
        services={
            "transforms": _shared_transforms(),
            "backends": {backend.name: backend},
            "worklist": worklist,
            "naive_sender": lambda *args: None,
        },
        runtime=runtime,
    )
    return engine


_TRANSFORMS = None


def _shared_transforms():
    global _TRANSFORMS
    if _TRANSFORMS is None:
        from repro.transform.catalog import build_standard_registry

        _TRANSFORMS = build_standard_registry()
    return _TRANSFORMS


@dataclass
class InterorgResult:
    """Outcome of one inter-organizational round trip."""

    instance: WorkflowInstance
    migrations: list[MigrationReport]
    exposure_left: dict[str, int]
    exposure_right: dict[str, int]

    @property
    def total_migration_messages(self) -> int:
        return sum(report.messages_exchanged for report in self.migrations)


def run_migrating_roundtrip(
    left_engine: WorkflowEngine,
    right_engine: WorkflowEngine,
    types: list[WorkflowType],
    po_number: str,
    amount: float,
    source: str,
) -> InterorgResult:
    """Execute the round trip via instance migration (Figure 5(a))."""
    left_engine.deploy_all(types)
    instance_id = left_engine.create_instance(
        "interorg-roundtrip",
        variables={"po_number": po_number, "amount": amount, "source": source},
    )
    left_engine.start(instance_id)

    migrations = [migrate_instance(left_engine, right_engine, instance_id)]
    right_engine.complete_waiting_step(f"{instance_id}/handover_to_right", {})
    migrations.append(migrate_instance(right_engine, left_engine, instance_id))
    left_engine.complete_waiting_step(f"{instance_id}/handover_back", {})

    instance = left_engine.get_instance(instance_id)
    return InterorgResult(
        instance=instance,
        migrations=migrations,
        exposure_left=foreign_rule_exposure(left_engine, types[0].owner),
        exposure_right=foreign_rule_exposure(right_engine, types[2].owner),
    )


def run_distributed_roundtrip(
    left_engine: WorkflowEngine,
    right_engine: WorkflowEngine,
    types: list[WorkflowType],
    po_number: str,
    amount: float,
    source: str,
) -> InterorgResult:
    """Execute the round trip via remote subworkflow distribution
    (Figure 5(b)): the right part's definition never leaves the right
    engine."""
    directory = EngineDirectory()
    directory.register(left_engine)
    directory.register(right_engine)
    combined, left_prepare, right_process, left_finish = types
    left_engine.deploy_all([combined, left_prepare, left_finish])
    right_engine.deploy(right_process)

    instance_id = left_engine.create_instance(
        "interorg-roundtrip",
        variables={"po_number": po_number, "amount": amount, "source": source},
    )
    left_engine.start(instance_id)
    left_engine.complete_waiting_step(f"{instance_id}/handover_to_right", {})
    left_engine.complete_waiting_step(f"{instance_id}/handover_back", {})

    instance = left_engine.get_instance(instance_id)
    return InterorgResult(
        instance=instance,
        migrations=[],
        exposure_left=foreign_rule_exposure(left_engine, combined.owner),
        exposure_right=foreign_rule_exposure(right_engine, right_process.owner),
    )


def foreign_rule_exposure(engine: WorkflowEngine, self_owner: str) -> dict[str, int]:
    """Count foreign business-rule knowledge visible in an engine's database.

    Returns ``owner -> rule terms`` for every *other* owner whose workflow
    types (with their conditions and approval steps) are stored in this
    engine's database — the paper's Section 2.3 objection quantified.
    """
    exposure: dict[str, int] = {}
    for workflow_type in engine.database.list_types():
        if workflow_type.owner in ("", self_owner):
            continue
        terms = 0
        for transition in workflow_type.transitions:
            if transition.condition is not None:
                terms += comparison_terms(transition.condition)
        terms += len(workflow_type.steps_tagged("business-rule"))
        if terms:
            exposure[workflow_type.owner] = exposure.get(workflow_type.owner, 0) + terms
    return exposure
