"""The naive monolithic workflow type of Figures 9 and 10, generated.

Section 3's verdict: "in the worst case all combinations of trading
partner, message exchange protocol and back end application integration
have to be explicitly modeled in every workflow type".
:func:`build_naive_seller_type` *constructs* that workflow type for any
topology, so the combinatorial growth is measurable rather than asserted:

* one decode branch per protocol;
* one inline transformation step per (protocol x back end) in each
  direction — ``2 * P * B`` transformation steps;
* the routing table hardcoded in a 'Target' step;
* the approval business rule duplicated on every back-end path, with one
  ``amount >= threshold and source == 'TPx'`` term pair per partner —
  exactly the conditional expressions printed in Figures 9/10.

The generated type is *runnable* for real protocols (see
:class:`NaiveSellerRuntime`), which keeps the baseline honest: the same
topology that the metrics sweep counts also executes a PO round trip.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.b2b.protocol import get_protocol
from repro.errors import ConfigurationError
from repro.workflow.definitions import WorkflowBuilder, WorkflowType

__all__ = [
    "NaiveTopology",
    "build_naive_seller_type",
    "naive_element_index",
]


@dataclass
class NaiveTopology:
    """One (protocols x partners x back ends) deployment to generate for.

    :param protocols: protocol name -> wire format.  Real protocol names
        (``edi-van`` ...) make the type runnable; synthetic names
        (``proto-4`` ...) are fine for pure size sweeps.
    :param backends: application name -> native format.
    :param partner_protocol: partner -> the protocol that partner speaks.
    :param thresholds: partner -> approval threshold (the Figure 9 amounts).
    :param routing: partner -> target application.
    """

    protocols: dict[str, str] = field(default_factory=dict)
    backends: dict[str, str] = field(default_factory=dict)
    partner_protocol: dict[str, str] = field(default_factory=dict)
    thresholds: dict[str, float] = field(default_factory=dict)
    routing: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.protocols or not self.backends or not self.partner_protocol:
            raise ConfigurationError(
                "a naive topology needs at least one protocol, back end and partner"
            )
        for partner, protocol in self.partner_protocol.items():
            if protocol not in self.protocols:
                raise ConfigurationError(
                    f"partner {partner!r} speaks unknown protocol {protocol!r}"
                )
        for partner, application in self.routing.items():
            if application not in self.backends:
                raise ConfigurationError(
                    f"routing for {partner!r} targets unknown back end {application!r}"
                )

    @classmethod
    def figure9(cls) -> "NaiveTopology":
        """The exact Figure 9 topology: EDI + RosettaNet, TP1 + TP2,
        SAP + Oracle, thresholds 55 000 / 40 000."""
        return cls(
            protocols={"edi-van": "edi-x12", "rosettanet": "rosettanet-xml"},
            backends={"SAP": "sap-idoc", "Oracle": "oracle-oif"},
            partner_protocol={"TP1": "edi-van", "TP2": "rosettanet"},
            thresholds={"TP1": 55000, "TP2": 40000},
            routing={"TP1": "SAP", "TP2": "Oracle"},
        )

    @classmethod
    def figure10(cls) -> "NaiveTopology":
        """Figure 10: Figure 9 plus TP3 on OAGIS with threshold 10 000."""
        topology = cls.figure9()
        topology.protocols["oagis-http"] = "oagis-bod"
        topology.partner_protocol["TP3"] = "oagis-http"
        topology.thresholds["TP3"] = 10000
        topology.routing["TP3"] = "SAP"
        return topology

    @classmethod
    def synthetic(cls, protocol_count: int, partner_count: int, backend_count: int) -> "NaiveTopology":
        """A synthetic topology for size sweeps (not runnable)."""
        protocols = {f"proto-{i}": f"wire-{i}" for i in range(1, protocol_count + 1)}
        backends = {f"app-{i}": f"native-{i}" for i in range(1, backend_count + 1)}
        protocol_names = list(protocols)
        backend_names = list(backends)
        partner_protocol = {
            f"TP{i}": protocol_names[(i - 1) % protocol_count]
            for i in range(1, partner_count + 1)
        }
        return cls(
            protocols=protocols,
            backends=backends,
            partner_protocol=partner_protocol,
            thresholds={f"TP{i}": 10000.0 * i for i in range(1, partner_count + 1)},
            routing={
                f"TP{i}": backend_names[(i - 1) % backend_count]
                for i in range(1, partner_count + 1)
            },
        )


def _approval_condition(topology: NaiveTopology) -> str:
    """The inline conditional of Figures 9/10, duplicated per back-end path:
    ``amount >= 55000 and source == 'TP1' or amount >= 40000 and ...``."""
    terms = [
        f"amount >= {threshold} and source == '{partner}'"
        for partner, threshold in sorted(topology.thresholds.items())
    ]
    return " or ".join(terms) if terms else "False"


def build_naive_seller_type(
    topology: NaiveTopology, name: str = "naive-seller"
) -> WorkflowType:
    """Generate the Figure 9/10 workflow type for ``topology``.

    Instance variables supplied at creation: ``wire_text``, ``protocol``,
    ``source`` (partner id), ``conversation_id``.
    """
    builder = WorkflowBuilder(name, owner="naive")
    builder.variable("wire_text", "").variable("protocol", "")
    builder.variable("source", "").variable("conversation_id", "")
    builder.variable("document").variable("target", "")
    builder.variable("po_number", "").variable("amount", 0.0)

    builder.activity("receive", "noop", tags=("receive",), label="Receive message")

    # One decode branch per protocol.
    for protocol in topology.protocols:
        builder.activity(
            f"decode_{protocol}",
            "decode_wire",
            params={"protocol": protocol},
            inputs={"wire_text": "wire_text"},
            outputs={"document": "document"},
            tags=("decode",),
            label=f"Decode {protocol}",
        )
        builder.link("receive", f"decode_{protocol}", condition=f"protocol == '{protocol}'")

    # The hardcoded routing table ('Target' in Figure 9).
    builder.activity(
        "determine_target",
        "naive_determine_target",
        params={"routing": dict(topology.routing)},
        inputs={"source": "source"},
        outputs={"target": "target"},
        join="XOR",
        tags=("routing",),
        label="Target",
    )
    for protocol in topology.protocols:
        builder.link(f"decode_{protocol}", "determine_target")

    # Inbound transformations: one step per (protocol x back end).
    for protocol in topology.protocols:
        for application, native_format in topology.backends.items():
            step_id = f"transform_{protocol}_to_{application}"
            builder.activity(
                step_id,
                "transform_document",
                params={"target_format": native_format},
                inputs={"document": "document", "sender_id": "source"},
                outputs={"document": "document"},
                tags=("transformation",),
                label=f"Transform {protocol} to {application} PO",
            )
            builder.link(
                "determine_target",
                step_id,
                condition=f"protocol == '{protocol}' and target == '{application}'",
            )

    # Store / approval / extract per back end, with the business rule
    # duplicated inline on every back-end path.
    approval = _approval_condition(topology)
    for application in topology.backends:
        builder.activity(
            f"store_{application}",
            "store_backend",
            params={"application": application},
            inputs={"document": "document"},
            outputs={"po_number": "po_number", "amount": "amount"},
            join="XOR",
            tags=("backend",),
            label=f"Store {application} PO",
        )
        for protocol in topology.protocols:
            builder.link(f"transform_{protocol}_to_{application}", f"store_{application}")
        builder.activity(
            f"approve_{application}",
            "request_approval",
            inputs={"document": "document"},
            outputs={"approved": "approved"},
            tags=("business-rule", "approval"),
            label=f"Approve PO ({application})",
        )
        builder.activity(
            f"extract_{application}_poa",
            "extract_backend",
            params={"application": application, "doc_type": "po_ack"},
            inputs={"po_number": "po_number"},
            outputs={"document": "document"},
            join="XOR",
            tags=("backend",),
            label=f"Extract {application} POA",
        )
        builder.link(f"store_{application}", f"approve_{application}", condition=approval)
        builder.link(f"store_{application}", f"extract_{application}_poa", otherwise=True)
        builder.link(f"approve_{application}", f"extract_{application}_poa")

    # Outbound transformations: one step per (back end x protocol).
    for application in topology.backends:
        for protocol, wire_format in topology.protocols.items():
            step_id = f"transform_{application}_poa_to_{protocol}"
            builder.activity(
                step_id,
                "transform_document",
                params={"target_format": wire_format},
                inputs={"document": "document"},
                outputs={"document": "document"},
                tags=("transformation",),
                label=f"Transform {application} to {protocol} POA",
            )
            builder.link(
                f"extract_{application}_poa",
                step_id,
                condition=f"protocol == '{protocol}'",
            )

    # Encode and send per protocol.
    for protocol in topology.protocols:
        builder.activity(
            f"encode_{protocol}",
            "encode_wire",
            params={"protocol": protocol},
            inputs={"document": "document"},
            outputs={"wire_text": "wire_text"},
            join="XOR",
            tags=("encode",),
            label=f"Encode {protocol}",
        )
        for application in topology.backends:
            builder.link(f"transform_{application}_poa_to_{protocol}", f"encode_{protocol}")
        builder.activity(
            f"send_{protocol}",
            "send_wire",
            params={"protocol": protocol},
            inputs={
                "wire_text": "wire_text",
                "destination": "source",
                "conversation_id": "conversation_id",
            },
            tags=("send",),
            label=f"Send {protocol} POA",
            after=f"encode_{protocol}",
        )

    builder.meta(naive=True, topology={
        "protocols": sorted(topology.protocols),
        "partners": sorted(topology.partner_protocol),
        "backends": sorted(topology.backends),
    })
    return builder.build()


def naive_element_index(workflow_type: WorkflowType) -> dict[str, str]:
    """Per-step/per-transition fingerprints of a naive workflow type.

    The advanced model diffs whole separated elements; the naive model has
    only one element (the workflow type), so change impact is measured at
    step/transition granularity to stay comparable.
    """
    payload = workflow_type.to_dict()
    index: dict[str, str] = {}
    for step in payload["steps"]:
        index[f"step:{step['step_id']}"] = json.dumps(step, sort_keys=True)
    for transition in payload["transitions"]:
        key = f"transition:{transition['source']}->{transition['target']}"
        index[key] = f"{transition['condition']}|{transition['otherwise']}"
    return index


# get_protocol is imported for callers that want to check a topology is
# runnable; re-exported here for convenience.
def topology_is_runnable(topology: NaiveTopology) -> bool:
    """True when every protocol in the topology is a real deployed standard."""
    try:
        for protocol in topology.protocols:
            get_protocol(protocol)
    except Exception:
        return False
    return True


class NaiveSellerRuntime:
    """Host for a runnable naive seller type: endpoint, WFMS, back ends.

    Inbound messages create instances of the monolithic type directly —
    there is no public process, binding, or external rule set, which is
    the point of the baseline.
    """

    def __init__(self, name, network, workflow_type: WorkflowType, backends: dict):
        from repro.messaging.transport import Endpoint
        from repro.transform.catalog import build_standard_registry
        from repro.workflow.activities import built_in_registry
        from repro.workflow.engine import WorkflowEngine
        from repro.workflow.worklist import Worklist
        from repro.baselines.activities import register_naive_activities

        self.name = name
        self.network = network
        self.endpoint = Endpoint(name, network)
        self.worklist = Worklist(name)
        self.worklist.set_auto_policy(lambda item: {"approved": True})
        self.backends = dict(backends)
        activities = register_naive_activities(built_in_registry())
        from repro.core.private_process import register_private_activities

        register_private_activities(activities)  # request_approval reuse
        self.engine = WorkflowEngine(
            f"{name}-wfms",
            activities=activities,
            clock=network.scheduler.clock,
            services={
                "transforms": build_standard_registry(),
                "backends": self.backends,
                "worklist": self.worklist,
                "naive_sender": self._send,
            },
            runtime=network.runtime,
        )
        self.engine.deploy(workflow_type)
        self.workflow_type = workflow_type
        self.instances: list[str] = []
        self.endpoint.on_message(self._on_message)
        for backend in self.backends.values():
            backend.on_document_ready(self._backend_ready)

    def _on_message(self, message) -> None:
        # Ingress is keyed by the sending partner so a sharded runtime
        # keeps each partner's instances on that partner's shard; the
        # single-queue kernel runs it identically.
        self.engine.runtime.submit(
            lambda: self._handle_message(message),
            label=f"{self.name}:ingress:{message.message_id}",
            partner_key=message.sender,
        )
        self.engine.runtime.drain()

    def _handle_message(self, message) -> None:
        instance_id = self.engine.create_instance(
            self.workflow_type.name,
            variables={
                "wire_text": message.body,
                "protocol": message.protocol,
                "source": message.sender,
                "conversation_id": message.conversation_id,
            },
        )
        self.instances.append(instance_id)
        self.engine.start(instance_id)

    def _backend_ready(self, application: str, document) -> None:
        backend = self.backends[application]
        po_number = backend._document_po_number(document)
        wait_key = f"erp:{application}:{po_number}:{document.doc_type}"
        if not self.engine.has_waiting(wait_key):
            return
        extracted = backend.extract_document_for(po_number, document.doc_type)
        if extracted is not None:
            self.engine.complete_waiting_step(wait_key, {"document": extracted})

    def _send(self, protocol: str, destination: str, wire_text: str, conversation_id: str) -> None:
        from repro.messaging.envelope import Message

        self.endpoint.send(
            Message(
                message_id=self.endpoint.next_message_id(),
                sender=self.name,
                receiver=destination,
                protocol=protocol,
                doc_type="po_ack",
                body=wire_text,
                conversation_id=conversation_id,
            )
        )


class NaiveClient:
    """Minimal counterparty for exercising a naive seller: sends one wire
    PO and records whatever comes back."""

    def __init__(self, name: str, network):
        from repro.messaging.transport import Endpoint

        self.name = name
        self.endpoint = Endpoint(name, network)
        self.replies: list = []
        self.endpoint.on_message(self.replies.append)

    def send_po(self, seller_address: str, protocol_name: str, wire_text: str, conversation_id: str):
        from repro.messaging.envelope import Message

        self.endpoint.send(
            Message(
                message_id=self.endpoint.next_message_id(),
                sender=self.name,
                receiver=seller_address,
                protocol=protocol_name,
                doc_type="purchase_order",
                body=wire_text,
                conversation_id=conversation_id,
            )
        )
