"""Command-line interface: run the paper's scenarios from a shell.

::

    python -m repro demo            # the Figure 1 round trip, narrated
    python -m repro report          # Figure 15 community + seller report
    python -m repro growth          # the Figure 9/10 growth tables
    python -m repro changes         # the Section 4.5 change-impact table
    python -m repro patterns        # Section 1's four exchange patterns
    python -m repro lint            # statically verify all example models
    python -m repro bench           # time the per-message hot paths

Installed as the ``repro-b2b`` console script.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable

__all__ = ["main"]

DEMO_LINES = [
    {"sku": "LAPTOP-15", "quantity": 10, "unit_price": 1200.0},
    {"sku": "DOCK-1", "quantity": 5, "unit_price": 150.0},
]


def _table(rows: list[dict], columns: list[str], title: str = "") -> str:
    widths = {
        column: max(len(column), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines += [title, "-" * len(title)]
    lines.append("  ".join(column.ljust(widths[column]) for column in columns))
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _print_trace(runtime, title: str) -> None:
    """Print the kernel's recorded event trace for one scenario run."""
    print()
    print(f"--- kernel trace: {title} ---")
    print(runtime.trace.render())


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.analysis.scenarios import build_two_enterprise_pair
    from repro.core.enterprise import run_community

    pair = build_two_enterprise_pair(args.protocol, seller_delay=0.5)
    if args.trace:
        pair.runtime.enable_trace()
    instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-1001", DEMO_LINES)
    rounds = run_community(pair.enterprises())
    instance = pair.buyer.instance(instance_id)
    print(f"protocol        : {args.protocol}")
    print(f"buyer instance  : {instance.status} after {rounds} community round(s)")
    print(f"seller order    : "
          f"{pair.seller.backends['Oracle'].order('PO-1001').status}")
    print(f"buyer stored ack: {'PO-1001' in pair.buyer.backends['SAP'].stored_acks}")
    trace = next(iter(pair.buyer.b2b.conversations.values())).documents
    print(f"exchange trace  : {' -> '.join(trace)}")
    if args.trace:
        _print_trace(pair.runtime, f"demo ({args.protocol})")
    return 0 if instance.status == "completed" else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.scenarios import build_fig15_community
    from repro.core.enterprise import run_community
    from repro.core.reporting import render_report

    community = build_fig15_community(seller_delay=0.2)
    if args.trace:
        community.runtime.enable_trace()
    for partner_id, buyer in community.buyers.items():
        buyer.submit_order("SAP", "ACME", f"PO-{partner_id}", DEMO_LINES)
    run_community(community.enterprises())
    print(render_report(community.seller))
    if args.trace:
        _print_trace(community.runtime, "fig15 community")
    return 0


def _cmd_growth(args: argparse.Namespace) -> int:
    from repro.analysis.complexity import growth_rows

    rows: list[dict] = []
    for dimension, values in (
        ("protocols", args.values or [1, 2, 3, 4, 6]),
        ("partners", args.values or [2, 4, 8, 16]),
        ("backends", args.values or [1, 2, 4, 8]),
    ):
        if args.dimension in (None, dimension):
            rows += growth_rows(dimension, values)
    print(_table(
        rows,
        ["dimension", "value", "topology", "naive_total", "advanced_total"],
        "Total authored model elements: naive vs advanced (Figures 9/10, Sec 4.6)",
    ))
    return 0


def _cmd_changes(args: argparse.Namespace) -> int:
    from repro.analysis.change_impact import change_table

    rows = [
        {
            "scenario": row["scenario"],
            "advanced_impact": row["advanced_impact"],
            "advanced_modified": row["advanced_modified"],
            "advanced_locality": row["advanced_locality"],
            "naive_impact": row["naive_impact"],
            "naive_modified": row["naive_modified"],
        }
        for row in change_table()
    ]
    print(_table(
        rows,
        ["scenario", "advanced_impact", "advanced_modified",
         "advanced_locality", "naive_impact", "naive_modified"],
        "Change impact per scenario (Section 4.5)",
    ))
    return 0


def _cmd_patterns(args: argparse.Namespace) -> int:
    from repro.analysis.scenarios import (
        build_order_to_cash_pair,
        build_sourcing_community,
        build_two_enterprise_pair,
    )
    from repro.core.enterprise import run_community

    rows = []
    for protocol, label in (("rosettanet", "request/reply"),
                            ("rosettanet-ra", "acknowledged request/reply")):
        pair = build_two_enterprise_pair(protocol, seller_delay=0.2)
        if args.trace:
            pair.runtime.enable_trace()
        pair.buyer.submit_order("SAP", "ACME", "PO-P", DEMO_LINES)
        run_community(pair.enterprises())
        conversation = next(iter(pair.buyer.b2b.conversations.values()))
        rows.append({"pattern": label, "initiator": "buyer",
                     "trace": " -> ".join(conversation.documents)})
        if args.trace:
            _print_trace(pair.runtime, label)

    pair = build_order_to_cash_pair(seller_delay=0.2)
    if args.trace:
        pair.runtime.enable_trace()
    pair.buyer.submit_order("SAP", "ACME", "PO-P", DEMO_LINES)
    run_community(pair.enterprises())
    pair.seller.submit_shipment("Oracle", "TP1", "PO-P")
    run_community(pair.enterprises())
    conversation = next(
        c for c in pair.seller.b2b.conversations.values()
        if c.protocol == "oagis-fulfillment"
    )
    rows.append({"pattern": "one-way multi-step", "initiator": "seller",
                 "trace": " -> ".join(conversation.documents)})
    if args.trace:
        _print_trace(pair.runtime, "one-way multi-step")

    community = build_sourcing_community(
        {"ACME": {"GPU": 1500.0}, "GLOBEX": {"GPU": 1450.0}}
    )
    if args.trace:
        community.runtime.enable_trace()
    instance_id = community.buyer.submit_rfq(
        ["ACME", "GLOBEX"], "RFQ-P", [{"sku": "GPU", "quantity": 5}]
    )
    run_community(community.enterprises())
    instance = community.buyer.instance(instance_id)
    rows.append({
        "pattern": "broadcast RFQ",
        "initiator": "buyer",
        "trace": f"2x RFQ out -> {len(instance.variables['quotes'])}x quote in "
                 f"-> winner {instance.variables['chosen_partner']}",
    })
    if args.trace:
        _print_trace(community.runtime, "broadcast RFQ")
    print(_table(rows, ["pattern", "initiator", "trace"],
                 "Exchange patterns on one architecture (Section 1)"))
    return 0


LINT_SCHEMA_VERSION = 4
"""Version of the ``repro lint --format json`` payload shape.

Version 2 wrapped the per-label results under a ``"models"`` key.
Version 3 added per-model ``cached``/``duration_ms``/``states`` (explored
and pruned counts, so a statespace regression is attributable to the
model that caused it), a ``totals`` summary with the cache hit/miss
split, and the ``registry`` section emitted by ``--registry`` sweeps.
Version 4 added per-model ``dataflow_routes`` counts and the
``registry.dataflow`` section (routes, verified/cache-hit split) for the
B2B7xx schema dataflow pass.
"""


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.verify import at_or_above, count_by_severity, render_text
    from repro.verify.incremental import IncrementalVerifier, VerificationCache
    from repro.verify.targets import (
        build_broken_model,
        build_deadlock_model,
        lint_all,
    )

    verify_options = {
        "deep": args.deep,
        "dataflow": args.dataflow,
        "queue_bound": args.queue_bound,
        "max_states": args.max_states,
        "time_budget": args.time_budget,
        "reduce": not args.no_reduce,
    }
    cache = VerificationCache(args.cache) if args.incremental else None

    if args.registry:
        return _lint_registry(args, verify_options, cache)

    reports: dict = {}
    if args.demo_broken:
        from repro.verify.incremental import verify_unit

        reports["broken-demo"] = verify_unit(
            "broken-demo", build_broken_model(), verify_options
        )
        if args.deep:
            # the conversation defects only exist in the deadlock demo
            reports["deadlock-demo"] = verify_unit(
                "deadlock-demo", build_deadlock_model(), verify_options
            )
        if args.dataflow:
            # the schema-dataflow defects only exist in the mis-typed demo
            from repro.verify.targets import build_dataflow_broken_model

            reports["dataflow-broken-demo"] = verify_unit(
                "dataflow-broken-demo",
                build_dataflow_broken_model(),
                verify_options,
            )
        results = {label: r.diagnostics for label, r in reports.items()}
        incremental = None
    else:
        incremental = (
            IncrementalVerifier(cache, **verify_options) if cache is not None else None
        )
        try:
            results = lint_all(
                only=args.model,
                incremental=incremental,
                reports=reports,
                **(verify_options if incremental is None else {}),
            )
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        if incremental is not None:
            incremental.flush()

    failing = 0
    for diagnostics in results.values():
        failing += len(at_or_above(diagnostics, args.fail_on))

    hits = incremental.hits if incremental is not None else 0
    misses = (
        incremental.misses if incremental is not None else len(results)
    )
    if args.format == "json":
        payload = {
            "schema_version": LINT_SCHEMA_VERSION,
            "models": {
                label: {
                    "counts": count_by_severity(report.diagnostics),
                    "diagnostics": [d.to_dict() for d in report.diagnostics],
                    "cached": report.cached,
                    "duration_ms": round(report.duration * 1000, 3),
                    "states": {
                        "explored": report.states_explored,
                        "pruned": report.states_pruned,
                    },
                    "dataflow_routes": report.dataflow_routes,
                }
                for label, report in sorted(reports.items())
            },
            "totals": {
                "models": len(results),
                "cache_hits": hits,
                "cache_misses": misses,
                "duration_ms": round(
                    sum(r.duration for r in reports.values()) * 1000, 3
                ),
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for label, diagnostics in sorted(results.items()):
            print(render_text(diagnostics, title=label))
        if args.stats:
            print()
            print(_stats_table(reports))
        if incremental is not None:
            print()
            print(
                f"cache: {hits} hit(s), {misses} miss(es) "
                f"({incremental.hit_rate:.0%} hit rate) at {args.cache}"
            )
        print()
        verdict = "FAIL" if failing else "OK"
        print(
            f"{verdict}: {len(results)} model(s) linted, "
            f"{failing} diagnostic(s) at or above {args.fail_on!r}"
        )
    return 1 if failing else 0


def _stats_table(reports: dict) -> str:
    """Per-model timing and state-count table for ``lint --stats``."""
    rows = [
        {
            "model": label,
            "cached": "yes" if report.cached else "no",
            "ms": f"{report.duration * 1000:.1f}",
            "explored": report.states_explored,
            "pruned": report.states_pruned,
            "routes": report.dataflow_routes,
        }
        for label, report in sorted(reports.items())
    ]
    return _table(
        rows, ["model", "cached", "ms", "explored", "pruned", "routes"],
        "Per-model verification stats",
    )


def _lint_registry(args: argparse.Namespace, verify_options: dict, cache) -> int:
    """``repro lint --registry N``: sweep a generated agreement registry."""
    import json

    from repro.analysis.scenarios import build_registry_model
    from repro.verify import at_or_above, count_by_severity, render_text
    from repro.verify.registry import sweep_registry

    model = build_registry_model(args.registry)
    report = sweep_registry(model, cache=cache, **verify_options)
    if cache is not None:
        cache.save()
    failing = len(at_or_above(report.diagnostics, args.fail_on))
    if args.format == "json":
        payload = {
            "schema_version": LINT_SCHEMA_VERSION,
            "models": {},
            "registry": {
                "model": model.name,
                "agreements": report.agreements,
                "verified": report.verified,
                "cache_hits": report.cache_hits,
                "cache_hit_rate": round(report.cache_hit_rate, 4),
                "explorations": report.explorations,
                "states": {
                    "explored": report.states_explored,
                    "pruned": report.states_pruned,
                },
                "duration_ms": round(report.duration * 1000, 3),
                "fabric_cached": report.fabric_cached,
                "dataflow": {
                    "routes": report.dataflow_routes,
                    "routes_verified": report.routes_verified,
                    "route_cache_hits": report.route_cache_hits,
                    "route_cache_hit_rate": round(
                        report.route_cache_hit_rate, 4
                    ),
                },
                "counts": count_by_severity(report.diagnostics),
                "fabric_diagnostics": [
                    d.to_dict() for d in report.fabric_diagnostics
                ],
                "dirty_agreements": {
                    label: [d.to_dict() for d in diagnostics]
                    for label, diagnostics in sorted(report.dirty.items())
                },
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        if report.fabric_diagnostics:
            print(render_text(report.fabric_diagnostics, title=f"{model.name} (fabric)"))
        for label, diagnostics in sorted(report.dirty.items()):
            print(render_text(diagnostics, title=label))
        print(
            f"registry sweep: {report.agreements} agreement(s), "
            f"{report.verified} verified, {report.cache_hits} cache hit(s) "
            f"({report.cache_hit_rate:.0%}), {report.explorations} "
            f"exploration(s), {report.states_explored} state(s) explored "
            f"({report.states_pruned} pruned) in {report.duration * 1000:.1f} ms"
        )
        if report.dataflow_routes:
            print(
                f"dataflow: {report.dataflow_routes} route(s), "
                f"{report.routes_verified} verified, "
                f"{report.route_cache_hits} cache hit(s) "
                f"({report.route_cache_hit_rate:.0%})"
            )
        print()
        verdict = "FAIL" if failing else "OK"
        print(
            f"{verdict}: {failing} diagnostic(s) at or above {args.fail_on!r}"
        )
    return 1 if failing else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis import bench

    return bench.run(args)


def _cmd_crash(args: argparse.Namespace) -> int:
    from repro.analysis import crash

    architectures = tuple(args.arch) if args.arch else crash.ARCHITECTURES
    crash_points = (
        tuple(args.crash_point) if args.crash_point else crash.CRASH_POINTS
    )
    kernels = tuple(args.kernel) if args.kernel else crash.KERNELS
    reports = crash.run_crash_matrix(
        architectures=architectures,
        kernels=kernels,
        crash_points=crash_points,
        orders=args.orders,
        seed=args.seed,
    )
    if args.json:
        print(crash.reports_json(reports))
    else:
        print(crash.render_reports(reports))
    return 0 if all(report.ok for report in reports) else 1


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-b2b",
        description="Semantic B2B integration (Bussler reproduction) scenarios",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    trace_help = "print the runtime kernel's lifecycle event trace after the run"

    demo = subparsers.add_parser("demo", help="run the Figure 1 PO-POA round trip")
    demo.add_argument("--protocol", default="rosettanet",
                      choices=["edi-van", "rosettanet", "oagis-http", "rosettanet-ra"])
    demo.add_argument("--trace", action="store_true", help=trace_help)
    demo.set_defaults(handler=_cmd_demo)

    report = subparsers.add_parser(
        "report", help="run the Figure 15 community and print the seller report"
    )
    report.add_argument("--trace", action="store_true", help=trace_help)
    report.set_defaults(handler=_cmd_report)

    growth = subparsers.add_parser("growth", help="print the growth tables")
    growth.add_argument("--dimension",
                        choices=["protocols", "partners", "backends"])
    growth.add_argument("--values", type=int, nargs="+")
    growth.set_defaults(handler=_cmd_growth)

    changes = subparsers.add_parser(
        "changes", help="print the Section 4.5 change-impact table"
    )
    changes.set_defaults(handler=_cmd_changes)

    patterns = subparsers.add_parser(
        "patterns", help="run the four exchange patterns"
    )
    patterns.add_argument("--trace", action="store_true", help=trace_help)
    patterns.set_defaults(handler=_cmd_patterns)

    lint = subparsers.add_parser(
        "lint", help="statically verify the example integration models"
    )
    lint.add_argument(
        "--model",
        help="lint only this named target (e.g. fig14, fig15, sourcing)",
    )
    lint.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="output format (default: text)",
    )
    lint.add_argument(
        "--fail-on", default="error", choices=["error", "warning"],
        help="exit nonzero when diagnostics at/above this severity exist "
        "(default: error)",
    )
    lint.add_argument(
        "--demo-broken", action="store_true",
        help="lint a deliberately broken model instead (demonstrates the "
        "diagnostic families; with --deep also lints a deadlocking "
        "agreement to demonstrate B2B5xx counterexamples)",
    )
    lint.add_argument(
        "--deep", action="store_true",
        help="also explore every protocol's buyer/seller conversation "
        "product automaton (B2B5xx: deadlock, unspecified reception, "
        "queue overflow, orphan messages) and run the AND-parallel race "
        "analysis (B2B6xx) over every private process",
    )
    lint.add_argument(
        "--dataflow", action="store_true",
        help="also run the schema dataflow pass (B2B7xx): lower every "
        "document schema into a field-type lattice, push abstract "
        "documents through every mapping and binding-chain route, and "
        "check the inferred output against each downstream consumer",
    )
    lint.add_argument(
        "--queue-bound", type=int, default=None, metavar="N",
        help="bound on each direction's in-flight message queue during "
        "--deep exploration (default: 2); sends beyond the bound block, "
        "and a globally blocked full queue reports B2B503",
    )
    lint.add_argument(
        "--max-states", type=int, default=None, metavar="N",
        help="state budget for --deep exploration (default: 4096); when "
        "exhausted the exploration stops and reports B2B505 (truncated, "
        "results incomplete)",
    )
    lint.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for --deep exploration per conversation "
        "pair (default: none); exceeding it reports B2B505",
    )
    lint.add_argument(
        "--incremental", action="store_true",
        help="reuse cached verdicts for models whose verification digest "
        "(content fingerprints + verify options) is unchanged; verdicts "
        "are persisted in the --cache file",
    )
    lint.add_argument(
        "--cache", default=".repro-lint-cache.json", metavar="PATH",
        help="verification cache file for --incremental "
        "(default: .repro-lint-cache.json)",
    )
    lint.add_argument(
        "--stats", action="store_true",
        help="print per-model timing and explored/pruned state counts "
        "(text format; the json format always includes them)",
    )
    lint.add_argument(
        "--registry", type=int, default=None, metavar="N",
        help="instead of the example models, sweep a generated registry "
        "of N trading-partner agreements (explorations are shared per "
        "protocol; combine with --incremental for warm re-sweeps)",
    )
    lint.add_argument(
        "--no-reduce", action="store_true",
        help="disable partial-order reduction in --deep exploration "
        "(debugging aid; verdicts are identical, exploration is slower)",
    )
    lint.set_defaults(handler=_cmd_lint)

    crash = subparsers.add_parser(
        "crash",
        help="kill/recover the hub at journal offsets and prove exactly-once",
    )
    crash.add_argument(
        "--arch",
        action="append",
        choices=["advanced", "monolithic", "cooperative", "distributed"],
        help="architecture(s) to test (default: all four)",
    )
    crash.add_argument(
        "--crash-point",
        action="append",
        choices=[
            "pre-journal", "mid-append", "post-append", "mid-snapshot", "random",
        ],
        help="crash point(s) to simulate (default: all)",
    )
    crash.add_argument(
        "--kernel",
        action="append",
        choices=["kernel", "sharded-4"],
        help="kernel variant(s) (default: both)",
    )
    crash.add_argument(
        "--orders", type=int, default=6,
        help="purchase orders per scenario (default: 6)",
    )
    crash.add_argument(
        "--seed", type=int, default=0,
        help="seed for the randomized crash offsets (default: 0)",
    )
    crash.add_argument(
        "--json", action="store_true", help="emit the report matrix as JSON"
    )
    crash.set_defaults(handler=_cmd_crash)

    bench = subparsers.add_parser(
        "bench", help="benchmark the per-message hot paths"
    )
    from repro.analysis.bench import add_arguments as _bench_arguments

    _bench_arguments(bench)
    bench.set_defaults(handler=_cmd_bench)
    return parser


def main(argv: Iterable[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
