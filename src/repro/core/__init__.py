"""The paper's contribution: public/private process management (Section 4).

* :mod:`repro.core.public_process` — organization-external message-exchange
  behaviour, one definition per B2B protocol and role (Section 4.1);
* :mod:`repro.core.binding` — the processes that connect public processes
  to private processes (and private processes to applications), hosting
  every transformation (Section 4.2);
* :mod:`repro.core.rules` — business rules defined and evaluated *outside*
  workflow types, selected by (source, target) at runtime (Section 4.3);
* :mod:`repro.core.private_process` — domain business logic as ordinary
  workflow types over the normalized format (Section 4.4);
* :mod:`repro.core.integration` — the integration model (the deployed
  configuration) and the B2B engine runtime that executes exchanges;
* :mod:`repro.core.enterprise` — one enterprise node wiring engine, WFMS,
  back ends and network together;
* :mod:`repro.core.metrics` / :mod:`repro.core.change` — the model
  complexity and change-impact instruments behind the Section 4.5/4.6
  experiments.
"""

from repro.core.rules import BusinessRule, RuleEngine, RuleSet, approval_rule_set
from repro.core.public_process import PublicProcessDefinition, PublicProcessInstance, PublicStep
from repro.core.binding import Binding, BindingStep, make_application_binding, make_protocol_binding
from repro.core.integration import B2BEngine, IntegrationModel
from repro.core.enterprise import Enterprise
from repro.core.metrics import ModelMetrics, measure_model, measure_workflow_type
from repro.core.change import ChangeReport, diff_models

__all__ = [
    "BusinessRule",
    "RuleSet",
    "RuleEngine",
    "approval_rule_set",
    "PublicStep",
    "PublicProcessDefinition",
    "PublicProcessInstance",
    "Binding",
    "BindingStep",
    "make_protocol_binding",
    "make_application_binding",
    "IntegrationModel",
    "B2BEngine",
    "Enterprise",
    "ModelMetrics",
    "measure_model",
    "measure_workflow_type",
    "ChangeReport",
    "diff_models",
]
