"""Bindings: the processes connecting public and private processes (§4.2).

A :class:`Binding` owns two step chains:

* the **inbound** chain carries a document *from* the public (or
  application) side *to* the private process — typically a single
  transformation to the normalized format;
* the **outbound** chain carries a document from the private process back
  out — typically a transformation to the wire (or back-end) format.

Besides transformations, chains may **consume** a document (take it from
the public process and not pass it on, e.g. a protocol-level receipt the
private process never sees) or **produce** one (create a document the
private process does not supply) — the compensation mechanisms Section
4.2.1 calls out.

The same class binds private processes to back-end applications
(``application`` set instead of ``public_process``): Figure 14's right-hand
bindings with "Transform to SAP PO" / "Transform to normalized POA".

Bindings sit on the per-message hot path, so chain execution is **planned**:
the first message through a chain resolves the transformation route (format
lookups, mapping sequence) once, compiles the mappings, and caches the plan
keyed on :meth:`Binding.fingerprint` and the registry version.  Later
messages replay the plan; editing the chain or registering a new mapping
invalidates it.  The unplanned interpreter (``_run_chain``) is kept as the
behavioural reference and cross-checked in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.documents.model import Document
from repro.errors import BindingError
from repro.transform.transformer import RouteExecutor, TransformationRegistry

__all__ = [
    "BindingStep",
    "Binding",
    "make_protocol_binding",
    "make_application_binding",
]

KIND_TRANSFORM = "transform"
KIND_CONSUME = "consume"
KIND_PRODUCE = "produce"

_KINDS = (KIND_TRANSFORM, KIND_CONSUME, KIND_PRODUCE)

Producer = Callable[[Mapping[str, Any]], Document]

#: distinguishes "route not memoized yet" from a memoized identity route
#: (``None``) in a chain plan's route table.
_UNSET: Any = object()


@dataclass(frozen=True)
class BindingStep:
    """One step of a binding chain.

    * ``transform`` needs ``target_format``;
    * ``consume`` drops the document (the chain yields nothing);
    * ``produce`` needs a ``producer`` callable ``context -> Document``
      and replaces the current document with the produced one.
    """

    step_id: str
    kind: str
    target_format: str = ""
    producer: Producer | None = None

    def __post_init__(self) -> None:
        if not self.step_id:
            raise BindingError("binding step needs a step_id")
        if self.kind not in _KINDS:
            raise BindingError(f"unknown binding step kind {self.kind!r}")
        if self.kind == KIND_TRANSFORM and not self.target_format:
            raise BindingError(
                f"binding step {self.step_id!r}: transform needs target_format"
            )
        if self.kind == KIND_PRODUCE and self.producer is None:
            raise BindingError(
                f"binding step {self.step_id!r}: produce needs a producer"
            )

    def fingerprint(self) -> str:
        """Stable description for change detection."""
        producer_name = getattr(self.producer, "__name__", "") if self.producer else ""
        return f"{self.step_id}|{self.kind}|{self.target_format}|{producer_name}"


class _ChainPlan:
    """A cached execution plan for one binding chain.

    ``routes`` memoizes, per (step index, incoming format, doc type), the
    registry :class:`RouteExecutor` that transform step applies (``None``
    for the identity route).  Route entries are filled lazily because a
    ``produce`` step makes the mid-chain document format a runtime
    property.
    """

    __slots__ = ("steps", "snapshot", "registry_id", "registry_version", "routes")

    def __init__(
        self,
        steps: tuple["BindingStep", ...],
        registry: TransformationRegistry,
    ):
        self.steps = steps
        self.snapshot = steps
        self.registry_id = id(registry)
        self.registry_version = registry.version
        self.routes: dict[tuple[int, str, str], RouteExecutor | None] = {}

    def valid_for(
        self, chain: tuple["BindingStep", ...], registry: TransformationRegistry
    ) -> bool:
        return (
            self.registry_id == id(registry)
            and self.registry_version == registry.version
            and self.snapshot == chain
        )


class Binding:
    """A binding between a public process (or application) and a private
    process.

    :param name: unique binding name.
    :param private_process: the private workflow type this binding serves.
    :param public_process: the public process definition name (exclusive
        with ``application``).
    :param application: the back-end application name (exclusive with
        ``public_process``).
    """

    def __init__(
        self,
        name: str,
        private_process: str,
        public_process: str = "",
        application: str = "",
        inbound: list[BindingStep] | None = None,
        outbound: list[BindingStep] | None = None,
    ):
        if not name:
            raise BindingError("binding needs a name")
        if bool(public_process) == bool(application):
            raise BindingError(
                f"binding {name!r}: exactly one of public_process or "
                "application required"
            )
        self.name = name
        self.private_process = private_process
        self.public_process = public_process
        self.application = application
        self.inbound = list(inbound or [])
        self.outbound = list(outbound or [])
        self.inbound_runs = 0
        self.outbound_runs = 0
        # direction -> active plan; (direction, fingerprint, registry id,
        # registry version) -> built plan, so a structure flipped back to a
        # previously-seen shape reuses its resolved routes.
        self._active_plans: dict[str, _ChainPlan] = {}
        self._plan_cache: dict[tuple[str, str, int, int], _ChainPlan] = {}

    # -- execution -----------------------------------------------------------

    def apply_inbound(
        self,
        document: Document,
        registry: TransformationRegistry,
        context: Mapping[str, Any] | None = None,
    ) -> Document | None:
        """Run the inbound chain; ``None`` means the document was consumed."""
        self.inbound_runs += 1
        return self._run_planned("in", self.inbound, document, registry, context or {})

    def apply_outbound(
        self,
        document: Document,
        registry: TransformationRegistry,
        context: Mapping[str, Any] | None = None,
    ) -> Document | None:
        """Run the outbound chain; ``None`` means the document was consumed."""
        self.outbound_runs += 1
        return self._run_planned("out", self.outbound, document, registry, context or {})

    # -- planned execution (hot path) ------------------------------------------

    def invalidate_plans(self) -> None:
        """Drop every cached execution plan (model-change hook)."""
        self._active_plans.clear()
        self._plan_cache.clear()

    def _plan(
        self,
        direction: str,
        chain: list[BindingStep],
        registry: TransformationRegistry,
    ) -> _ChainPlan:
        snapshot = tuple(chain)
        plan = self._active_plans.get(direction)
        if plan is not None and plan.valid_for(snapshot, registry):
            return plan
        key = (direction, self.fingerprint(), id(registry), registry.version)
        plan = self._plan_cache.get(key)
        if plan is None or not plan.valid_for(snapshot, registry):
            plan = _ChainPlan(snapshot, registry)
            self._plan_cache[key] = plan
        self._active_plans[direction] = plan
        return plan

    def _run_planned(
        self,
        direction: str,
        chain: list[BindingStep],
        document: Document | None,
        registry: TransformationRegistry,
        context: Mapping[str, Any],
    ) -> Document | None:
        plan = self._plan(direction, chain, registry)
        routes = plan.routes
        for index, step in enumerate(plan.steps):
            if step.kind == KIND_CONSUME:
                return None
            if step.kind == KIND_PRODUCE:
                assert step.producer is not None
                document = step.producer(context)
                continue
            if document is None:
                raise BindingError(
                    f"binding {self.name!r}: step {step.step_id!r} has no "
                    "document to transform (consumed earlier in the chain?)"
                )
            route_key = (index, document.format_name, document.doc_type)
            executor = routes.get(route_key, _UNSET)
            if executor is _UNSET:
                executor = registry.executor(
                    document.format_name, step.target_format, document.doc_type
                )
                routes[route_key] = executor
            if executor is not None:
                document = executor.apply(document, context)
        return document

    def apply_inbound_batch(
        self,
        documents: list[Document],
        registry: TransformationRegistry,
        context: Mapping[str, Any] | None = None,
    ) -> list[Document | None]:
        """Run the inbound chain columnar over ``documents``.

        Equivalent to ``[self.apply_inbound(d, ...) for d in documents]``
        (``None`` per consumed document); on any failure the batch is
        re-run per document so the surfaced error matches the sequential
        path.
        """
        self.inbound_runs += len(documents)
        return self._run_planned_batch(
            "in", self.inbound, documents, registry, context or {}
        )

    def apply_outbound_batch(
        self,
        documents: list[Document],
        registry: TransformationRegistry,
        context: Mapping[str, Any] | None = None,
    ) -> list[Document | None]:
        """Run the outbound chain columnar over ``documents`` (see
        :meth:`apply_inbound_batch`)."""
        self.outbound_runs += len(documents)
        return self._run_planned_batch(
            "out", self.outbound, documents, registry, context or {}
        )

    def _run_planned_batch(
        self,
        direction: str,
        chain: list[BindingStep],
        documents: list[Document],
        registry: TransformationRegistry,
        context: Mapping[str, Any],
    ) -> list[Document | None]:
        if not documents:
            return []
        try:
            return self._run_batch_grouped(direction, chain, documents, registry, context)
        except Exception:
            return [
                self._run_planned(direction, chain, document, registry, context)
                for document in documents
            ]

    def _run_batch_grouped(
        self,
        direction: str,
        chain: list[BindingStep],
        documents: list[Document],
        registry: TransformationRegistry,
        context: Mapping[str, Any],
    ) -> list[Document | None]:
        plan = self._plan(direction, chain, registry)
        routes = plan.routes
        vector: list[Document] = documents
        for index, step in enumerate(plan.steps):
            if step.kind == KIND_CONSUME:
                return [None] * len(documents)
            if step.kind == KIND_PRODUCE:
                assert step.producer is not None
                # one producer call per document, matching the sequential path
                vector = [step.producer(context) for _ in vector]
                continue
            groups: dict[tuple[str, str], list[int]] = {}
            for position, document in enumerate(vector):
                if document is None:
                    raise BindingError(
                        f"binding {self.name!r}: step {step.step_id!r} has no "
                        "document to transform (consumed earlier in the chain?)"
                    )
                groups.setdefault(
                    (document.format_name, document.doc_type), []
                ).append(position)
            produced: list[Document] = list(vector)
            for (format_name, doc_type), positions in groups.items():
                route_key = (index, format_name, doc_type)
                executor = routes.get(route_key, _UNSET)
                if executor is _UNSET:
                    executor = registry.executor(
                        format_name, step.target_format, doc_type
                    )
                    routes[route_key] = executor
                if executor is None:
                    continue
                outputs = executor.apply_batch(
                    [vector[position] for position in positions], context
                )
                for position, output in zip(positions, outputs):
                    produced[position] = output
            vector = produced
        return list(vector)

    def _run_chain(
        self,
        chain: list[BindingStep],
        document: Document | None,
        registry: TransformationRegistry,
        context: Mapping[str, Any],
    ) -> Document | None:
        for step in chain:
            if step.kind == KIND_CONSUME:
                return None
            if step.kind == KIND_PRODUCE:
                assert step.producer is not None
                document = step.producer(context)
                continue
            if document is None:
                raise BindingError(
                    f"binding {self.name!r}: step {step.step_id!r} has no "
                    "document to transform (consumed earlier in the chain?)"
                )
            document = registry.transform(document, step.target_format, context)
        return document

    # -- metrics & change detection ----------------------------------------------

    def transformation_step_count(self) -> int:
        """Transform steps across both chains (complexity metric)."""
        return sum(
            1
            for step in (*self.inbound, *self.outbound)
            if step.kind == KIND_TRANSFORM
        )

    def step_count(self) -> int:
        """All steps across both chains."""
        return len(self.inbound) + len(self.outbound)

    def to_dict(self) -> dict[str, Any]:
        """Stable description for change detection."""
        return {
            "name": self.name,
            "private_process": self.private_process,
            "public_process": self.public_process,
            "application": self.application,
            "inbound": [step.fingerprint() for step in self.inbound],
            "outbound": [step.fingerprint() for step in self.outbound],
        }

    def fingerprint(self) -> str:
        """A short stable digest of the binding's structure.

        Derived from :meth:`to_dict` only — runtime counters do not
        affect it — so two structurally identical bindings share a
        fingerprint and any structural edit (renamed step, reordered
        chain, different endpoint) changes it.
        """
        import hashlib
        import json

        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def __repr__(self) -> str:
        side = self.public_process or self.application
        return f"Binding({self.name!r}: {side!r} <-> {self.private_process!r})"


def make_protocol_binding(
    name: str,
    public_process: str,
    private_process: str,
    wire_format: str,
    normalized_format: str = "normalized",
) -> Binding:
    """The standard protocol binding of Figure 12: transform the wire
    layout to normalized inbound, and normalized back to the wire layout
    outbound."""
    return Binding(
        name,
        private_process=private_process,
        public_process=public_process,
        inbound=[
            BindingStep("to_normalized", KIND_TRANSFORM, target_format=normalized_format)
        ],
        outbound=[BindingStep("to_wire", KIND_TRANSFORM, target_format=wire_format)],
    )


def make_application_binding(
    name: str,
    application: str,
    private_process: str,
    native_format: str,
    normalized_format: str = "normalized",
) -> Binding:
    """The back-end binding of Figure 14.

    Direction semantics match protocol bindings — *inbound* always flows
    toward the private process: documents extracted from the application
    are normalized inbound, documents the private process stores are
    transformed to the native layout outbound.
    """
    return Binding(
        name,
        private_process=private_process,
        application=application,
        inbound=[
            BindingStep("to_normalized", KIND_TRANSFORM, target_format=normalized_format)
        ],
        outbound=[BindingStep("to_native", KIND_TRANSFORM, target_format=native_format)],
    )
