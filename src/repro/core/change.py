"""Change-impact analysis (Section 4.5 change management).

The paper classifies changes as **local** (confined to one of public
process, private process, or binding) or **non-local** (rippling across
them, e.g. a new document field).  :func:`diff_models` compares the
element indexes of a model before and after an edit and reports exactly
which elements were added, removed or modified — and therefore how local
the change was.

Element keys are ``kind:name`` strings from
:meth:`~repro.core.integration.IntegrationModel.element_index`; kinds are
``mapping``, ``public``, ``binding``, ``private``, ``rule``, ``partner``,
``agreement`` and ``application``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["ChangeReport", "diff_models", "diff_indexes"]

# Kinds whose elements encode competitive business logic; a change touching
# more than one logic kind is non-local by the paper's criteria.
_LOGIC_KINDS = ("public", "private", "binding", "rule", "mapping")


@dataclass
class ChangeReport:
    """The impact set of one change scenario."""

    label: str = ""
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    modified: list[str] = field(default_factory=list)

    @property
    def touched(self) -> list[str]:
        """Every element affected in any way."""
        return sorted({*self.added, *self.removed, *self.modified})

    @property
    def impact_count(self) -> int:
        """Number of affected elements (the experiment's y-axis)."""
        return len(self.touched)

    def kinds_touched(self) -> set[str]:
        """The element kinds affected."""
        return {key.split(":", 1)[0] for key in self.touched}

    @property
    def modified_kinds(self) -> set[str]:
        """Kinds of *pre-existing* elements that had to change."""
        return {key.split(":", 1)[0] for key in (*self.modified, *self.removed)}

    def is_local(self) -> bool:
        """Section 4.5 locality: a change is local when the pre-existing
        elements it modifies belong to at most one logic kind (purely
        additive changes are local by definition)."""
        return len(self.modified_kinds & set(_LOGIC_KINDS)) <= 1

    def locality(self) -> str:
        """Human label for tables."""
        return "local" if self.is_local() else "non-local"

    def summary(self) -> dict[str, object]:
        """One row for the change-impact table."""
        return {
            "label": self.label,
            "added": len(self.added),
            "modified": len(self.modified),
            "removed": len(self.removed),
            "impact": self.impact_count,
            "kinds": ",".join(sorted(self.kinds_touched())),
            "locality": self.locality(),
        }


def diff_indexes(
    before: Mapping[str, str], after: Mapping[str, str], label: str = ""
) -> ChangeReport:
    """Diff two element indexes into a :class:`ChangeReport`."""
    report = ChangeReport(label=label)
    before_keys = set(before)
    after_keys = set(after)
    report.added = sorted(after_keys - before_keys)
    report.removed = sorted(before_keys - after_keys)
    report.modified = sorted(
        key for key in before_keys & after_keys if before[key] != after[key]
    )
    return report


def diff_models(before, after, label: str = "") -> ChangeReport:
    """Diff two integration models (objects with ``element_index()``)."""
    return diff_indexes(before.element_index(), after.element_index(), label=label)
