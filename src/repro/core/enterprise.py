"""An enterprise node: everything one organization runs, wired together.

An :class:`Enterprise` owns its network endpoint (raw + RNIF-style
reliable wrapper), an optional VAN mailbox, its private WFMS with the
connection activities registered, a work list, its back-end application
simulators, and its :class:`~repro.core.integration.IntegrationModel` +
:class:`~repro.core.integration.B2BEngine`.

Crucially for the paper's thesis, **nothing of another enterprise is
reachable from here**: enterprises share only the messages on the network
(Section 3, "business data are communicated, not data about workflow
instances, their state or their type").  The knowledge-exposure experiment
(F7) verifies this by inspecting workflow databases.

:func:`run_community` is the simulation driver: it alternates event
delivery and VAN polling until the whole multi-enterprise system is
quiescent.
"""

from __future__ import annotations

from typing import Any, Iterable

from typing import TYPE_CHECKING

from repro.backend.base import ERPSimulator
from repro.core.integration import B2BEngine, IntegrationModel
from repro.core.private_process import register_private_activities
from repro.core.rules import RuleEngine, RuleSet
from repro.documents.model import Document
from repro.errors import ConfigurationError, IntegrationError
from repro.messaging.disciplines import (
    TRANSPORT_PLAIN,
    TRANSPORT_RELIABLE,
    TRANSPORT_VAN,
)
from repro.messaging.network import SimulatedNetwork
from repro.messaging.reliable import ReliableEndpoint, RetryPolicy
from repro.messaging.transport import Endpoint, ValueAddedNetwork
from repro.partners.agreement import TradingPartnerAgreement
from repro.partners.profile import TradingPartner
from repro.transform.catalog import build_standard_registry
from repro.workflow.activities import built_in_registry
from repro.workflow.definitions import WorkflowType
from repro.workflow.engine import WorkflowEngine
from repro.workflow.instance import WorkflowInstance
from repro.workflow.worklist import Worklist

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.b2b.protocol import B2BProtocol

__all__ = ["DocumentArchive", "Enterprise", "run_community"]


class DocumentArchive:
    """A simple keyed store for normalized business documents.

    Private processes file documents here through the ``archive_document``
    activity — goods receipts, posted invoices — keyed by
    ``<doc_type>:<po_number>`` so later steps (e.g. the invoice-match rule)
    can look them up.
    """

    def __init__(self):
        self._documents: dict[str, Document] = {}

    @staticmethod
    def key_for(document: Document) -> str:
        reference = document.get("header.po_number", default="")
        if not reference:
            reference = document.get("header.document_id", default="?")
        return f"{document.doc_type}:{reference}"

    def store(self, document: Document) -> str:
        """File ``document``; returns its archive key."""
        key = self.key_for(document)
        self._documents[key] = document.copy()
        return key

    def get(self, doc_type: str, reference: str) -> Document:
        """Return the archived document, or raise."""
        key = f"{doc_type}:{reference}"
        try:
            return self._documents[key]
        except KeyError:
            raise IntegrationError(f"nothing archived under {key!r}") from None

    def has(self, doc_type: str, reference: str) -> bool:
        """True when a document is filed under the key."""
        return f"{doc_type}:{reference}" in self._documents

    def count(self, doc_type: str | None = None) -> int:
        """Number of archived documents (optionally of one kind)."""
        if doc_type is None:
            return len(self._documents)
        return sum(1 for key in self._documents if key.startswith(f"{doc_type}:"))


class Enterprise:
    """One organization participating in B2B integration.

    :param name: enterprise id; also its network address and envelope id.
    :param network: the shared simulated network.
    :param van: the shared Value Added Network (needed for ``edi-van``).
    :param retry_policy: reliable-messaging knobs for RNIF-style protocols.
    :param reply_timeout: optional conversation reply deadline.
    """

    def __init__(
        self,
        name: str,
        network: SimulatedNetwork,
        van: ValueAddedNetwork | None = None,
        retry_policy: RetryPolicy | None = None,
        reply_timeout: float | None = None,
    ):
        self.name = name
        self.network = network
        self.scheduler = network.scheduler
        # All enterprises on one network share its runtime kernel, so the
        # whole community emits a single lifecycle event stream.
        self.runtime = network.runtime
        self.endpoint = Endpoint(name, network)
        self.reliable = ReliableEndpoint(self.endpoint, retry_policy)
        self.van = van
        if van is not None:
            van.subscribe(name)

        self.worklist = Worklist(name)
        self.archive = DocumentArchive()
        activities = built_in_registry()
        register_private_activities(activities)
        self.wfms = WorkflowEngine(
            f"{name}-wfms",
            activities=activities,
            clock=self.scheduler.clock,
            services={"worklist": self.worklist, "archive": self.archive},
            runtime=self.runtime,
        )
        self.model = IntegrationModel(name)
        self.model.transforms = build_standard_registry()
        self.backends: dict[str, ERPSimulator] = {}
        transports: dict[str, Any] = {
            TRANSPORT_RELIABLE: self.reliable,
            TRANSPORT_PLAIN: self.endpoint,
        }
        if van is not None:
            transports[TRANSPORT_VAN] = van
        self.b2b = B2BEngine(
            self.model,
            self.wfms,
            backends=self.backends,
            transports=transports,
            reply_timeout=reply_timeout,
        )
        self.reliable.on_message(self.b2b.receive)

    # -- configuration ---------------------------------------------------------------

    def deploy_private_process(self, workflow_type: WorkflowType) -> None:
        """Register a private process in the model and the WFMS."""
        self.model.add_private_process(workflow_type)
        self.wfms.deploy(workflow_type)

    def deploy_protocol(self, protocol: B2BProtocol, private_process: str) -> None:
        """Deploy a B2B protocol end to end."""
        if protocol.transport == TRANSPORT_VAN and self.van is None:
            raise ConfigurationError(
                f"{self.name}: protocol {protocol.name!r} needs a VAN connection"
            )
        self.model.add_protocol(protocol, private_process)

    def add_backend(self, backend: ERPSimulator, private_process: str) -> None:
        """Attach a back-end application simulator and its binding."""
        self.model.add_application(backend.name, backend.format_name, private_process)
        self.backends[backend.name] = backend
        # Keep the activity service view current.
        self.wfms.services["app_bindings"] = self.model.app_bindings()
        backend.on_document_ready(
            lambda application, document: self.b2b.backend_ready(application, document)
        )

    def add_partner(
        self, partner: TradingPartner, agreements: Iterable[TradingPartnerAgreement] = ()
    ) -> None:
        """Register a trading partner and its agreements."""
        self.model.partners.add_partner(partner)
        for agreement in agreements:
            self.model.partners.add_agreement(agreement)

    def add_rule_set(self, rule_set: RuleSet) -> None:
        """Register an external business-rule set."""
        self.model.rules.register(rule_set)

    @property
    def rules(self) -> RuleEngine:
        """The enterprise rule engine."""
        return self.model.rules

    # -- business operations -----------------------------------------------------------

    def submit_order(
        self,
        application: str,
        partner_id: str,
        po_number: str,
        lines: list[dict[str, Any]],
        private_process: str = "private-po-buyer",
        currency: str = "USD",
        protocol: str | None = None,
    ) -> str:
        """Enter an order in a back end and start the buyer private process.

        Returns the private workflow instance id; the PO travels to the
        partner once the process passes its approval rule.  ``protocol``
        disambiguates when several agreements with the partner could carry
        a purchase order.
        """
        backend = self._backend(application)
        backend.enter_order(po_number, self.name, partner_id, lines, currency=currency)
        instance_id = self.wfms.create_instance(
            private_process,
            variables={
                "application": application,
                "po_number": po_number,
                "partner_id": partner_id,
                "po_protocol": protocol,
            },
        )
        self.wfms.start(instance_id)
        return instance_id

    def submit_shipment(
        self,
        application: str,
        partner_id: str,
        po_number: str,
        private_process: str = "private-fulfillment-seller",
    ) -> str:
        """Start the order-to-cash dispatch for a booked order.

        The fulfillment private process builds a ship notice and an
        invoice from the order in ``application`` and sends both to the
        partner over the one-way dispatch exchange.  Returns the private
        workflow instance id.
        """
        backend = self._backend(application)
        if not backend.has_order(po_number):
            raise IntegrationError(
                f"{self.name}: no order {po_number!r} booked in {application!r}"
            )
        instance_id = self.wfms.create_instance(
            private_process,
            variables={
                "application": application,
                "po_number": po_number,
                "partner_id": partner_id,
            },
        )
        self.wfms.start(instance_id)
        return instance_id

    def submit_rfq(
        self,
        partner_ids: list[str],
        rfq_number: str,
        lines: list[dict[str, Any]],
        respond_by_delay: float | None = None,
        private_process: str = "private-sourcing",
    ) -> str:
        """Broadcast a request for quotation to several partners.

        The sourcing private process fans the RFQ out, awaits the quotes
        (or the deadline), and selects the winner through the private
        scoring rule.  Returns the private workflow instance id.
        """
        instance_id = self.wfms.create_instance(
            private_process,
            variables={
                "rfq_number": rfq_number,
                "buyer_id": self.name,
                "lines": lines,
                "partners": list(partner_ids),
                "respond_by_delay": respond_by_delay,
            },
        )
        self.wfms.start(instance_id)
        return instance_id

    def complete_work_item(self, item_id: str, approved: bool, user: str = "manager") -> None:
        """Decide a pending approval and resume the parked private process."""
        self.worklist.complete(item_id, {"approved": approved}, completed_by=user)
        wait_key = f"worklist:{item_id}"
        if self.wfms.has_waiting(wait_key):
            self.wfms.complete_waiting_step(wait_key, {"approved": approved})
        self.b2b.refresh_conversations()

    def poll_van(self) -> int:
        """Pick up waiting VAN interchanges; returns how many were handled."""
        if self.van is None:
            return 0
        batch = self.van.pick_up(self.name)
        for message in batch:
            self.b2b.receive(message)
        return len(batch)

    # -- inspection ----------------------------------------------------------------------

    def instance(self, instance_id: str) -> WorkflowInstance:
        """Load a private workflow instance snapshot."""
        return self.wfms.get_instance(instance_id)

    def _backend(self, application: str) -> ERPSimulator:
        try:
            return self.backends[application]
        except KeyError:
            raise IntegrationError(
                f"{self.name}: no back-end application {application!r}"
            ) from None

    def __repr__(self) -> str:
        return f"Enterprise({self.name!r})"


def run_community(
    enterprises: list[Enterprise],
    max_rounds: int = 100,
) -> int:
    """Drive the whole multi-enterprise simulation to quiescence.

    Alternates (a) draining the shared event scheduler — network
    deliveries, retry timers, ERP processing delays — and (b) polling every
    enterprise's VAN mailbox, until neither produces work.  Returns the
    number of rounds taken.
    """
    if not enterprises:
        return 0
    scheduler = enterprises[0].scheduler
    for round_number in range(1, max_rounds + 1):
        fired = scheduler.run_until_idle()
        picked_up = sum(enterprise.poll_van() for enterprise in enterprises)
        for enterprise in enterprises:
            enterprise.b2b.refresh_conversations()
        if fired == 0 and picked_up == 0:
            return round_number
    raise IntegrationError(
        f"community did not quiesce within {max_rounds} rounds; "
        "probable protocol livelock"
    )
