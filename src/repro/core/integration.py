"""The integration model and the B2B engine runtime.

:class:`IntegrationModel` is the *deployed configuration* of one
enterprise: protocols, public processes, bindings, private processes,
rules, partners, applications and the mapping catalog.  It is a pure
description — the change-management experiments (Section 4.5) diff its
:meth:`~IntegrationModel.element_index` before and after edits, and the
complexity experiments (Section 4.6) count its elements.

:class:`B2BEngine` executes that model: inbound wire messages drive public
process instances, bindings normalize documents and hand them to private
workflow instances on the enterprise WFMS, and private connection
activities push replies back out — the full runtime of Figure 14.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.b2b.protocol import B2BProtocol

from repro.core.binding import Binding, make_application_binding, make_protocol_binding
from repro.core.public_process import PublicProcessDefinition, PublicProcessInstance
from repro.core.rules import RuleEngine
from repro.documents.model import Document
from repro.errors import (
    AgreementError,
    BindingError,
    IntegrationError,
    PartnerError,
    ProtocolError,
    RetryExhaustedError,
    TransformError,
    WireFormatError,
)
from repro.messaging.disciplines import (
    TRANSPORT_PLAIN,
    TRANSPORT_RELIABLE,
    TRANSPORT_VAN,
)
from repro.messaging.envelope import IdGenerator, KIND_BUSINESS, Message
from repro.partners.directory import PartnerDirectory
from repro.runtime import (
    ConversationCompleted,
    ConversationFailed,
    ConversationStarted,
    DocumentReceived,
    DocumentSent,
    RuntimeEvent,
)
from repro.transform.transformer import TransformationRegistry
from repro.workflow.definitions import WorkflowType
from repro.workflow.engine import WorkflowEngine
from repro.workflow.instance import INSTANCE_WAITING

__all__ = ["Route", "IntegrationModel", "Conversation", "B2BEngine"]


@dataclass(frozen=True)
class Route:
    """How one (protocol, role) pair reaches a private process."""

    protocol: str
    role: str
    public_process: str
    binding: str
    private_process: str


class IntegrationModel:
    """The static integration configuration of one enterprise."""

    def __init__(
        self,
        name: str,
        transforms: TransformationRegistry | None = None,
        rules: RuleEngine | None = None,
        partners: PartnerDirectory | None = None,
    ):
        if not name:
            raise IntegrationError("integration model needs an enterprise name")
        self.name = name
        self.transforms = transforms or TransformationRegistry()
        self.rules = rules or RuleEngine()
        self.partners = partners or PartnerDirectory()
        self.protocols: dict[str, B2BProtocol] = {}
        self.public_processes: dict[str, PublicProcessDefinition] = {}
        self.bindings: dict[str, Binding] = {}
        self.private_processes: dict[str, WorkflowType] = {}
        self.applications: dict[str, str] = {}   # app name -> native format
        self._routes: dict[tuple[str, str], Route] = {}
        self._app_bindings: dict[str, Binding] = {}

    # -- assembly -----------------------------------------------------------------

    def add_private_process(self, workflow_type: WorkflowType) -> WorkflowType:
        """Register a private process definition."""
        if workflow_type.name in self.private_processes:
            raise IntegrationError(
                f"private process {workflow_type.name!r} already registered"
            )
        self.private_processes[workflow_type.name] = workflow_type
        return workflow_type

    def add_protocol(self, protocol: B2BProtocol, private_process: str) -> None:
        """Deploy a B2B protocol: both public processes, both bindings,
        and the routes into ``private_process``.

        This is the entire model change for "adding a new B2B protocol
        standard" (Section 4.6) — the private process is untouched.
        """
        if protocol.name in self.protocols:
            raise IntegrationError(f"protocol {protocol.name!r} already deployed")
        if private_process not in self.private_processes:
            raise IntegrationError(
                f"cannot deploy {protocol.name!r}: private process "
                f"{private_process!r} is not registered"
            )
        # A protocol whose two roles cannot collaborate must never deploy:
        # the Section 3 sequencing check, run statically.
        from repro.core.public_process import check_complementary

        problems = check_complementary(
            protocol.public_process("buyer"), protocol.public_process("seller")
        )
        if problems:
            raise ProtocolError(
                f"protocol {protocol.name!r} public processes are not "
                f"complementary: {'; '.join(problems)}"
            )
        self.protocols[protocol.name] = protocol
        for role in ("buyer", "seller"):
            definition = protocol.public_process(role)
            self.public_processes[definition.name] = definition
            binding = make_protocol_binding(
                name=f"{protocol.name}/{role}-binding",
                public_process=definition.name,
                private_process=private_process,
                wire_format=protocol.wire_format,
            )
            self.bindings[binding.name] = binding
            self._routes[(protocol.name, role)] = Route(
                protocol.name, role, definition.name, binding.name, private_process
            )

    def remove_protocol(self, protocol_name: str) -> None:
        """Off-board a protocol (inverse of :meth:`add_protocol`)."""
        if protocol_name not in self.protocols:
            raise IntegrationError(f"protocol {protocol_name!r} is not deployed")
        del self.protocols[protocol_name]
        for role in ("buyer", "seller"):
            route = self._routes.pop((protocol_name, role), None)
            if route is not None:
                self.public_processes.pop(route.public_process, None)
                self.bindings.pop(route.binding, None)

    def add_application(
        self, name: str, native_format: str, private_process: str
    ) -> Binding:
        """Deploy a back-end application and its binding (Section 4.6:
        "adding new back end application system is analogous to adding a
        new B2B protocol standard")."""
        if name in self.applications:
            raise IntegrationError(f"application {name!r} already registered")
        if private_process not in self.private_processes:
            raise IntegrationError(
                f"cannot add application {name!r}: private process "
                f"{private_process!r} is not registered"
            )
        self.applications[name] = native_format
        binding = make_application_binding(
            name=f"app/{name}-binding",
            application=name,
            private_process=private_process,
            native_format=native_format,
        )
        self.bindings[binding.name] = binding
        self._app_bindings[name] = binding
        return binding

    # -- lookup --------------------------------------------------------------------

    def route(self, protocol: str, role: str) -> Route:
        """Return the deployment route for (protocol, role)."""
        try:
            return self._routes[(protocol, role)]
        except KeyError:
            raise IntegrationError(
                f"{self.name}: no route for protocol {protocol!r} role {role!r} "
                "(protocol not deployed?)"
            ) from None

    def responder_route(self, protocol: str) -> Route:
        """Return the route whose public process *reacts* to inbound
        requests under ``protocol`` (the non-initiating side).

        For the request/reply protocols this is the seller; for one-way
        dispatch exchanges like ``oagis-fulfillment`` it is the buyer.
        """
        for role in ("seller", "buyer"):
            route = self._routes.get((protocol, role))
            if route is None:
                continue
            if not self.public_processes[route.public_process].initiating():
                return route
        raise IntegrationError(
            f"{self.name}: no responding public process for protocol "
            f"{protocol!r} (protocol not deployed, or we only initiate it)"
        )

    def app_binding(self, application: str) -> Binding:
        """Return the application binding for ``application``."""
        try:
            return self._app_bindings[application]
        except KeyError:
            raise IntegrationError(
                f"{self.name}: no application binding for {application!r}"
            ) from None

    def app_bindings(self) -> dict[str, Binding]:
        """Application name -> binding map (activity service)."""
        return dict(self._app_bindings)

    # -- change detection & metrics ----------------------------------------------------

    def element_index(self) -> dict[str, str]:
        """Return every model element keyed by kind/name with a stable
        fingerprint — the substrate of the Section 4.5 change experiments.
        """
        index: dict[str, str] = {}
        for mapping in self.transforms.mappings():
            index[f"mapping:{mapping.name}"] = (
                f"{mapping.source_format}->{mapping.target_format}"
                f"/{mapping.doc_type}#{mapping.rule_count()}"
            )
        for name, definition in self.public_processes.items():
            index[f"public:{name}"] = json.dumps(definition.to_dict(), sort_keys=True)
        for name, binding in self.bindings.items():
            index[f"binding:{name}"] = json.dumps(binding.to_dict(), sort_keys=True)
        for name, workflow_type in self.private_processes.items():
            index[f"private:{name}"] = json.dumps(workflow_type.to_dict(), sort_keys=True)
        for rule_set in self.rules.sets():
            for rule in rule_set.rules:
                index[f"rule:{rule_set.function}:{rule.name}"] = rule.fingerprint()
        for partner in self.partners.partners():
            index[f"partner:{partner.partner_id}"] = (
                f"{partner.name}|{partner.address}|{sorted(partner.protocols)}"
            )
        for agreement in self.partners.agreements():
            index[f"agreement:{':'.join(agreement.key())}"] = (
                f"{agreement.status}|{sorted(agreement.doc_types)}"
            )
        for name, native_format in self.applications.items():
            index[f"application:{name}"] = native_format
        return index

    def verification_digest(self, **verify_options) -> str:
        """Content digest of everything verification of this model depends
        on — element fingerprints plus the verify options (see
        :mod:`repro.verify.incremental`).  Equal digests mean a previously
        cached verification verdict may be reused verbatim.
        """
        from repro.verify.incremental import verification_digest

        return verification_digest(self, verify_options)[0]

    def verify(
        self,
        strict: bool = False,
        deep: bool = False,
        dataflow: bool = False,
        queue_bound: int | None = None,
        max_states: int | None = None,
        time_budget: float | None = None,
        reduce: bool = True,
        stats: dict | None = None,
    ) -> list:
        """Statically lint this model (see :mod:`repro.verify`).

        Returns the list of :class:`~repro.verify.Diagnostic` records.
        With ``strict=True``, raises :class:`VerificationError` if any
        error-severity diagnostic is present — the deployment-time gate.
        With ``deep=True``, additionally explores every protocol's
        buyer/seller conversation product automaton (B2B5xx) and runs the
        AND-parallel race analysis over every private process (B2B6xx);
        ``queue_bound``, ``max_states`` and ``time_budget`` bound that
        exploration (``None`` keeps the statespace defaults),
        ``reduce=False`` disables partial-order reduction, and a ``stats``
        dict is filled with timing and explored/pruned state counts.
        With ``dataflow=True``, the schema dataflow pass (B2B7xx) pushes
        abstract documents through every mapping and binding-chain route
        and checks them against their downstream consumers.
        """
        from repro.errors import VerificationError
        from repro.verify import SEVERITY_ERROR, at_or_above, verify_model

        diagnostics = verify_model(
            self,
            deep=deep,
            dataflow=dataflow,
            queue_bound=queue_bound,
            max_states=max_states,
            time_budget=time_budget,
            reduce=reduce,
            stats=stats,
        )
        if strict:
            errors = at_or_above(diagnostics, SEVERITY_ERROR)
            if errors:
                rendered = "; ".join(d.render() for d in errors[:5])
                suffix = "" if len(errors) <= 5 else f" (+{len(errors) - 5} more)"
                raise VerificationError(
                    f"model {self.name!r} failed static verification with "
                    f"{len(errors)} error(s): {rendered}{suffix}",
                    diagnostics=errors,
                )
        return diagnostics


@dataclass
class Conversation:
    """One business exchange (e.g. one PO-POA round trip) in flight."""

    conversation_id: str
    protocol: str
    partner_id: str
    role: str
    public: PublicProcessInstance
    private_instance_id: str = ""
    status: str = "open"      # open / completed / failed
    fault: str = ""
    documents: list[str] = field(default_factory=list)
    # the last business document received on the wire — the input to
    # public-level receipt-acknowledgment steps (auto_ack sends)
    last_received_wire: Document | None = None
    # non-empty when this conversation belongs to a broadcast batch: its
    # replies are collected by the batch instead of a per-conversation wait
    batch_id: str = ""

    def is_open(self) -> bool:
        return self.status == "open"


@dataclass
class Broadcast:
    """One broadcast batch: N conversations sharing a reply collector.

    The paper names "broadcast messages" among the patterns the concepts
    must support (Section 1); an RFQ fanned out to several sellers is the
    canonical case (Section 2.3).
    """

    batch_id: str
    wait_key: str
    pending: set[str] = field(default_factory=set)       # conversation ids
    collected: list[dict[str, Any]] = field(default_factory=list)
    closed: bool = False

    @property
    def expected(self) -> int:
        return len(self.pending) + len(self.collected)


class B2BEngine:
    """The runtime wiring public processes, bindings and private processes.

    :param model: the integration model to execute.
    :param wfms: the enterprise's workflow engine (private processes).
    :param backends: application name -> ERP simulator.
    :param transports: transport name -> transport object; expected keys
        are ``reliable`` (a ReliableEndpoint), ``van`` (a
        ValueAddedNetwork) and ``plain`` (a raw Endpoint) — only those the
        deployed protocols need.
    :param reply_timeout: optional deadline for the reply of an initiated
        conversation; on expiry the conversation fails and the private
        process's parked step is cancelled.
    """

    def __init__(
        self,
        model: IntegrationModel,
        wfms: WorkflowEngine,
        backends: dict[str, Any] | None = None,
        transports: dict[str, Any] | None = None,
        reply_timeout: float | None = None,
    ):
        self.model = model
        self.wfms = wfms
        # Keep the caller's dict by reference: back ends registered after
        # construction (Enterprise.add_backend) must stay visible here and
        # in the activity service view.
        self.backends = backends if backends is not None else {}
        self.transports = dict(transports or {})
        self.reply_timeout = reply_timeout
        self.conversations: dict[str, Conversation] = {}
        self.broadcasts: dict[str, Broadcast] = {}
        self.faults: list[dict[str, str]] = []
        # append-only audit journal of every business message in/out:
        # {at, direction, partner, protocol, doc_type, conversation, bytes}
        self.journal: list[dict[str, Any]] = []
        self._conversation_ids = IdGenerator(f"CONV-{model.name}")
        self._broadcast_ids = IdGenerator(f"BCAST-{model.name}")
        self._message_ids = IdGenerator(f"B2B-{model.name}")
        # The B2B engine shares the WFMS's runtime kernel: conversation and
        # document events interleave with workflow events on one bus.
        self.runtime = wfms.runtime
        # Make the engine and its collaborators reachable from activities.
        wfms.services.setdefault("b2b", self)
        wfms.services.setdefault("rules", model.rules)
        wfms.services.setdefault("transforms", model.transforms)
        wfms.services.setdefault("backends", self.backends)
        wfms.services.setdefault("app_bindings", model.app_bindings())

    @property
    def messages_sent(self) -> int:
        """Business documents transmitted (view over the kernel metrics)."""
        return self.runtime.metrics.count(DocumentSent, source=self.model.name)

    @property
    def messages_received(self) -> int:
        """Business documents accepted inbound (view over the kernel metrics)."""
        return self.runtime.metrics.count(DocumentReceived, source=self.model.name)

    def _emit(self, event_cls: type[RuntimeEvent], **fields: Any) -> None:
        self.runtime.emit(event_cls, self.model.name, **fields)

    # -- clock / scheduler access -----------------------------------------------------

    @property
    def _clock(self):
        return self.wfms.clock

    def _scheduler(self):
        reliable = self.transports.get(TRANSPORT_RELIABLE)
        if reliable is not None:
            return reliable.scheduler
        plain = self.transports.get(TRANSPORT_PLAIN)
        if plain is not None:
            return plain.network.scheduler
        return None

    # -- outbound (buyer) ----------------------------------------------------------------

    def start_conversation(
        self,
        partner_id: str,
        document: Document,
        our_role: str = "buyer",
        protocol: str | None = None,
    ) -> str:
        """Open a conversation: agreement lookup, public process creation,
        binding outbound, first send.  Returns the conversation id.

        ``our_role`` is the agreement role we play; the conversation may be
        initiated by either side depending on the exchange (buyers initiate
        purchase orders, sellers initiate fulfillment dispatches).
        ``protocol`` disambiguates when several agreements with the partner
        could carry the document.
        """
        agreement = self.model.partners.find_agreement(
            partner_id,
            protocol=protocol,
            our_role=our_role,
            doc_type=document.doc_type,
        )
        route = self.model.route(agreement.protocol, our_role)
        definition = self.model.public_processes[route.public_process]
        if not definition.initiating():
            raise ProtocolError(
                f"{self.model.name}: public process {definition.name!r} does "
                "not initiate — this side only responds under "
                f"{agreement.protocol!r}"
            )
        conversation = Conversation(
            conversation_id=self._conversation_ids.next(),
            protocol=agreement.protocol,
            partner_id=partner_id,
            role=our_role,
            public=PublicProcessInstance(
                definition,
                "",  # set below once the id exists
                partner_id,
            ),
        )
        conversation.public.conversation_id = conversation.conversation_id
        self.conversations[conversation.conversation_id] = conversation
        self._emit(
            ConversationStarted,
            conversation_id=conversation.conversation_id,
            protocol=conversation.protocol,
            partner_id=partner_id,
            role=our_role,
        )
        self._push_outbound(conversation, route, document)
        return conversation.conversation_id

    def broadcast(
        self,
        partner_ids: list[str],
        document: Document,
        our_role: str = "buyer",
        deadline: float | None = None,
        seller_id_path: str = "header.seller_id",
    ) -> str:
        """Fan one document out to several partners (Section 1's broadcast
        pattern); returns the batch id.

        A per-partner copy is sent (with ``seller_id_path`` re-addressed),
        each opening an ordinary conversation; replies accumulate in the
        batch and the step parked on ``broadcast:<batch_id>`` completes
        when every partner answered — or at ``deadline`` with whatever
        arrived (the RFQ's respond-by semantics).
        """
        if not partner_ids:
            raise IntegrationError("broadcast needs at least one partner")
        batch = Broadcast(
            batch_id=self._broadcast_ids.next(),
            wait_key="",
        )
        batch.wait_key = f"broadcast:{batch.batch_id}"
        self.broadcasts[batch.batch_id] = batch
        for partner_id in partner_ids:
            copy = document.copy()
            copy.set(seller_id_path, partner_id)
            conversation_id = self.start_conversation(partner_id, copy, our_role)
            self.conversations[conversation_id].batch_id = batch.batch_id
            batch.pending.add(conversation_id)
        if deadline is not None:
            scheduler = self._scheduler()
            if scheduler is not None:
                scheduler.after(
                    deadline,
                    lambda: self.close_broadcast(batch.batch_id),
                    label=f"broadcast deadline {batch.batch_id}",
                )
        return batch.batch_id

    def close_broadcast(self, batch_id: str) -> None:
        """Close a batch with whatever replies arrived (deadline expiry).

        Conversations still pending are marked failed; the parked
        collector step completes with the partial result.
        """
        batch = self.broadcasts.get(batch_id)
        if batch is None or batch.closed:
            return
        batch.closed = True
        for conversation_id in sorted(batch.pending):
            conversation = self.conversations.get(conversation_id)
            if conversation is not None and conversation.is_open():
                conversation.status = "failed"
                conversation.fault = "no reply before the broadcast deadline"
                self._emit(
                    ConversationFailed,
                    conversation_id=conversation.conversation_id,
                    protocol=conversation.protocol,
                    partner_id=conversation.partner_id,
                    reason=conversation.fault,
                )
        batch.pending.clear()
        if self.wfms.has_waiting(batch.wait_key):
            self.wfms.complete_waiting_step(
                batch.wait_key, {"documents": list(batch.collected)}
            )

    def _collect_broadcast_reply(
        self, conversation: Conversation, normalized: Document
    ) -> None:
        batch = self.broadcasts.get(conversation.batch_id)
        if batch is None or batch.closed:
            return
        batch.pending.discard(conversation.conversation_id)
        batch.collected.append(
            {"partner_id": conversation.partner_id, "document": normalized}
        )
        if not batch.pending:
            batch.closed = True
            if self.wfms.has_waiting(batch.wait_key):
                self.wfms.complete_waiting_step(
                    batch.wait_key, {"documents": list(batch.collected)}
                )

    def dispatch_outbound(self, conversation_id: str, document: Document) -> None:
        """Connection step from a private process: send ``document`` out
        through the conversation's binding and public process."""
        conversation = self._conversation(conversation_id)
        route = self.model.route(conversation.protocol, conversation.role)
        self._push_outbound(conversation, route, document)

    def _push_outbound(
        self, conversation: Conversation, route: Route, document: Document
    ) -> None:
        public = conversation.public
        public.expect("from_binding", document.doc_type)
        public.complete_current(document.doc_type)
        binding = self.model.bindings[route.binding]
        partner = self.model.partners.get_partner(conversation.partner_id)
        wire_document = binding.apply_outbound(
            document,
            self.model.transforms,
            {
                "now": self._clock.now(),
                "sender_id": self.model.name,
                "receiver_id": partner.partner_id,
            },
        )
        if wire_document is None:
            raise BindingError(
                f"binding {binding.name!r} consumed an outbound document"
            )
        send_step = public.expect("send", wire_document.doc_type)
        self._transmit(conversation, wire_document)
        public.complete_current(send_step.doc_type)
        conversation.documents.append(f"sent:{wire_document.doc_type}")
        self._drive_auto(conversation)
        self._after_advance(conversation)

    def _transmit(self, conversation: Conversation, wire_document: Document) -> None:
        protocol = self.model.protocols[conversation.protocol]
        partner = self.model.partners.get_partner(conversation.partner_id)
        body = protocol.codec.to_wire(wire_document)
        message = Message(
            message_id=self._message_ids.next(),
            sender=self.model.name,
            receiver=partner.address,
            kind=KIND_BUSINESS,
            protocol=protocol.name,
            doc_type=wire_document.doc_type,
            body=body,
            conversation_id=conversation.conversation_id,
            sent_at=self._clock.now(),
        )
        self._emit(
            DocumentSent,
            conversation_id=conversation.conversation_id,
            doc_type=wire_document.doc_type,
            partner_id=conversation.partner_id,
        )
        self._journal("out", conversation, wire_document.doc_type, len(body))
        if protocol.transport == TRANSPORT_RELIABLE:
            reliable = self._transport(TRANSPORT_RELIABLE, protocol.name)
            reliable.send_reliable(
                message,
                on_failed=lambda failed, error: self._delivery_failed(
                    conversation.conversation_id, error
                ),
            )
        elif protocol.transport == TRANSPORT_VAN:
            van = self._transport(TRANSPORT_VAN, protocol.name)
            van.post(message)
        else:
            endpoint = self._transport(TRANSPORT_PLAIN, protocol.name)
            endpoint.send(message)

    def _transport(self, kind: str, protocol_name: str) -> Any:
        transport = self.transports.get(kind)
        if transport is None:
            raise ProtocolError(
                f"{self.model.name}: protocol {protocol_name!r} needs the "
                f"{kind!r} transport, which is not wired"
            )
        return transport

    # -- inbound ------------------------------------------------------------------------

    def receive(self, message: Message) -> None:
        """Shard-aware inbound entry: queue :meth:`handle_message` keyed by
        the sending partner's address and run to quiescence.

        On the single-queue kernel this is equivalent to calling
        :meth:`handle_message` directly; on a
        :class:`~repro.runtime.sharding.ShardedKernel` it routes each
        partner's inbound traffic to that partner's shard.
        """
        self.runtime.submit(
            lambda: self.handle_message(message),
            label=f"{self.model.name}:receive:{message.message_id}",
            partner_key=message.sender,
        )
        self.runtime.drain()

    def handle_message(self, message: Message) -> None:
        """Entry point for every inbound business message (push from the
        reliable endpoint, or pull from a VAN poll)."""
        if message.kind != KIND_BUSINESS:
            return
        self._emit(
            DocumentReceived,
            conversation_id=message.conversation_id,
            doc_type=message.doc_type,
            partner_id=message.sender,
        )
        try:
            partner = self.model.partners.partner_by_address(message.sender)
            protocol = self.model.protocols.get(message.protocol)
            if protocol is None:
                raise ProtocolError(
                    f"no protocol {message.protocol!r} deployed at {self.model.name}"
                )
            wire_document = protocol.codec.from_wire(message.body)
        except (PartnerError, ProtocolError, WireFormatError) as exc:
            self._record_fault(message.conversation_id, message.message_id, exc)
            return
        conversation = self.conversations.get(message.conversation_id)
        try:
            if conversation is not None:
                self._handle_reply(conversation, wire_document)
            else:
                self._handle_request(message, partner.partner_id, wire_document)
        except (AgreementError, ProtocolError, TransformError, IntegrationError) as exc:
            self._record_fault(message.conversation_id, message.message_id, exc)

    def _handle_request(
        self, message: Message, partner_id: str, wire_document: Document
    ) -> None:
        """A new conversation initiated by a partner (we respond)."""
        route = self.model.responder_route(message.protocol)
        self.model.partners.find_agreement(
            partner_id,
            protocol=message.protocol,
            our_role=route.role,
            doc_type=wire_document.doc_type,
        )
        conversation = Conversation(
            conversation_id=message.conversation_id,
            protocol=message.protocol,
            partner_id=partner_id,
            role=route.role,
            public=PublicProcessInstance(
                self.model.public_processes[route.public_process],
                message.conversation_id,
                partner_id,
            ),
        )
        self.conversations[conversation.conversation_id] = conversation
        self._emit(
            ConversationStarted,
            conversation_id=conversation.conversation_id,
            protocol=conversation.protocol,
            partner_id=partner_id,
            role=route.role,
        )
        self._accept_wire(conversation, route, wire_document, is_new=True)

    def _handle_reply(self, conversation: Conversation, wire_document: Document) -> None:
        """A further message on a conversation already in flight."""
        if not conversation.is_open():
            # Late duplicate after completion/failure: drop quietly — the
            # reliable layer usually suppresses these, but a VAN replay or
            # a post-timeout reply can still surface here.
            return
        route = self.model.route(conversation.protocol, conversation.role)
        self._accept_wire(conversation, route, wire_document, is_new=False)

    def _accept_wire(
        self,
        conversation: Conversation,
        route: Route,
        wire_document: Document,
        is_new: bool,
    ) -> None:
        """Consume an inbound wire document through the public process.

        Sequence: expect/complete the receive step; emit any public-level
        receipt acknowledgments (``auto_ack`` send steps); then, when the
        public process reaches a connection step, pass the document through
        the binding to the private process — either starting a fresh
        instance (a new request) or resuming the step parked on the reply.

        Receipt acknowledgments themselves never reach a binding: their
        receive step is followed by another receive (or the end), so the
        ``to_binding`` branch below does not fire for them — exactly the
        Section 4.5 claim that acknowledgment modeling stays inside the
        public process.
        """
        public = conversation.public
        public.expect("receive", wire_document.doc_type)
        public.complete_current(wire_document.doc_type)
        conversation.documents.append(f"received:{wire_document.doc_type}")
        conversation.last_received_wire = wire_document
        self._journal("in", conversation, wire_document.doc_type)
        self._drive_auto(conversation)
        if not public.completed and public.current_step().kind == "to_binding":
            normalized = self._binding_inbound(conversation, route, wire_document)
            self._drive_auto(conversation)
            if normalized is not None:
                self._deliver_to_private(conversation, route, normalized, is_new)
        self._after_advance(conversation)

    def _deliver_to_private(
        self,
        conversation: Conversation,
        route: Route,
        normalized: Document,
        is_new: bool,
    ) -> None:
        if is_new:
            instance_id = self.wfms.create_instance(
                route.private_process,
                variables={
                    "document": normalized,
                    "source": conversation.partner_id,
                    "conversation_id": conversation.conversation_id,
                },
            )
            conversation.private_instance_id = instance_id
            self.wfms.start(instance_id)
        elif conversation.batch_id:
            self._collect_broadcast_reply(conversation, normalized)
        else:
            wait_key = f"conv:{conversation.conversation_id}:reply"
            if self.wfms.has_waiting(wait_key):
                self.wfms.complete_waiting_step(wait_key, {"document": normalized})

    def _drive_auto(self, conversation: Conversation) -> None:
        """Execute public-level automatic steps (receipt acknowledgments).

        A ``send`` step flagged ``auto_ack`` is satisfied by the engine
        itself: the protocol's receipt builder turns the last received
        business document into the acknowledgment, which is transmitted
        without any binding or private-process involvement.
        """
        public = conversation.public
        protocol = self.model.protocols[conversation.protocol]
        while not public.completed:
            step = public.current_step()
            if step.kind != "send" or not step.params.get("auto_ack"):
                return
            if protocol.receipt_builder is None:
                raise ProtocolError(
                    f"public process {public.definition.name!r} has an "
                    f"auto_ack step but protocol {protocol.name!r} defines "
                    "no receipt builder"
                )
            if conversation.last_received_wire is None:
                raise ProtocolError(
                    f"conversation {conversation.conversation_id}: auto_ack "
                    "step with nothing received to acknowledge"
                )
            receipt = protocol.receipt_builder(
                conversation.last_received_wire, self._clock.now()
            )
            self._transmit(conversation, receipt)
            public.complete_current("auto receipt")
            conversation.documents.append(f"sent:{receipt.doc_type}")

    def _binding_inbound(
        self, conversation: Conversation, route: Route, wire_document: Document
    ) -> Document | None:
        public = conversation.public
        public.expect("to_binding", wire_document.doc_type)
        binding = self.model.bindings[route.binding]
        normalized = binding.apply_inbound(
            wire_document,
            self.model.transforms,
            {"now": self._clock.now(), "sender_id": conversation.partner_id},
        )
        public.complete_current(wire_document.doc_type)
        return normalized

    # -- back-end and failure hooks --------------------------------------------------------

    def backend_ready(self, application: str, native_document: Document) -> None:
        """Callback when an ERP queues an outbound document: resume the
        private-process step parked on its extraction, if any."""
        backend = self.backends.get(application)
        if backend is None:
            return
        po_number = backend._document_po_number(native_document)
        wait_key = f"erp:{application}:{po_number}:{native_document.doc_type}"
        if not self.wfms.has_waiting(wait_key):
            return
        extracted = backend.extract_document_for(po_number, native_document.doc_type)
        if extracted is None:
            return
        binding = self.model.app_binding(application)
        normalized = binding.apply_inbound(
            extracted, self.model.transforms, {"now": self._clock.now()}
        )
        self.wfms.complete_waiting_step(wait_key, {"document": normalized})
        for conversation in self.conversations.values():
            self._after_advance(conversation)

    def _delivery_failed(self, conversation_id: str, error: RetryExhaustedError) -> None:
        conversation = self.conversations.get(conversation_id)
        if conversation is None or not conversation.is_open():
            return
        conversation.status = "failed"
        conversation.fault = str(error)
        self._emit(
            ConversationFailed,
            conversation_id=conversation_id,
            protocol=conversation.protocol,
            partner_id=conversation.partner_id,
            reason=str(error),
        )
        self.faults.append(
            {"conversation": conversation_id, "message": "", "error": str(error)}
        )
        wait_key = f"conv:{conversation_id}:reply"
        if self.wfms.has_waiting(wait_key):
            self.wfms.cancel_waiting_step(wait_key, f"delivery failed: {error}")

    def _journal(
        self,
        direction: str,
        conversation: Conversation,
        doc_type: str,
        size: int = 0,
    ) -> None:
        self.journal.append(
            {
                "at": self._clock.now(),
                "direction": direction,
                "partner": conversation.partner_id,
                "protocol": conversation.protocol,
                "doc_type": doc_type,
                "conversation": conversation.conversation_id,
                "bytes": size,
            }
        )

    def journal_for(
        self, partner_id: str | None = None, doc_type: str | None = None
    ) -> list[dict[str, Any]]:
        """Query the audit journal (the compliance view of what crossed
        the enterprise boundary, and when)."""
        return [
            entry
            for entry in self.journal
            if (partner_id is None or entry["partner"] == partner_id)
            and (doc_type is None or entry["doc_type"] == doc_type)
        ]

    def _record_fault(self, conversation_id: str, message_id: str, error: Exception) -> None:
        self.faults.append(
            {"conversation": conversation_id, "message": message_id, "error": str(error)}
        )

    # -- status ------------------------------------------------------------------------------

    def _after_advance(self, conversation: Conversation) -> None:
        if not conversation.is_open():
            return
        if not conversation.public.completed:
            return
        if conversation.private_instance_id:
            instance = self.wfms.get_instance(conversation.private_instance_id)
            if instance.status == INSTANCE_WAITING or not instance.is_terminal():
                return
        conversation.status = "completed"
        self._emit(
            ConversationCompleted,
            conversation_id=conversation.conversation_id,
            protocol=conversation.protocol,
            partner_id=conversation.partner_id,
        )

    def _conversation(self, conversation_id: str) -> Conversation:
        try:
            return self.conversations[conversation_id]
        except KeyError:
            raise IntegrationError(
                f"{self.model.name}: unknown conversation {conversation_id!r}"
            ) from None

    def refresh_conversations(self) -> None:
        """Re-derive conversation statuses (call after out-of-band progress
        such as a manual approval completing a private instance)."""
        for conversation in self.conversations.values():
            self._after_advance(conversation)

    def open_conversations(self) -> list[Conversation]:
        """Conversations still in flight."""
        return [c for c in self.conversations.values() if c.is_open()]

    def conversation(self, conversation_id: str) -> Conversation:
        """Public accessor for a conversation record."""
        return self._conversation(conversation_id)
