"""Model-complexity metrics (the instrument behind experiments F9/F10 and
Section 4.6).

The paper's quantitative claim is about *model size and growth*: the naive
approach multiplies steps and transformations across (protocol x partner x
back end) combinations inside workflow types, while the advanced approach
grows additively in separated elements.  :func:`measure_workflow_type`
sizes a single (possibly naive) workflow type; :func:`measure_model` sizes
an advanced :class:`~repro.core.integration.IntegrationModel`; both produce
the same :class:`ModelMetrics` record so the growth curves are directly
comparable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, fields

from repro.core.integration import IntegrationModel
from repro.workflow.definitions import WorkflowType
from repro.workflow.expressions import Expression

__all__ = ["ModelMetrics", "measure_workflow_type", "measure_model", "comparison_terms"]


@dataclass
class ModelMetrics:
    """Element counts of one integration model (naive or advanced).

    ``total_elements`` is the headline series of the growth experiments:
    everything a human must author and maintain.
    """

    workflow_types: int = 0
    workflow_steps: int = 0
    transitions: int = 0
    conditions: int = 0
    condition_terms: int = 0          # comparisons inside transition conditions
    inline_transform_steps: int = 0   # transformations coded inside workflows (naive)
    inline_rule_terms: int = 0        # partner/amount comparisons inside workflows (naive)
    public_processes: int = 0
    public_steps: int = 0
    bindings: int = 0
    binding_steps: int = 0
    business_rules: int = 0
    mappings: int = 0
    partners: int = 0
    agreements: int = 0
    applications: int = 0
    labels: dict[str, str] = field(default_factory=dict, compare=False)

    @property
    def total_elements(self) -> int:
        """Everything authored: steps, arcs, inline condition terms,
        rules, binding/public steps, and mappings (partner/agreement
        registry entries excluded — both approaches need those equally).

        Condition terms count because each ``amount >= X and source ==
        'TPn'`` pairing is an authored, maintained artifact — in the naive
        model they hide inside transition conditions, in the advanced
        model the equivalent artifact is the external business rule.
        """
        return (
            self.workflow_steps
            + self.transitions
            + self.condition_terms
            + self.public_steps
            + self.binding_steps
            + self.business_rules
            + self.mappings
        )

    @property
    def decision_surface(self) -> int:
        """Conditions plus rule terms — where partner-specific logic lives.

        In the naive model this grows with every partner; in the advanced
        model it is concentrated in external business rules.
        """
        return self.condition_terms + self.inline_rule_terms + self.business_rules

    def as_dict(self) -> dict[str, int]:
        """Numeric fields as a flat dict (benchmark table rows)."""
        values = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "labels"
        }
        values["total_elements"] = self.total_elements
        values["decision_surface"] = self.decision_surface
        return values

    def __add__(self, other: "ModelMetrics") -> "ModelMetrics":
        combined = ModelMetrics()
        for f in fields(ModelMetrics):
            if f.name == "labels":
                continue
            setattr(combined, f.name, getattr(self, f.name) + getattr(other, f.name))
        return combined


def comparison_terms(condition: str) -> int:
    """Count comparison operations in a condition expression.

    ``PO_amount >= 55000 and source == 'TP1' or PO_amount >= 40000 and
    source == 'TP2'`` has 4 terms — one per (partner x threshold) pairing,
    which is exactly how Figures 9/10 grow.
    """
    expression = Expression(condition)
    count = 0
    for node in ast.walk(expression._tree):  # noqa: SLF001 - metrics are a friend module
        if isinstance(node, ast.Compare):
            count += len(node.ops)
    return count


def measure_workflow_type(workflow_type: WorkflowType) -> ModelMetrics:
    """Size one workflow type (the naive baselines are single types)."""
    metrics = ModelMetrics(
        workflow_types=1,
        workflow_steps=workflow_type.step_count(),
        transitions=workflow_type.transition_count(),
        conditions=workflow_type.condition_count(),
    )
    for transition in workflow_type.transitions:
        if transition.condition is not None:
            metrics.condition_terms += comparison_terms(transition.condition)
    metrics.inline_transform_steps = len(workflow_type.steps_tagged("transformation"))
    for transition in workflow_type.transitions:
        if transition.condition is not None and _mentions_partner(transition.condition):
            metrics.inline_rule_terms += comparison_terms(transition.condition)
    metrics.labels["name"] = workflow_type.name
    return metrics


def _mentions_partner(condition: str) -> bool:
    """Heuristic: naive rule conditions compare against the partner variable."""
    return "source" in Expression(condition).variables_used()


def measure_model(model: IntegrationModel) -> ModelMetrics:
    """Size an advanced integration model."""
    metrics = ModelMetrics()
    for workflow_type in model.private_processes.values():
        metrics += measure_workflow_type(workflow_type)
    metrics.public_processes = len(model.public_processes)
    metrics.public_steps = sum(
        definition.step_count() for definition in model.public_processes.values()
    )
    metrics.bindings = len(model.bindings)
    metrics.binding_steps = sum(
        binding.step_count() for binding in model.bindings.values()
    )
    metrics.business_rules = model.rules.rule_count()
    metrics.mappings = len(model.transforms)
    metrics.partners = len(model.partners.partners())
    metrics.agreements = len(model.partners.agreements())
    metrics.applications = len(model.applications)
    metrics.labels["name"] = model.name
    return metrics
