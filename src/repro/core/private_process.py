"""Private processes: domain logic as workflow types (Section 4.4).

A private process is an ordinary workflow type executed by the
enterprise's own WFMS.  It operates **exclusively on the normalized
document format**, reaches trading partners only through *connection
activities* that hand documents to bindings, and delegates every
partner-specific decision to the external rule engine — which is why the
builders here mention no partner, protocol, wire format, or threshold
(compare Figure 13: "the workflow is trading partner independent").

This module contributes two things:

* the **connection/rule/application activities** private processes use
  (registered into a WFMS via :func:`register_private_activities`);
* builders for the paper's two running private processes — the **seller**
  process of Figures 13-15 (check need for approval -> approve -> store to
  back end -> extract POA -> return it) and the mirrored **buyer** process
  of Figure 1's left half (extract PO -> approval -> send -> await POA ->
  store it).
"""

from __future__ import annotations

from typing import Any

from repro.documents.normalized import (
    make_invoice,
    make_po_ack,
    make_quote,
    make_rfq,
    make_ship_notice,
)
from repro.errors import ActivityError
from repro.workflow.activities import ActivityContext, ActivityRegistry, Waiting
from repro.workflow.definitions import WorkflowBuilder, WorkflowType

__all__ = [
    "register_private_activities",
    "seller_po_process",
    "buyer_po_process",
    "seller_fulfillment_process",
    "buyer_goods_receipt_process",
    "buyer_sourcing_process",
    "seller_quotation_process",
    "APPROVAL_FUNCTION",
    "ROUTING_FUNCTION",
    "INVOICE_MATCH_FUNCTION",
    "PRICING_FUNCTION",
    "QUOTE_SCORING_FUNCTION",
]

APPROVAL_FUNCTION = "check_need_for_approval"
ROUTING_FUNCTION = "select_target_application"
INVOICE_MATCH_FUNCTION = "check_invoice_match"
PRICING_FUNCTION = "price_catalog"
QUOTE_SCORING_FUNCTION = "score_quote"


# ---------------------------------------------------------------------------
# Activities
# ---------------------------------------------------------------------------


def _evaluate_business_rule(context: ActivityContext) -> dict[str, Any]:
    """Generic rule-invocation step of Figure 13.

    Params: ``function`` — the rule set to call.
    Inputs: ``source``, ``document``, optional ``target``.
    Output: ``result``.
    """
    rules = context.service("rules")
    function = context.params.get("function")
    if not function:
        raise ActivityError("evaluate_business_rule needs params['function']")
    result = rules.evaluate(
        function,
        context.inputs.get("source", ""),
        context.inputs.get("target", ""),
        context.inputs["document"],
    )
    return {"result": result}


def _request_approval(context: ActivityContext) -> dict[str, Any] | Waiting:
    """Raise a work item; completes immediately under an auto policy.

    Inputs: ``document`` (shown to the approver).
    Output: ``approved`` (bool).
    """
    worklist = context.service("worklist")
    document = context.inputs["document"]
    item = worklist.add(
        context.instance_id,
        context.step_id,
        subject=context.params.get("subject", "Approve PO"),
        payload={
            "po_number": document.get("header.po_number", default=""),
            "amount": document.get("summary.total_amount", default=0.0),
        },
        role=context.params.get("role", "approver"),
        now=context.now,
    )
    if item.status == "completed":
        return {"approved": bool(item.decision.get("approved", False))}
    return Waiting(wait_key=f"worklist:{item.item_id}")


def _store_to_application(context: ActivityContext) -> dict[str, Any]:
    """Store a normalized document into a back-end application through its
    application binding (Figure 14's right-hand flow).

    Inputs: ``document`` (normalized), ``application`` (name).
    Output: ``po_number``.
    """
    backends = context.service("backends")
    bindings = context.service("app_bindings")
    transforms = context.service("transforms")
    application = context.inputs["application"]
    document = context.inputs["document"]
    try:
        backend = backends[application]
        binding = bindings[application]
    except KeyError:
        raise ActivityError(f"no back-end application {application!r} is wired") from None
    native = binding.apply_outbound(document, transforms, {"now": context.now})
    if native is None:
        raise ActivityError(
            f"application binding {binding.name!r} consumed the document"
        )
    backend.store_document(native)
    return {"po_number": document.get("header.po_number")}


def _extract_from_application(context: ActivityContext) -> dict[str, Any] | Waiting:
    """Extract a document from a back end and normalize it inbound.

    Inputs: ``application``, ``po_number``; params: ``doc_type``
    (default ``po_ack``).  Output: ``document`` (normalized).  Parks on
    ``erp:<application>:<po_number>:<doc_type>`` when nothing is queued yet
    (asynchronous ERP processing).
    """
    backends = context.service("backends")
    bindings = context.service("app_bindings")
    transforms = context.service("transforms")
    application = context.inputs["application"]
    po_number = context.inputs["po_number"]
    doc_type = context.params.get("doc_type", "po_ack")
    try:
        backend = backends[application]
        binding = bindings[application]
    except KeyError:
        raise ActivityError(f"no back-end application {application!r} is wired") from None
    native = backend.extract_document_for(po_number, doc_type)
    if native is None:
        return Waiting(wait_key=f"erp:{application}:{po_number}:{doc_type}")
    normalized = binding.apply_inbound(native, transforms, {"now": context.now})
    if normalized is None:
        raise ActivityError(
            f"application binding {binding.name!r} consumed the extraction"
        )
    return {"document": normalized}


def _send_to_binding(context: ActivityContext) -> dict[str, Any]:
    """Connection exit step: hand a normalized document to the binding of
    an existing conversation (the private -> public direction).

    Inputs: ``document``, ``conversation_id``.
    """
    b2b = context.service("b2b")
    b2b.dispatch_outbound(context.inputs["conversation_id"], context.inputs["document"])
    return {}


def _start_conversation(context: ActivityContext) -> dict[str, Any]:
    """Open a new conversation with a partner (connection exit of the
    initiating side).

    Inputs: ``document`` (normalized first message), ``partner_id``;
    params: ``role`` — the agreement role we play (default ``buyer``;
    fulfillment dispatches initiate as ``seller``) and optional
    ``protocol`` to disambiguate between agreements.
    Output: ``conversation_id``.
    """
    b2b = context.service("b2b")
    conversation_id = b2b.start_conversation(
        context.inputs["partner_id"],
        context.inputs["document"],
        our_role=context.params.get("role", "buyer"),
        protocol=context.inputs.get("protocol") or context.params.get("protocol"),
    )
    return {"conversation_id": conversation_id}


def _await_reply(context: ActivityContext) -> Waiting:
    """Connection entry step: park until the binding delivers the reply.

    Inputs: ``conversation_id``.  Completed by the B2B engine with
    ``{"document": <normalized reply>}``.
    """
    conversation_id = context.inputs["conversation_id"]
    return Waiting(wait_key=f"conv:{conversation_id}:reply")


def _build_ship_notice(context: ActivityContext) -> dict[str, Any]:
    """Build a normalized advance ship notice for a booked order.

    The order's PO lives in the back end in its *native* format; the
    application binding normalizes it (the Figure 14 extraction path) and
    the ship notice is derived from the normalized PO.

    Inputs: ``application``, ``po_number``.  Output: ``document``.
    """
    backend = context.service("backends")[context.inputs["application"]]
    binding = context.service("app_bindings")[context.inputs["application"]]
    transforms = context.service("transforms")
    record = backend.order(context.inputs["po_number"])
    normalized_po = binding.apply_inbound(record.document, transforms,
                                          {"now": context.now})
    if normalized_po is None:
        raise ActivityError("application binding consumed the order document")
    asn = make_ship_notice(
        normalized_po,
        shipment_id=f"SHIP-{record.po_number}",
        carrier=context.params.get("carrier", "SIMFREIGHT"),
        issued_at=context.now,
    )
    return {"document": asn}


def _build_invoice(context: ActivityContext) -> dict[str, Any]:
    """Build a normalized invoice for a booked order (see
    :func:`_build_ship_notice` for the extraction path).

    Inputs: ``application``, ``po_number``; params: ``tax_rate``.
    Output: ``document``.
    """
    backend = context.service("backends")[context.inputs["application"]]
    binding = context.service("app_bindings")[context.inputs["application"]]
    transforms = context.service("transforms")
    record = backend.order(context.inputs["po_number"])
    normalized_po = binding.apply_inbound(record.document, transforms,
                                          {"now": context.now})
    if normalized_po is None:
        raise ActivityError("application binding consumed the order document")
    invoice = make_invoice(
        normalized_po,
        invoice_number=f"INV-{record.po_number}",
        issued_at=context.now,
        tax_rate=context.params.get("tax_rate", 0.0),
    )
    return {"document": invoice}


def _archive_document(context: ActivityContext) -> dict[str, Any]:
    """File a normalized document in the enterprise document archive.

    Inputs: ``document``.  Output: ``reference`` (the archive key).
    """
    archive = context.service("archive")
    reference = archive.store(context.inputs["document"])
    return {"reference": reference}


def _build_rfq(context: ActivityContext) -> dict[str, Any]:
    """Build a normalized RFQ (the broadcast re-addresses it per seller).

    Inputs: ``rfq_number``, ``buyer_id``, ``lines``; optional
    ``respond_by``.  Output: ``document``.
    """
    return {
        "document": make_rfq(
            context.inputs["rfq_number"],
            context.inputs["buyer_id"],
            seller_id="",
            lines=context.inputs["lines"],
            respond_by=float(context.inputs.get("respond_by") or 0.0),
            issued_at=context.now,
        )
    }


def _broadcast_document(context: ActivityContext) -> dict[str, Any]:
    """Fan a document out to several partners (Section 1's broadcast).

    Inputs: ``document``, ``partners`` (list of ids), optional
    ``deadline`` (relative).  Params: ``role``.  Output: ``batch_id``.
    """
    b2b = context.service("b2b")
    deadline = context.inputs.get("deadline")
    batch_id = b2b.broadcast(
        list(context.inputs["partners"]),
        context.inputs["document"],
        our_role=context.params.get("role", "buyer"),
        deadline=float(deadline) if deadline else None,
    )
    return {"batch_id": batch_id}


def _await_broadcast(context: ActivityContext) -> Waiting:
    """Park until the broadcast batch collects every reply (or closes at
    its deadline).  Inputs: ``batch_id``.  Completed with
    ``{"documents": [{"partner_id", "document"}, ...]}``.
    """
    return Waiting(wait_key=f"broadcast:{context.inputs['batch_id']}")


def _select_best_quote(context: ActivityContext) -> dict[str, Any]:
    """Pick the winning quote by the *external* scoring rule.

    This is the Section 2.3 punchline: the selection logic that
    distributed inter-organizational workflow would have exposed to every
    bidder lives in a private rule set no partner can see.

    Inputs: ``quotes`` (broadcast collection).  Params: ``function``.
    Outputs: ``partner_id``, ``document``, ``score``.
    """
    rules = context.service("rules")
    function = context.params.get("function", QUOTE_SCORING_FUNCTION)
    quotes = context.inputs["quotes"]
    if not quotes:
        raise ActivityError("no quotes received before the deadline")
    best: dict[str, Any] | None = None
    for entry in quotes:
        score = float(
            rules.evaluate(function, entry["partner_id"], "", entry["document"])
        )
        candidate = {
            "partner_id": entry["partner_id"],
            "document": entry["document"],
            "score": score,
            # deterministic tie-breakers: cheaper, then lexicographic
            "_tie": (
                -float(entry["document"].get("summary.total_amount")),
                entry["partner_id"],
            ),
        }
        if best is None or (score, candidate["_tie"]) > (best["score"], best["_tie"]):
            best = candidate
    assert best is not None
    best.pop("_tie")
    return best


def _build_quote(context: ActivityContext) -> dict[str, Any]:
    """Price an RFQ through the external pricing rule and build the quote.

    Inputs: ``document`` (the RFQ), ``source`` (the requesting buyer).
    Params: ``function`` (pricing rule set).  Output: ``document``.
    """
    rules = context.service("rules")
    function = context.params.get("function", PRICING_FUNCTION)
    rfq = context.inputs["document"]
    prices = rules.evaluate(function, context.inputs.get("source", ""), "", rfq)
    quote = make_quote(
        rfq,
        unit_prices=prices,
        quote_number=f"Q-{rfq.get('header.rfq_number')}",
        valid_until=context.now + 100.0,
        issued_at=context.now,
    )
    return {"document": quote}


def _build_rejection_ack(context: ActivityContext) -> dict[str, Any]:
    """Build a 'rejected' acknowledgment for an unapproved purchase order
    without involving any back end.

    Inputs: ``document`` (the normalized PO).  Output: ``document``.
    """
    po = context.inputs["document"]
    return {"document": make_po_ack(po, status="rejected", issued_at=context.now)}


def register_private_activities(registry: ActivityRegistry) -> ActivityRegistry:
    """Register every private-process activity into ``registry``."""
    registry.register_many(
        {
            "evaluate_business_rule": _evaluate_business_rule,
            "request_approval": _request_approval,
            "store_to_application": _store_to_application,
            "extract_from_application": _extract_from_application,
            "send_to_binding": _send_to_binding,
            "start_conversation": _start_conversation,
            "await_reply": _await_reply,
            "build_rejection_ack": _build_rejection_ack,
            "build_ship_notice": _build_ship_notice,
            "build_invoice": _build_invoice,
            "archive_document": _archive_document,
            "build_rfq": _build_rfq,
            "broadcast_document": _broadcast_document,
            "await_broadcast": _await_broadcast,
            "select_best_quote": _select_best_quote,
            "build_quote": _build_quote,
        }
    )
    return registry


# ---------------------------------------------------------------------------
# The paper's private processes
# ---------------------------------------------------------------------------


def seller_po_process(
    name: str = "private-po-seller",
    owner: str = "",
    approval_function: str = APPROVAL_FUNCTION,
    routing_function: str = ROUTING_FUNCTION,
) -> WorkflowType:
    """The seller private process of Figures 13-15.

    Instance variables supplied by the B2B engine at creation:
    ``document`` (normalized PO), ``source`` (trading partner id),
    ``conversation_id``.

    Note what is *absent*: no partner names, no protocols, no formats, no
    amounts — routing and approval both go through external rule functions,
    and all formats were normalized by the binding before this process saw
    the document.
    """
    builder = WorkflowBuilder(name, owner=owner)
    builder.variable("document").variable("source", "")
    builder.variable("conversation_id", "")
    builder.variable("target", "").variable("approval_required", False)
    builder.variable("approved", False).variable("ack")

    builder.activity(
        "select_target",
        "evaluate_business_rule",
        params={"function": routing_function},
        inputs={"source": "source", "document": "document"},
        outputs={"target": "result"},
        tags=("business-rule",),
        label="Select target application",
    )
    builder.activity(
        "check_need_for_approval",
        "evaluate_business_rule",
        params={"function": approval_function},
        inputs={"source": "source", "target": "target", "document": "document"},
        outputs={"approval_required": "result"},
        tags=("business-rule",),
        label="Check need for approval",
        after="select_target",
    )
    builder.activity(
        "approve_po",
        "request_approval",
        inputs={"document": "document"},
        params={"subject": "Approve inbound PO"},
        outputs={"approved": "approved"},
        tags=("approval",),
        label="Approve PO",
    )
    builder.activity(
        "store_po",
        "store_to_application",
        inputs={"document": "document", "application": "target"},
        outputs={"po_number": "po_number"},
        join="XOR",
        tags=("application",),
        label="Store PO",
    )
    builder.activity(
        "extract_poa",
        "extract_from_application",
        inputs={"application": "target", "po_number": "po_number"},
        params={"doc_type": "po_ack"},
        outputs={"ack": "document"},
        tags=("application",),
        label="Extract POA",
        after="store_po",
    )
    builder.activity(
        "return_poa",
        "send_to_binding",
        inputs={"document": "ack", "conversation_id": "conversation_id"},
        tags=("connection",),
        label="Return POA to binding",
        after="extract_poa",
    )
    builder.activity(
        "build_rejection",
        "build_rejection_ack",
        inputs={"document": "document"},
        outputs={"ack": "document"},
        label="Build rejection POA",
    )
    builder.activity(
        "return_rejection",
        "send_to_binding",
        inputs={"document": "ack", "conversation_id": "conversation_id"},
        tags=("connection",),
        label="Return rejection to binding",
        after="build_rejection",
    )

    # Approval routing: skip approval when not required; reject path when
    # the approver declines.
    builder.link("check_need_for_approval", "approve_po", condition="approval_required == True")
    builder.link("check_need_for_approval", "store_po", otherwise=True)
    builder.link("approve_po", "store_po", condition="approved == True")
    builder.link("approve_po", "build_rejection", otherwise=True)
    builder.meta(private=True, doc_types=["purchase_order", "po_ack"])
    return builder.build()


def buyer_po_process(
    name: str = "private-po-buyer",
    owner: str = "",
    approval_function: str = APPROVAL_FUNCTION,
) -> WorkflowType:
    """The buyer private process (Figure 1, left enterprise).

    Instance variables supplied at creation: ``application`` (the back end
    holding the order), ``po_number``, ``partner_id`` (the seller).
    """
    builder = WorkflowBuilder(name, owner=owner)
    builder.variable("application", "").variable("po_number", "")
    builder.variable("partner_id", "")
    builder.variable("po_protocol", None)  # optional agreement disambiguator
    builder.variable("document").variable("approval_required", False)
    builder.variable("approved", False)
    builder.variable("conversation_id", "").variable("ack")

    builder.activity(
        "extract_po",
        "extract_from_application",
        inputs={"application": "application", "po_number": "po_number"},
        params={"doc_type": "purchase_order"},
        outputs={"document": "document"},
        tags=("application",),
        label="Extract PO",
    )
    builder.activity(
        "check_need_for_approval",
        "evaluate_business_rule",
        params={"function": approval_function},
        inputs={"source": "application", "target": "partner_id", "document": "document"},
        outputs={"approval_required": "result"},
        tags=("business-rule",),
        label="Check need for approval",
        after="extract_po",
    )
    builder.activity(
        "approve_po",
        "request_approval",
        inputs={"document": "document"},
        params={"subject": "Approve outbound PO"},
        outputs={"approved": "approved"},
        tags=("approval",),
        label="Approve PO",
    )
    builder.activity(
        "send_po",
        "start_conversation",
        inputs={
            "document": "document",
            "partner_id": "partner_id",
            "protocol": "po_protocol",
        },
        outputs={"conversation_id": "conversation_id"},
        join="XOR",
        tags=("connection",),
        label="Send PO via binding",
    )
    builder.activity(
        "await_poa",
        "await_reply",
        inputs={"conversation_id": "conversation_id"},
        outputs={"ack": "document"},
        tags=("connection",),
        label="Await POA",
        after="send_po",
    )
    builder.activity(
        "store_poa",
        "store_to_application",
        inputs={"document": "ack", "application": "application"},
        outputs={"stored_po_number": "po_number"},
        tags=("application",),
        label="Store POA",
        after="await_poa",
    )
    builder.activity(
        "cancel_order",
        "noop",
        label="Cancel unapproved order",
        tags=("application",),
    )

    builder.link("check_need_for_approval", "approve_po", condition="approval_required == True")
    builder.link("check_need_for_approval", "send_po", otherwise=True)
    builder.link("approve_po", "send_po", condition="approved == True")
    builder.link("approve_po", "cancel_order", otherwise=True)
    builder.meta(private=True, doc_types=["purchase_order", "po_ack"])
    return builder.build()


def seller_fulfillment_process(
    name: str = "private-fulfillment-seller",
    owner: str = "",
    tax_rate: float = 0.0,
) -> WorkflowType:
    """The seller's order-to-cash dispatch: ship notice, then invoice.

    A *multi-step, one-way* exchange — the paper's Section 1 insists the
    concepts are "by no means restricted to request/reply patterns"; this
    process proves it on the same public/binding/rule machinery.  Instance
    variables supplied at creation: ``application``, ``po_number``,
    ``partner_id``.
    """
    builder = WorkflowBuilder(name, owner=owner)
    builder.variable("application", "").variable("po_number", "")
    builder.variable("partner_id", "")
    builder.variable("asn").variable("invoice").variable("conversation_id", "")

    builder.activity(
        "build_asn",
        "build_ship_notice",
        inputs={"application": "application", "po_number": "po_number"},
        outputs={"asn": "document"},
        tags=("application",),
        label="Build ship notice",
    )
    builder.activity(
        "dispatch_asn",
        "start_conversation",
        params={"role": "seller"},
        inputs={"document": "asn", "partner_id": "partner_id"},
        outputs={"conversation_id": "conversation_id"},
        tags=("connection",),
        label="Dispatch ship notice",
        after="build_asn",
    )
    builder.activity(
        "build_invoice",
        "build_invoice",
        params={"tax_rate": tax_rate},
        inputs={"application": "application", "po_number": "po_number"},
        outputs={"invoice": "document"},
        tags=("application",),
        label="Build invoice",
        after="dispatch_asn",
    )
    builder.activity(
        "dispatch_invoice",
        "send_to_binding",
        inputs={"document": "invoice", "conversation_id": "conversation_id"},
        tags=("connection",),
        label="Dispatch invoice",
        after="build_invoice",
    )
    builder.meta(private=True, doc_types=["ship_notice", "invoice"])
    return builder.build()


def buyer_goods_receipt_process(
    name: str = "private-goods-receipt",
    owner: str = "",
    match_function: str = INVOICE_MATCH_FUNCTION,
) -> WorkflowType:
    """The buyer's receiving side of order-to-cash.

    The arriving ship notice starts the instance; the invoice resumes it;
    the (external) invoice-match rule decides whether accounts-payable can
    post it straight through or a human must resolve a dispute.  Instance
    variables supplied at creation: ``document`` (the normalized ship
    notice), ``source``, ``conversation_id``.
    """
    builder = WorkflowBuilder(name, owner=owner)
    builder.variable("document").variable("source", "")
    builder.variable("conversation_id", "")
    builder.variable("invoice").variable("matched", False)
    builder.variable("resolved", False)

    builder.activity(
        "post_goods_receipt",
        "archive_document",
        inputs={"document": "document"},
        tags=("application",),
        label="Post goods receipt",
    )
    builder.activity(
        "await_invoice",
        "await_reply",
        inputs={"conversation_id": "conversation_id"},
        outputs={"invoice": "document"},
        tags=("connection",),
        label="Await invoice",
        after="post_goods_receipt",
    )
    builder.activity(
        "check_invoice_match",
        "evaluate_business_rule",
        params={"function": match_function},
        inputs={"source": "source", "document": "invoice"},
        outputs={"matched": "result"},
        tags=("business-rule",),
        label="Check invoice match",
        after="await_invoice",
    )
    builder.activity(
        "resolve_dispute",
        "request_approval",
        inputs={"document": "invoice"},
        params={"subject": "Invoice dispute", "role": "accounts-payable"},
        outputs={"resolved": "approved"},
        tags=("approval",),
        label="Resolve invoice dispute",
    )
    builder.activity(
        "post_invoice",
        "archive_document",
        inputs={"document": "invoice"},
        join="XOR",
        tags=("application",),
        label="Post invoice",
    )
    builder.link("check_invoice_match", "post_invoice", condition="matched == True")
    builder.link("check_invoice_match", "resolve_dispute", otherwise=True)
    builder.link("resolve_dispute", "post_invoice")
    builder.meta(private=True, doc_types=["ship_notice", "invoice"])
    return builder.build()


def buyer_sourcing_process(
    name: str = "private-sourcing",
    owner: str = "",
    scoring_function: str = QUOTE_SCORING_FUNCTION,
) -> WorkflowType:
    """The buyer's sourcing process: broadcast an RFQ, await quotes, pick.

    The Section 2.3 scenario made executable under the advanced
    architecture: the quote-selection rule is evaluated privately — no
    bidder can "structure future quotes in such a way that the sender's
    selection will select his quote", because the scoring logic never
    leaves the enterprise.  Instance variables supplied at creation:
    ``rfq_number``, ``buyer_id``, ``lines``, ``partners``, optional
    ``respond_by_delay``.
    """
    builder = WorkflowBuilder(name, owner=owner)
    builder.variable("rfq_number", "").variable("buyer_id", "")
    builder.variable("lines", []).variable("partners", [])
    builder.variable("respond_by_delay", None)
    builder.variable("rfq").variable("batch_id", "")
    builder.variable("quotes", []).variable("chosen_partner", "")
    builder.variable("chosen_quote")

    builder.activity(
        "build_rfq",
        "build_rfq",
        inputs={
            "rfq_number": "rfq_number",
            "buyer_id": "buyer_id",
            "lines": "lines",
            "respond_by": "respond_by_delay",
        },
        outputs={"rfq": "document"},
        label="Build RFQ",
    )
    builder.activity(
        "broadcast_rfq",
        "broadcast_document",
        inputs={
            "document": "rfq",
            "partners": "partners",
            "deadline": "respond_by_delay",
        },
        outputs={"batch_id": "batch_id"},
        tags=("connection",),
        label="Broadcast RFQ",
        after="build_rfq",
    )
    builder.activity(
        "await_quotes",
        "await_broadcast",
        inputs={"batch_id": "batch_id"},
        outputs={"quotes": "documents"},
        tags=("connection",),
        label="Await quotes",
        after="broadcast_rfq",
    )
    builder.activity(
        "select_quote",
        "select_best_quote",
        params={"function": scoring_function},
        inputs={"quotes": "quotes"},
        outputs={"chosen_partner": "partner_id", "chosen_quote": "document"},
        tags=("business-rule",),
        label="Select winning quote",
        after="await_quotes",
    )
    builder.activity(
        "file_quote",
        "archive_document",
        inputs={"document": "chosen_quote"},
        tags=("application",),
        label="File winning quote",
        after="select_quote",
    )
    builder.meta(private=True, doc_types=["request_for_quote", "quote"])
    return builder.build()


def seller_quotation_process(
    name: str = "private-quotation-seller",
    owner: str = "",
    pricing_function: str = PRICING_FUNCTION,
) -> WorkflowType:
    """The seller's side of the RFQ exchange: price it, quote it.

    Pricing is an external rule (a *body* rule over the seller's price
    catalog), so — mirroring the buyer's confidentiality — "the requester
    would see how receivers respond to quotes" is equally impossible.
    Instance variables supplied at creation: ``document`` (the RFQ),
    ``source``, ``conversation_id``.
    """
    builder = WorkflowBuilder(name, owner=owner)
    builder.variable("document").variable("source", "")
    builder.variable("conversation_id", "").variable("quote")

    builder.activity(
        "price_rfq",
        "build_quote",
        params={"function": pricing_function},
        inputs={"document": "document", "source": "source"},
        outputs={"quote": "document"},
        tags=("business-rule",),
        label="Price RFQ from the catalog",
    )
    builder.activity(
        "return_quote",
        "send_to_binding",
        inputs={"document": "quote", "conversation_id": "conversation_id"},
        tags=("connection",),
        label="Return quote to binding",
        after="price_rfq",
    )
    builder.meta(private=True, doc_types=["request_for_quote", "quote"])
    return builder.build()
