"""Public processes: organization-external message exchange (Section 4.1).

A :class:`PublicProcessDefinition` models one role's side of a B2B
protocol exchange — e.g. the *seller* side of a PIP-3A4-like PO round trip
is ``receive PO -> to binding -> from binding -> send POA`` (Figure 11).
Step kinds:

* ``receive`` — consume a wire message from the trading partner;
* ``send`` — emit a wire message to the trading partner;
* ``to_binding`` — pass the current message *and control* to the binding
  (the connection step that forks control, Section 4.1.1);
* ``from_binding`` — wait for a message/control back from the binding
  (the connection step that joins control);
* ``produce`` — synthesize a protocol-level document the private side does
  not supply (e.g. an explicit receipt acknowledgment a standard demands).

Definitions are strictly sequential — every exchange in the paper's
figures is — and the instance enforces the message sequencing contract of
Section 3: feeding a step out of order raises
:class:`~repro.errors.ProtocolError` instead of silently desynchronizing
the collaboration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ProtocolError

__all__ = [
    "PublicStep",
    "PublicProcessDefinition",
    "PublicProcessInstance",
    "buyer_request_reply",
    "seller_request_reply",
    "check_complementary",
]

KIND_RECEIVE = "receive"
KIND_SEND = "send"
KIND_TO_BINDING = "to_binding"
KIND_FROM_BINDING = "from_binding"
KIND_PRODUCE = "produce"

_KINDS = (KIND_RECEIVE, KIND_SEND, KIND_TO_BINDING, KIND_FROM_BINDING, KIND_PRODUCE)


@dataclass(frozen=True)
class PublicStep:
    """One step of a public process.

    :param doc_type: the business document kind the step carries (empty for
        pure control steps).
    :param params: protocol extras, e.g. ``{"timeout": 30.0}`` on a receive
        step or a producer name on a produce step.
    """

    step_id: str
    kind: str
    doc_type: str = ""
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.step_id:
            raise ProtocolError("public step needs a step_id")
        if self.kind not in _KINDS:
            raise ProtocolError(f"unknown public step kind {self.kind!r}")
        if self.kind in (KIND_RECEIVE, KIND_SEND) and not self.doc_type:
            raise ProtocolError(
                f"public step {self.step_id!r} ({self.kind}) needs a doc_type"
            )


class PublicProcessDefinition:
    """One role's external behaviour under one B2B protocol.

    :param name: unique definition name (e.g. ``"rosettanet/3a4/seller"``).
    :param protocol: the governing protocol name.
    :param role: ``buyer`` or ``seller``.
    :param wire_format: the document layout this process exchanges.
    :param steps: the sequential step list.
    """

    def __init__(
        self,
        name: str,
        protocol: str,
        role: str,
        wire_format: str,
        steps: list[PublicStep],
    ):
        if not steps:
            raise ProtocolError(f"public process {name!r} has no steps")
        if role not in ("buyer", "seller"):
            raise ProtocolError(f"public process {name!r}: bad role {role!r}")
        duplicate_ids = {step.step_id for step in steps}
        if len(duplicate_ids) != len(steps):
            raise ProtocolError(f"public process {name!r} has duplicate step ids")
        self.name = name
        self.protocol = protocol
        self.role = role
        self.wire_format = wire_format
        self.steps = list(steps)

    def step_count(self) -> int:
        """Number of steps (complexity metric)."""
        return len(self.steps)

    def connection_step_count(self) -> int:
        """Number of binding connection steps."""
        return sum(
            1 for step in self.steps if step.kind in (KIND_TO_BINDING, KIND_FROM_BINDING)
        )

    def initiating(self) -> bool:
        """True when this side opens the conversation (first step isn't a
        partner receive)."""
        return self.steps[0].kind != KIND_RECEIVE

    def to_dict(self) -> dict[str, Any]:
        """Stable description (change detection / persistence)."""
        return {
            "name": self.name,
            "protocol": self.protocol,
            "role": self.role,
            "wire_format": self.wire_format,
            "steps": [
                {
                    "step_id": step.step_id,
                    "kind": step.kind,
                    "doc_type": step.doc_type,
                    "params": dict(step.params),
                }
                for step in self.steps
            ],
        }

    def __repr__(self) -> str:
        return f"PublicProcessDefinition({self.name!r}, {len(self.steps)} steps)"


class PublicProcessInstance:
    """Runtime state of one public process within one conversation.

    The B2B engine drives it strictly in step order; :meth:`expect` is the
    sequencing guard, :meth:`complete_current` the only state advance.
    """

    def __init__(self, definition: PublicProcessDefinition, conversation_id: str, partner_id: str):
        self.definition = definition
        self.conversation_id = conversation_id
        self.partner_id = partner_id
        self.position = 0
        self.trace: list[str] = []

    @property
    def completed(self) -> bool:
        """True when every step has executed."""
        return self.position >= len(self.definition.steps)

    def current_step(self) -> PublicStep:
        """The step the process is waiting to execute."""
        if self.completed:
            raise ProtocolError(
                f"public process {self.definition.name!r} in conversation "
                f"{self.conversation_id} is already complete"
            )
        return self.definition.steps[self.position]

    def expect(self, kind: str, doc_type: str = "") -> PublicStep:
        """Assert the current step matches; the sequencing contract.

        This is where the paper's "message is sent but there is no
        corresponding receiving step" failure becomes a loud error.
        """
        step = self.current_step()
        if step.kind != kind or (doc_type and step.doc_type and step.doc_type != doc_type):
            raise ProtocolError(
                f"conversation {self.conversation_id}: public process "
                f"{self.definition.name!r} expected {step.kind}"
                f"{f'[{step.doc_type}]' if step.doc_type else ''} at position "
                f"{self.position}, got {kind}{f'[{doc_type}]' if doc_type else ''}"
            )
        return step

    def complete_current(self, note: str = "") -> PublicStep:
        """Mark the current step executed and advance."""
        step = self.current_step()
        self.trace.append(f"{step.step_id}:{step.kind}{f' {note}' if note else ''}")
        self.position += 1
        return step

    def __repr__(self) -> str:
        return (
            f"PublicProcessInstance({self.definition.name!r}, "
            f"conversation={self.conversation_id}, position={self.position})"
        )


def check_complementary(
    first: PublicProcessDefinition, second: PublicProcessDefinition
) -> list[str]:
    """Statically verify that two public processes can collaborate.

    Section 3: "the local workflows have to make sure that they implement
    the same message sequences so that the collaborative workflows never
    get into a situation where a message is sent but there is no
    corresponding receiving step or if a receiving step waits but there is
    no corresponding sending step."  With public processes this becomes a
    *deployable static check*: project each definition onto its wire
    behaviour (the sequence of sends and receives, ignoring connection
    steps) and require them to be mirror images.

    Returns the list of mismatches (empty = complementary).  ebXML-style
    negotiated collaborations run this check before a CPA is activated.
    """
    problems: list[str] = []
    if first.protocol != second.protocol:
        problems.append(
            f"protocol mismatch: {first.protocol!r} vs {second.protocol!r}"
        )
    if first.wire_format != second.wire_format:
        problems.append(
            f"wire format mismatch: {first.wire_format!r} vs {second.wire_format!r}"
        )
    if first.role == second.role:
        problems.append(f"both sides play the {first.role!r} role")

    first_wire = [
        (step.kind, step.doc_type)
        for step in first.steps
        if step.kind in (KIND_SEND, KIND_RECEIVE)
    ]
    second_wire = [
        (step.kind, step.doc_type)
        for step in second.steps
        if step.kind in (KIND_SEND, KIND_RECEIVE)
    ]
    if len(first_wire) != len(second_wire):
        problems.append(
            f"wire step counts differ: {first.name!r} has {len(first_wire)}, "
            f"{second.name!r} has {len(second_wire)}"
        )
        return problems
    mirror = {KIND_SEND: KIND_RECEIVE, KIND_RECEIVE: KIND_SEND}
    for position, ((kind_a, doc_a), (kind_b, doc_b)) in enumerate(
        zip(first_wire, second_wire)
    ):
        if kind_b != mirror[kind_a]:
            problems.append(
                f"position {position}: {first.name!r} {kind_a}s but "
                f"{second.name!r} does not {mirror[kind_a]}"
            )
        if doc_a != doc_b:
            problems.append(
                f"position {position}: document kinds differ "
                f"({doc_a!r} vs {doc_b!r})"
            )
    if first_wire and first_wire[0][0] == KIND_RECEIVE and second_wire[0][0] == KIND_RECEIVE:
        problems.append("deadlock: both sides start by receiving")
    return problems


# ---------------------------------------------------------------------------
# Template factories for request/reply exchanges (the paper's running example)
# ---------------------------------------------------------------------------


def buyer_request_reply(
    name: str,
    protocol: str,
    wire_format: str,
    request_doc: str = "purchase_order",
    reply_doc: str = "po_ack",
) -> PublicProcessDefinition:
    """The buyer side of a request/reply exchange (Figure 11, mirrored):
    from binding -> send request -> receive reply -> to binding."""
    return PublicProcessDefinition(
        name,
        protocol,
        "buyer",
        wire_format,
        [
            PublicStep("from_binding_request", KIND_FROM_BINDING, request_doc),
            PublicStep("send_request", KIND_SEND, request_doc),
            PublicStep("receive_reply", KIND_RECEIVE, reply_doc),
            PublicStep("to_binding_reply", KIND_TO_BINDING, reply_doc),
        ],
    )


def seller_request_reply(
    name: str,
    protocol: str,
    wire_format: str,
    request_doc: str = "purchase_order",
    reply_doc: str = "po_ack",
) -> PublicProcessDefinition:
    """The seller side of a request/reply exchange (Figure 11):
    receive request -> to binding -> from binding -> send reply."""
    return PublicProcessDefinition(
        name,
        protocol,
        "seller",
        wire_format,
        [
            PublicStep("receive_request", KIND_RECEIVE, request_doc),
            PublicStep("to_binding_request", KIND_TO_BINDING, request_doc),
            PublicStep("from_binding_reply", KIND_FROM_BINDING, reply_doc),
            PublicStep("send_reply", KIND_SEND, reply_doc),
        ],
    )
