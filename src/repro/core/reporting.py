"""Operational reporting: model inventory and runtime statistics.

The administration view a deployment team would actually look at: what is
deployed (the integration model, element by element) and what the runtime
has done (conversations, messages, rules fired, ERP traffic).  Everything
is returned both as structured rows and as rendered text, so examples and
operators share one code path.
"""

from __future__ import annotations

from typing import Any

from repro.core.enterprise import Enterprise
from repro.core.integration import IntegrationModel
from repro.core.metrics import measure_model

__all__ = ["model_inventory", "runtime_statistics", "render_report"]


def model_inventory(model: IntegrationModel) -> dict[str, Any]:
    """Summarize the deployed integration model.

    Returns a dict with the headline metrics plus per-kind listings —
    the human-readable face of :meth:`IntegrationModel.element_index`.
    """
    metrics = measure_model(model)
    return {
        "enterprise": model.name,
        "metrics": metrics.as_dict(),
        "protocols": sorted(model.protocols),
        "public_processes": [
            {
                "name": definition.name,
                "role": definition.role,
                "steps": definition.step_count(),
                "initiating": definition.initiating(),
            }
            for definition in sorted(
                model.public_processes.values(), key=lambda d: d.name
            )
        ],
        "bindings": [
            {
                "name": binding.name,
                "counterpart": binding.public_process or binding.application,
                "transform_steps": binding.transformation_step_count(),
            }
            for binding in sorted(model.bindings.values(), key=lambda b: b.name)
        ],
        "private_processes": [
            {
                "name": workflow.name,
                "version": workflow.version,
                "steps": workflow.step_count(),
                "rule_steps": len(workflow.steps_tagged("business-rule")),
            }
            for workflow in sorted(
                model.private_processes.values(), key=lambda w: w.name
            )
        ],
        "rule_sets": [
            {"function": rule_set.function, "rules": len(rule_set.rules)}
            for rule_set in model.rules.sets()
        ],
        "partners": [
            {
                "partner_id": partner.partner_id,
                "protocols": sorted(partner.protocols),
            }
            for partner in model.partners.partners()
        ],
        "applications": dict(model.applications),
    }


def runtime_statistics(enterprise: Enterprise) -> dict[str, Any]:
    """Snapshot what an enterprise's runtime has done so far."""
    conversations = list(enterprise.b2b.conversations.values())
    by_status: dict[str, int] = {}
    for conversation in conversations:
        by_status[conversation.status] = by_status.get(conversation.status, 0) + 1
    instances = enterprise.wfms.database.list_instances()
    instance_by_status: dict[str, int] = {}
    for instance in instances:
        instance_by_status[instance.status] = (
            instance_by_status.get(instance.status, 0) + 1
        )
    return {
        "enterprise": enterprise.name,
        "conversations": {"total": len(conversations), **by_status},
        "messages": {
            "business_sent": enterprise.b2b.messages_sent,
            "business_received": enterprise.b2b.messages_received,
            "reliable_retries": enterprise.reliable.stats.retries,
            "acks_sent": enterprise.reliable.stats.acks_sent,
            "duplicates_suppressed": enterprise.reliable.stats.duplicates_suppressed,
        },
        "faults": len(enterprise.b2b.faults),
        "journal_entries": len(enterprise.b2b.journal),
        "workflow_instances": {"total": len(instances), **instance_by_status},
        "steps_executed": enterprise.wfms.steps_executed,
        "rule_evaluations": {
            rule_set.function: rule_set.evaluations
            for rule_set in enterprise.rules.sets()
        },
        "transformations": enterprise.model.transforms.applications(),
        "work_items_completed": enterprise.worklist.completed_count(),
        "backends": {
            name: {
                "orders": backend.order_count(),
                "stored_docs": backend.stored_count,
                "extracted_docs": backend.extracted_count,
            }
            for name, backend in sorted(enterprise.backends.items())
        },
        "archive_documents": enterprise.archive.count(),
        # One place for runtime tallies: the shared kernel's metrics
        # observer (counts every lifecycle event across the community).
        "kernel": {
            "events_published": enterprise.runtime.bus.published,
            "run_queue_batches": enterprise.runtime.run_queue.batches,
            "tasks_executed": enterprise.runtime.run_queue.tasks_executed,
            "instance_durations": (
                enterprise.runtime.metrics.instance_durations.as_dict()
            ),
        },
    }


def render_report(enterprise: Enterprise) -> str:
    """Render the inventory + runtime snapshot as readable text."""
    inventory = model_inventory(enterprise.model)
    statistics = runtime_statistics(enterprise)
    lines: list[str] = []
    lines.append(f"=== {enterprise.name}: integration report ===")
    lines.append("")
    lines.append("deployed model:")
    metrics = inventory["metrics"]
    lines.append(
        f"  {metrics['total_elements']} authored elements | "
        f"{len(inventory['protocols'])} protocols | "
        f"{metrics['mappings']} mappings | "
        f"{metrics['business_rules']} business rules"
    )
    for definition in inventory["public_processes"]:
        marker = "initiates" if definition["initiating"] else "responds"
        lines.append(
            f"  public  {definition['name']:<34} {definition['steps']} steps, {marker}"
        )
    for binding in inventory["bindings"]:
        lines.append(
            f"  binding {binding['name']:<34} <-> {binding['counterpart']}"
        )
    for workflow in inventory["private_processes"]:
        lines.append(
            f"  private {workflow['name']:<34} v{workflow['version']}, "
            f"{workflow['steps']} steps, {workflow['rule_steps']} rule steps"
        )
    for rule_set in inventory["rule_sets"]:
        lines.append(
            f"  rules   {rule_set['function']:<34} {rule_set['rules']} rule(s)"
        )
    lines.append("")
    lines.append("runtime:")
    lines.append(f"  conversations : {statistics['conversations']}")
    lines.append(f"  messages      : {statistics['messages']}")
    lines.append(f"  instances     : {statistics['workflow_instances']}")
    lines.append(f"  rules fired   : {statistics['rule_evaluations']}")
    lines.append(f"  transformations applied: {statistics['transformations']}")
    lines.append(f"  faults recorded: {statistics['faults']}")
    for name, backend in statistics["backends"].items():
        lines.append(f"  back end {name:<8}: {backend}")
    kernel = statistics["kernel"]
    lines.append(
        f"  kernel        : {kernel['events_published']} events, "
        f"{kernel['run_queue_batches']} batches, "
        f"{kernel['tasks_executed']} tasks"
    )
    return "\n".join(lines)
