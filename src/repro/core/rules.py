"""Business rules, defined and evaluated outside workflow types (Section 4.3).

The paper's key move: the workflow step "check need for approval" passes
``(source, target, document)`` to an *externally defined* rule function and
branches on the returned result — so the workflow type itself never names a
trading partner or an amount, and partner changes never touch workflow
definitions.

A :class:`RuleSet` is one such function: an ordered list of
:class:`BusinessRule` guards, first match wins, and — exactly as in the
paper's listing — "if none of the business rules apply, error case":
:class:`~repro.errors.NoApplicableRuleError` is raised rather than a
default being guessed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.documents.model import Document
from repro.errors import NoApplicableRuleError, RuleError
from repro.workflow.expressions import Expression

__all__ = [
    "BusinessRule",
    "RuleSet",
    "RuleEngine",
    "approval_rule_set",
    "routing_rule_set",
    "invoice_match_rule_set",
]

ANY = "*"

RuleBody = Callable[[str, str, Document], Any]


@dataclass
class BusinessRule:
    """One guarded rule inside a rule set.

    :param name: rule id (unique within its set).
    :param source: trading partner / application the document comes from,
        or ``"*"`` for any.
    :param target: application / partner the document goes to, or ``"*"``.
    :param expression: result expression over ``source``, ``target`` and
        ``document`` (the paper writes ``document.amount >= 55000``).
        Mutually exclusive with ``body``.
    :param body: a Python callable ``(source, target, document) -> result``
        for logic beyond the expression language — the paper allows "an
        ordinary programming language like Java" when the rule language is
        not complete enough.
    """

    name: str
    source: str = ANY
    target: str = ANY
    expression: str = ""
    body: RuleBody | None = None
    _compiled: Expression | None = field(default=None, repr=False, compare=False)
    _program: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise RuleError("business rule needs a name")
        if bool(self.expression) == (self.body is not None):
            raise RuleError(
                f"rule {self.name!r}: exactly one of expression or body required"
            )
        if self.expression:
            self._compiled = Expression.shared(self.expression)
            # Rules are evaluated once per routed message; the closure tree
            # built by Expression.compile() is the hot evaluation path.
            self._program = self._compiled.compile()

    def applies(self, source: str, target: str) -> bool:
        """True when this rule covers the (source, target) pair."""
        return self.source in (ANY, source) and self.target in (ANY, target)

    def evaluate(self, source: str, target: str, document: Document) -> Any:
        """Evaluate the rule for a covered pair."""
        if self.body is not None:
            try:
                return self.body(source, target, document)
            except Exception as exc:
                raise RuleError(f"rule {self.name!r} body failed: {exc!r}") from exc
        assert self._program is not None
        return self._program(
            {"source": source, "target": target, "document": document}
        )

    def fingerprint(self) -> str:
        """Stable description for change detection."""
        body_name = getattr(self.body, "__name__", "") if self.body else ""
        return f"{self.name}|{self.source}|{self.target}|{self.expression}|{body_name}"


class RuleSet:
    """One external rule function (e.g. ``check_need_for_approval``)."""

    def __init__(self, function: str, rules: list[BusinessRule] | None = None):
        if not function:
            raise RuleError("rule set needs a function name")
        self.function = function
        self.rules: list[BusinessRule] = []
        for rule in rules or []:
            self.add(rule)
        self.evaluations = 0
        self.errors = 0

    def add(self, rule: BusinessRule) -> BusinessRule:
        """Append a rule (first-match-wins order is the list order)."""
        if any(existing.name == rule.name for existing in self.rules):
            raise RuleError(
                f"rule set {self.function!r} already has a rule {rule.name!r}"
            )
        self.rules.append(rule)
        return rule

    def remove(self, rule_name: str) -> None:
        """Remove a rule by name (partner off-boarding)."""
        before = len(self.rules)
        self.rules = [rule for rule in self.rules if rule.name != rule_name]
        if len(self.rules) == before:
            raise RuleError(
                f"rule set {self.function!r} has no rule {rule_name!r}"
            )

    def rules_for(self, source: str | None = None, target: str | None = None) -> list[BusinessRule]:
        """Rules mentioning the given source/target (maintenance queries)."""
        return [
            rule
            for rule in self.rules
            if (source is None or rule.source == source)
            and (target is None or rule.target == target)
        ]

    def evaluate(self, source: str, target: str, document: Document) -> Any:
        """Evaluate the first applicable rule.

        Raises :class:`NoApplicableRuleError` when nothing matches — the
        paper's explicit ``result := error`` branch.
        """
        self.evaluations += 1
        for rule in self.rules:
            if rule.applies(source, target):
                return rule.evaluate(source, target, document)
        self.errors += 1
        raise NoApplicableRuleError(self.function, source, target)


class RuleEngine:
    """All rule sets of one enterprise, keyed by function name."""

    def __init__(self):
        self._sets: dict[str, RuleSet] = {}

    def register(self, rule_set: RuleSet) -> RuleSet:
        """Register a rule set; duplicate functions are configuration bugs."""
        if rule_set.function in self._sets:
            raise RuleError(f"rule set {rule_set.function!r} already registered")
        self._sets[rule_set.function] = rule_set
        return rule_set

    def get(self, function: str) -> RuleSet:
        """Return the rule set implementing ``function``."""
        try:
            return self._sets[function]
        except KeyError:
            raise RuleError(f"no rule set named {function!r}") from None

    def has(self, function: str) -> bool:
        """True when ``function`` is registered."""
        return function in self._sets

    def evaluate(self, function: str, source: str, target: str, document: Document) -> Any:
        """Evaluate ``function`` for (source, target, document)."""
        return self.get(function).evaluate(source, target, document)

    def sets(self) -> list[RuleSet]:
        """All registered rule sets, sorted by function name."""
        return [self._sets[function] for function in sorted(self._sets)]

    def rule_count(self) -> int:
        """Total number of rules across all sets (complexity metric)."""
        return sum(len(rule_set.rules) for rule_set in self._sets.values())


# ---------------------------------------------------------------------------
# Factory for the paper's rule functions
# ---------------------------------------------------------------------------


def approval_rule_set(
    thresholds: Mapping[tuple[str, str], float],
    function: str = "check_need_for_approval",
) -> RuleSet:
    """Build the paper's ``check_need_for_approval`` rule set.

    ``thresholds`` maps ``(target, source)`` to the amount at which approval
    becomes necessary; the paper's Section 4.3 listing is exactly::

        approval_rule_set({
            ("SAP", "TP1"): 55000,
            ("SAP", "TP2"): 40000,
            ("Oracle", "TP1"): 55000,
            ("Oracle", "TP2"): 40000,
        })

    Result type is Boolean, and uncovered (source, target) pairs raise the
    error case, matching the listing's final branch.
    """
    rule_set = RuleSet(function)
    for index, ((target, source), amount) in enumerate(sorted(thresholds.items()), start=1):
        rule_set.add(
            BusinessRule(
                name=f"business rule {index}",
                source=source,
                target=target,
                expression=f"document.amount >= {amount}",
            )
        )
    return rule_set


def invoice_match_rule_set(
    expected_amount: Callable[[str], float | None],
    tolerance: float = 0.01,
    function: str = "check_invoice_match",
) -> RuleSet:
    """Build an invoice-match rule set (accounts-payable two-way match).

    ``expected_amount`` looks up what the enterprise believes it owes for a
    PO number (typically the accepted amount of the stored acknowledgment);
    the rule passes when the invoice's total due agrees within
    ``tolerance``.  Implemented as a *body* rule — the paper's provision
    for rules whose logic exceeds the expression language ("an ordinary
    programming language like Java must be used").
    """

    def match(source: str, target: str, invoice) -> bool:
        po_number = invoice.get("header.po_number", default="")
        expected = expected_amount(po_number)
        if expected is None:
            return False
        return abs(float(invoice.get("summary.total_due")) - expected) <= tolerance

    match.__name__ = "invoice_two_way_match"
    return RuleSet(function, [BusinessRule("invoice match", body=match)])


def routing_rule_set(
    targets: Mapping[str, str],
    default: str = "",
    function: str = "select_target_application",
) -> RuleSet:
    """Build a routing rule set choosing the back-end application.

    The naive Figure 9 workflow makes this decision with an inline
    ``Target`` step; in the advanced model it is just another external
    rule: ``targets`` maps source partner -> application name, with an
    optional catch-all ``default``.
    """
    rule_set = RuleSet(function)
    for index, (source, application) in enumerate(sorted(targets.items()), start=1):
        rule_set.add(
            BusinessRule(
                name=f"route {index}: {source} -> {application}",
                source=source,
                expression=f"'{application}'",
            )
        )
    if default:
        rule_set.add(
            BusinessRule(name=f"route default -> {default}", expression=f"'{default}'")
        )
    return rule_set
