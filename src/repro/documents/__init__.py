"""Document substrate: generic documents, schemas, and wire formats.

The paper's architecture distinguishes three kinds of document
representation (Sections 3.2 and 4.2):

* **wire formats** used between trading partners (EDI, RosettaNet XML,
  OAGIS XML),
* **back-end formats** required by applications (SAP IDoc-like, Oracle
  open-interface-table-like), and
* the **normalized format** that private processes exclusively operate on.

Every representation here is a :class:`~repro.documents.model.Document` with
a format-specific field layout; the format modules only translate between a
layout and its external string ("wire") form.  Mapping *between* layouts is
the transformation substrate's job (:mod:`repro.transform`), mirroring the
paper's strict separation of parsing from transformation.
"""

from repro.documents.model import Document, DocumentPath
from repro.documents.schema import DocumentSchema, FieldSpec
from repro.documents.normalized import (
    NORMALIZED,
    make_purchase_order,
    make_po_ack,
    normalized_po_schema,
    normalized_poa_schema,
    po_total_amount,
)

__all__ = [
    "Document",
    "DocumentPath",
    "DocumentSchema",
    "FieldSpec",
    "NORMALIZED",
    "make_purchase_order",
    "make_po_ack",
    "normalized_po_schema",
    "normalized_poa_schema",
    "po_total_amount",
]
