"""EDI X12-like wire format (the paper's ``EDI [19]``, www.x12.org).

A faithful *subset* of ANSI X12: segment strings terminated by ``~``,
elements separated by ``*``, with the standard envelope hierarchy

    ISA (interchange)  >  GS (functional group)  >  ST (transaction set)

around transaction sets ``850`` (purchase order) and ``855`` (purchase
order acknowledgment).  Segment vocabulary used:

====== ===========================================================
``850`` BEG (beginning), CUR (currency), ITD (terms), PO1 (line),
        PID (description), CTT (totals), AMT (amount)
``855`` BAK (beginning ack), ACK (line ack, one per PO1)
====== ===========================================================

The **EDI document layout** (what a :class:`~repro.documents.model.Document`
with ``format_name="edi-x12"`` contains) mirrors the segment structure —
field names are segment-qualified and deliberately unlike the normalized
layout, because translating between them is the transformation layer's job:

``purchase_order`` layout::

    isa: sender_id, receiver_id, control_number, date
    st:  transaction_set ("850"), control_number
    beg: purpose_code, type_code, po_number, date
    cur: currency
    itd: terms_description
    po1[]: line_no, quantity, unit, unit_price, sku, description
    ctt: line_count
    amt: total_amount

``po_ack`` layout::

    isa: sender_id, receiver_id, control_number, date
    st:  transaction_set ("855"), control_number
    bak: purpose_code, ack_type, po_number, date
    ack[]: line_status, quantity, unit, sku, line_no
    ctt: line_count
    amt: accepted_amount

``ship_notice`` layout (transaction set ``856``)::

    isa / st as above
    bsn: purpose_code, shipment_id, date
    prf: po_number
    td5: carrier
    td1: package_count
    lines[]: line_no, sku, quantity_shipped    (LIN + SN1 pairs)
    ctt: line_count

``invoice`` layout (transaction set ``810``)::

    isa / st as above
    big: date, invoice_number, po_number
    cur: currency
    it1[]: line_no, quantity, unit, unit_price, sku, amount
    tds: total_cents                            (X12 carries cents)
    amt_subtotal / amt_tax: subtotal, tax
    ctt: line_count
"""

from __future__ import annotations

from typing import Any

from repro.documents.model import Document
from repro.documents.schema import DocumentSchema, FieldSpec
from repro.errors import WireFormatError

__all__ = [
    "EDI_X12",
    "ACK_TYPE_BY_STATUS",
    "STATUS_BY_ACK_TYPE",
    "LINE_CODE_BY_STATUS",
    "STATUS_BY_LINE_CODE",
    "to_wire",
    "from_wire",
    "edi_po_schema",
    "edi_poa_schema",
]

EDI_X12 = "edi-x12"

SEGMENT_TERMINATOR = "~"
ELEMENT_SEPARATOR = "*"

# X12 BAK01/BAK02-style codes <-> normalized POA statuses.
ACK_TYPE_BY_STATUS = {"accepted": "AD", "rejected": "RD", "partial": "AC"}
STATUS_BY_ACK_TYPE = {code: status for status, code in ACK_TYPE_BY_STATUS.items()}

# X12 ACK01 line status codes <-> normalized line statuses.
LINE_CODE_BY_STATUS = {"accepted": "IA", "rejected": "IR", "backordered": "IB"}
STATUS_BY_LINE_CODE = {code: status for status, code in LINE_CODE_BY_STATUS.items()}


def _escape(value: Any) -> str:
    text = "" if value is None else str(value)
    if SEGMENT_TERMINATOR in text or ELEMENT_SEPARATOR in text:
        raise WireFormatError(
            f"EDI element value {text!r} contains a reserved delimiter"
        )
    return text


def _segment(tag: str, *elements: Any) -> str:
    rendered = [tag, *(_escape(element) for element in elements)]
    while len(rendered) > 1 and rendered[-1] == "":
        rendered.pop()
    return ELEMENT_SEPARATOR.join(rendered) + SEGMENT_TERMINATOR


def _number(text: str, context: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise WireFormatError(f"non-numeric value {text!r} in {context}") from None


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def to_wire(document: Document) -> str:
    """Render an ``edi-x12`` document to its X12 segment string."""
    if document.format_name != EDI_X12:
        raise WireFormatError(
            f"to_wire expects format {EDI_X12!r}, got {document.format_name!r}"
        )
    if document.doc_type == "purchase_order":
        body = _po_body_segments(document)
        set_id = "850"
    elif document.doc_type == "po_ack":
        body = _poa_body_segments(document)
        set_id = "855"
    elif document.doc_type == "ship_notice":
        body = _asn_body_segments(document)
        set_id = "856"
    elif document.doc_type == "invoice":
        body = _invoice_body_segments(document)
        set_id = "810"
    elif document.doc_type == "functional_ack":
        body = _997_body_segments(document)
        set_id = "997"
    else:
        raise WireFormatError(f"EDI cannot carry doc_type {document.doc_type!r}")
    return _wrap_envelope(document, set_id, body)


def _wrap_envelope(document: Document, set_id: str, body: list[str]) -> str:
    isa = document.get("isa")
    st_control = document.get("st.control_number")
    segments = [
        _segment(
            "ISA",
            "00", "", "00", "",
            "ZZ", isa["sender_id"],
            "ZZ", isa["receiver_id"],
            isa["date"], "0000", "U", "00401",
            isa["control_number"], "0", "P", ">",
        ),
        _segment(
            "GS",
            {"850": "PO", "855": "PR", "856": "SH", "810": "IN", "997": "FA"}[set_id],
            isa["sender_id"], isa["receiver_id"],
            isa["date"], "0000", isa["control_number"], "X", "004010",
        ),
        _segment("ST", set_id, st_control),
        *body,
        _segment("SE", len(body) + 2, st_control),
        _segment("GE", 1, isa["control_number"]),
        _segment("IEA", 1, isa["control_number"]),
    ]
    return "".join(segments)


def _po_body_segments(document: Document) -> list[str]:
    beg = document.get("beg")
    segments = [
        _segment("BEG", beg["purpose_code"], beg["type_code"], beg["po_number"], "", beg["date"]),
        _segment("CUR", "BY", document.get("cur.currency")),
    ]
    terms = document.get("itd.terms_description", default=None)
    if terms:
        segments.append(_segment("ITD", "", "", "", "", "", "", "", "", "", "", "", terms))
    for line in document.get("po1"):
        segments.append(
            _segment(
                "PO1",
                line["line_no"], line["quantity"], line.get("unit", "EA"),
                line["unit_price"], "", "VP", line["sku"],
            )
        )
        if line.get("description"):
            segments.append(_segment("PID", "F", "", "", "", line["description"]))
    segments.append(_segment("CTT", document.get("ctt.line_count")))
    segments.append(_segment("AMT", "TT", document.get("amt.total_amount")))
    return segments


def _poa_body_segments(document: Document) -> list[str]:
    bak = document.get("bak")
    segments = [
        _segment("BAK", bak["purpose_code"], bak["ack_type"], bak["po_number"], bak["date"]),
    ]
    for line in document.get("ack"):
        segments.append(
            _segment(
                "ACK",
                line["line_status"], line["quantity"], line.get("unit", "EA"),
                "", "", "VP", line["sku"], "", "", "", "", "", "", "", "",
                "", "", "", "", "", "", "", "", "", "", "", "", line["line_no"],
            )
        )
    segments.append(_segment("CTT", document.get("ctt.line_count")))
    segments.append(_segment("AMT", "AA", document.get("amt.accepted_amount")))
    return segments


def _asn_body_segments(document: Document) -> list[str]:
    bsn = document.get("bsn")
    segments = [
        _segment("BSN", bsn["purpose_code"], bsn["shipment_id"], bsn["date"]),
        _segment("PRF", document.get("prf.po_number")),
        _segment("TD5", "B", "2", document.get("td5.carrier")),
        _segment("TD1", "CTN", document.get("td1.package_count")),
    ]
    for line in document.get("lines"):
        segments.append(_segment("LIN", line["line_no"], "VP", line["sku"]))
        segments.append(_segment("SN1", line["line_no"], line["quantity_shipped"], "EA"))
    segments.append(_segment("CTT", document.get("ctt.line_count")))
    return segments


def _invoice_body_segments(document: Document) -> list[str]:
    big = document.get("big")
    segments = [
        _segment("BIG", big["date"], big["invoice_number"], "", big["po_number"]),
        _segment("CUR", "SE", document.get("cur.currency")),
    ]
    for line in document.get("it1"):
        segments.append(
            _segment(
                "IT1",
                line["line_no"], line["quantity"], line.get("unit", "EA"),
                line["unit_price"], "VP", line["sku"], "", line["amount"],
            )
        )
    segments.append(_segment("TDS", document.get("tds.total_cents")))
    segments.append(_segment("AMT", "1", document.get("amt_subtotal.subtotal")))
    segments.append(_segment("AMT", "T", document.get("amt_tax.tax")))
    segments.append(_segment("CTT", document.get("ctt.line_count")))
    return segments


def _997_body_segments(document: Document) -> list[str]:
    ak1 = document.get("ak1")
    ak9 = document.get("ak9")
    return [
        _segment("AK1", ak1["functional_code"], ak1["group_control_number"]),
        _segment("AK9", ak9["status_code"], 1, 1, 1),
    ]


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def from_wire(text: str) -> Document:
    """Parse an X12 segment string into an ``edi-x12`` document."""
    if not isinstance(text, str) or not text.strip():
        raise WireFormatError("empty EDI interchange")
    segments = [
        segment.split(ELEMENT_SEPARATOR)
        for segment in text.strip().split(SEGMENT_TERMINATOR)
        if segment.strip()
    ]
    table = _SegmentReader(segments)
    isa = table.require("ISA")
    if len(isa) < 14:
        raise WireFormatError("ISA segment too short")
    table.require("GS")
    st = table.require("ST")
    if len(st) < 3:
        raise WireFormatError("ST segment too short")
    envelope = {
        "isa": {
            "sender_id": isa[6].strip(),
            "receiver_id": isa[8].strip(),
            "date": isa[9],
            "control_number": isa[13],
        },
        "st": {"transaction_set": st[1], "control_number": st[2]},
    }
    if st[1] == "850":
        document = _parse_850(table, envelope)
    elif st[1] == "855":
        document = _parse_855(table, envelope)
    elif st[1] == "856":
        document = _parse_856(table, envelope)
    elif st[1] == "810":
        document = _parse_810(table, envelope)
    elif st[1] == "997":
        document = _parse_997(table, envelope)
    else:
        raise WireFormatError(f"unsupported transaction set {st[1]!r}")
    _check_trailer(table, st[2])
    return document


class _SegmentReader:
    """Sequential reader over parsed segments with lookahead by tag."""

    def __init__(self, segments: list[list[str]]):
        self.segments = segments
        self.pos = 0

    def peek_tag(self) -> str | None:
        if self.pos < len(self.segments):
            return self.segments[self.pos][0]
        return None

    def next(self) -> list[str]:
        if self.pos >= len(self.segments):
            raise WireFormatError("unexpected end of interchange")
        segment = self.segments[self.pos]
        self.pos += 1
        return segment

    def require(self, tag: str) -> list[str]:
        segment = self.next()
        if segment[0] != tag:
            raise WireFormatError(f"expected segment {tag}, found {segment[0]}")
        return segment

    def take_if(self, tag: str) -> list[str] | None:
        if self.peek_tag() == tag:
            return self.next()
        return None

    @staticmethod
    def element(segment: list[str], index: int, default: str = "") -> str:
        return segment[index] if index < len(segment) else default


def _parse_850(table: _SegmentReader, envelope: dict[str, Any]) -> Document:
    beg = table.require("BEG")
    if len(beg) < 4:
        raise WireFormatError("BEG segment too short")
    cur = table.take_if("CUR")
    itd = table.take_if("ITD")
    lines: list[dict[str, Any]] = []
    while table.peek_tag() == "PO1":
        po1 = table.next()
        if len(po1) < 8:
            raise WireFormatError("PO1 segment too short")
        line: dict[str, Any] = {
            "line_no": int(_number(po1[1], "PO1 line number")),
            "quantity": _number(po1[2], "PO1 quantity"),
            "unit": po1[3],
            "unit_price": _number(po1[4], "PO1 unit price"),
            "sku": po1[7],
            "description": "",
        }
        pid = table.take_if("PID")
        if pid is not None:
            line["description"] = _SegmentReader.element(pid, 5)
        lines.append(line)
    if not lines:
        raise WireFormatError("850 without PO1 line items")
    ctt = table.require("CTT")
    amt = table.require("AMT")
    data = {
        **envelope,
        "beg": {
            "purpose_code": beg[1],
            "type_code": beg[2],
            "po_number": beg[3],
            "date": _SegmentReader.element(beg, 5),
        },
        "cur": {"currency": _SegmentReader.element(cur or [], 2, "USD")},
        "itd": {"terms_description": _SegmentReader.element(itd or [], 12)},
        "po1": lines,
        "ctt": {"line_count": int(_number(ctt[1], "CTT count"))},
        "amt": {"total_amount": _number(_SegmentReader.element(amt, 2, "0"), "AMT total")},
    }
    return Document(EDI_X12, "purchase_order", data)


def _parse_855(table: _SegmentReader, envelope: dict[str, Any]) -> Document:
    bak = table.require("BAK")
    if len(bak) < 5:
        raise WireFormatError("BAK segment too short")
    lines: list[dict[str, Any]] = []
    while table.peek_tag() == "ACK":
        ack = table.next()
        if len(ack) < 8:
            raise WireFormatError("ACK segment too short")
        lines.append(
            {
                "line_status": ack[1],
                "quantity": _number(ack[2], "ACK quantity"),
                "unit": ack[3],
                "sku": ack[7],
                "line_no": int(_number(_SegmentReader.element(ack, 28, "0"), "ACK line number")),
            }
        )
    if not lines:
        raise WireFormatError("855 without ACK line items")
    ctt = table.require("CTT")
    amt = table.require("AMT")
    data = {
        **envelope,
        "bak": {
            "purpose_code": bak[1],
            "ack_type": bak[2],
            "po_number": bak[3],
            "date": bak[4],
        },
        "ack": lines,
        "ctt": {"line_count": int(_number(ctt[1], "CTT count"))},
        "amt": {"accepted_amount": _number(_SegmentReader.element(amt, 2, "0"), "AMT accepted")},
    }
    return Document(EDI_X12, "po_ack", data)


def _parse_856(table: _SegmentReader, envelope: dict[str, Any]) -> Document:
    bsn = table.require("BSN")
    if len(bsn) < 4:
        raise WireFormatError("BSN segment too short")
    prf = table.require("PRF")
    td5 = table.require("TD5")
    td1 = table.require("TD1")
    lines: list[dict[str, Any]] = []
    while table.peek_tag() == "LIN":
        lin = table.next()
        if len(lin) < 4:
            raise WireFormatError("LIN segment too short")
        sn1 = table.require("SN1")
        if len(sn1) < 4:
            raise WireFormatError("SN1 segment too short")
        lines.append(
            {
                "line_no": int(_number(lin[1], "LIN line number")),
                "sku": lin[3],
                "quantity_shipped": _number(sn1[2], "SN1 quantity"),
            }
        )
    if not lines:
        raise WireFormatError("856 without LIN/SN1 line items")
    ctt = table.require("CTT")
    data = {
        **envelope,
        "bsn": {"purpose_code": bsn[1], "shipment_id": bsn[2], "date": bsn[3]},
        "prf": {"po_number": prf[1]},
        "td5": {"carrier": _SegmentReader.element(td5, 3)},
        "td1": {"package_count": int(_number(_SegmentReader.element(td1, 2, "0"), "TD1 count"))},
        "lines": lines,
        "ctt": {"line_count": int(_number(ctt[1], "CTT count"))},
    }
    return Document(EDI_X12, "ship_notice", data)


def _parse_810(table: _SegmentReader, envelope: dict[str, Any]) -> Document:
    big = table.require("BIG")
    if len(big) < 5:
        raise WireFormatError("BIG segment too short")
    cur = table.require("CUR")
    lines: list[dict[str, Any]] = []
    while table.peek_tag() == "IT1":
        it1 = table.next()
        if len(it1) < 9:
            raise WireFormatError("IT1 segment too short")
        lines.append(
            {
                "line_no": int(_number(it1[1], "IT1 line number")),
                "quantity": _number(it1[2], "IT1 quantity"),
                "unit": it1[3],
                "unit_price": _number(it1[4], "IT1 unit price"),
                "sku": it1[6],
                "amount": _number(it1[8], "IT1 amount"),
            }
        )
    if not lines:
        raise WireFormatError("810 without IT1 line items")
    tds = table.require("TDS")
    amt_subtotal = table.require("AMT")
    amt_tax = table.require("AMT")
    ctt = table.require("CTT")
    data = {
        **envelope,
        "big": {"date": big[1], "invoice_number": big[2], "po_number": big[4]},
        "cur": {"currency": _SegmentReader.element(cur, 2, "USD")},
        "it1": lines,
        "tds": {"total_cents": int(_number(tds[1], "TDS total"))},
        "amt_subtotal": {"subtotal": _number(_SegmentReader.element(amt_subtotal, 2, "0"), "AMT subtotal")},
        "amt_tax": {"tax": _number(_SegmentReader.element(amt_tax, 2, "0"), "AMT tax")},
        "ctt": {"line_count": int(_number(ctt[1], "CTT count"))},
    }
    return Document(EDI_X12, "invoice", data)


def _parse_997(table: _SegmentReader, envelope: dict[str, Any]) -> Document:
    ak1 = table.require("AK1")
    if len(ak1) < 3:
        raise WireFormatError("AK1 segment too short")
    ak9 = table.require("AK9")
    if len(ak9) < 2:
        raise WireFormatError("AK9 segment too short")
    data = {
        **envelope,
        "ak1": {"functional_code": ak1[1], "group_control_number": ak1[2]},
        "ak9": {"status_code": ak9[1]},
    }
    return Document(EDI_X12, "functional_ack", data)


def make_functional_ack(received: Document, now: float) -> Document:
    """Build the 997 functional acknowledgment for a received interchange.

    References the original interchange's control number (AK1) and accepts
    it (AK9 status ``A``) — the classic EDI receipt discipline.
    """
    if received.doc_type == "functional_ack":
        raise WireFormatError("a 997 is never acknowledged with another 997")
    isa = received.get("isa")
    functional_codes = {
        "purchase_order": "PO", "po_ack": "PR",
        "ship_notice": "SH", "invoice": "IN",
    }
    data = {
        "isa": {
            "sender_id": isa["receiver_id"],
            "receiver_id": isa["sender_id"],
            "date": str(now),
            "control_number": f"FA{isa['control_number']}",
        },
        "st": {"transaction_set": "997", "control_number": "0001"},
        "ak1": {
            "functional_code": functional_codes.get(received.doc_type, "ZZ"),
            "group_control_number": isa["control_number"],
        },
        "ak9": {"status_code": "A"},
    }
    return Document(EDI_X12, "functional_ack", data)


def _check_trailer(table: _SegmentReader, st_control: str) -> None:
    se = table.require("SE")
    if _SegmentReader.element(se, 2) != st_control:
        raise WireFormatError("SE control number does not match ST")
    table.require("GE")
    table.require("IEA")
    if table.peek_tag() is not None:
        raise WireFormatError(f"trailing segment {table.peek_tag()!r} after IEA")


# ---------------------------------------------------------------------------
# Schemas for the EDI document layouts
# ---------------------------------------------------------------------------


def edi_po_schema() -> DocumentSchema:
    """Schema for the ``edi-x12`` purchase-order layout."""
    return DocumentSchema(
        "edi-x12/purchase_order",
        format_name=EDI_X12,
        doc_type="purchase_order",
        fields=[
            FieldSpec("isa.sender_id"),
            FieldSpec("isa.receiver_id"),
            FieldSpec("isa.control_number"),
            FieldSpec("st.transaction_set", choices=("850",)),
            FieldSpec("beg.po_number"),
            FieldSpec("cur.currency"),
            FieldSpec("po1", "list", min_items=1),
            FieldSpec("ctt.line_count", "int"),
            FieldSpec("amt.total_amount", "number"),
        ],
    )


def edi_asn_schema() -> DocumentSchema:
    """Schema for the ``edi-x12`` ship-notice (856) layout."""
    return DocumentSchema(
        "edi-x12/ship_notice",
        format_name=EDI_X12,
        doc_type="ship_notice",
        fields=[
            FieldSpec("isa.sender_id"),
            FieldSpec("isa.receiver_id"),
            FieldSpec("st.transaction_set", choices=("856",)),
            FieldSpec("bsn.shipment_id"),
            FieldSpec("prf.po_number"),
            FieldSpec("td5.carrier"),
            FieldSpec("td1.package_count", "int"),
            FieldSpec("lines", "list", min_items=1),
            FieldSpec("ctt.line_count", "int"),
        ],
    )


def edi_invoice_schema() -> DocumentSchema:
    """Schema for the ``edi-x12`` invoice (810) layout."""
    return DocumentSchema(
        "edi-x12/invoice",
        format_name=EDI_X12,
        doc_type="invoice",
        fields=[
            FieldSpec("isa.sender_id"),
            FieldSpec("isa.receiver_id"),
            FieldSpec("st.transaction_set", choices=("810",)),
            FieldSpec("big.invoice_number"),
            FieldSpec("big.po_number"),
            FieldSpec("cur.currency"),
            FieldSpec("it1", "list", min_items=1),
            FieldSpec("tds.total_cents", "int"),
            FieldSpec("amt_subtotal.subtotal", "number"),
            FieldSpec("amt_tax.tax", "number"),
            FieldSpec("ctt.line_count", "int"),
        ],
    )


def edi_poa_schema() -> DocumentSchema:
    """Schema for the ``edi-x12`` PO-acknowledgment layout."""
    return DocumentSchema(
        "edi-x12/po_ack",
        format_name=EDI_X12,
        doc_type="po_ack",
        fields=[
            FieldSpec("isa.sender_id"),
            FieldSpec("isa.receiver_id"),
            FieldSpec("st.transaction_set", choices=("855",)),
            FieldSpec("bak.po_number"),
            FieldSpec("bak.ack_type", choices=tuple(STATUS_BY_ACK_TYPE)),
            FieldSpec("ack", "list", min_items=1),
            FieldSpec("ctt.line_count", "int"),
            FieldSpec("amt.accepted_amount", "number"),
        ],
    )
