"""SAP IDoc-like back-end format (the paper's ``SAP [41]`` application).

The SAP ERP simulator (:mod:`repro.backend.sap_sim`) consumes and produces
documents in an IDoc-shaped fixed-width flat-file format: one segment per
line, segment name in the first column, then fields concatenated at fixed
offsets — the shape of real ``ORDERS05``/``ORDRSP`` IDocs, reduced to the
fields this reproduction needs.

Segments:

========== ==========================================================
EDI_DC40   control record: idoc number, basic type, message type, ports
E1EDK01    document header: action code, currency, document number
E1EDKA1    partner record: role (AG = sold-to, LF = vendor), partner id
E1EDP01    item: line number, quantity, price, material, description
E1EDS01    summary: total amount
========== ==========================================================

**IDoc document layout** (``format_name="sap-idoc"``):

``purchase_order`` layout::

    control:  idoc_number, idoc_type ("ORDERS05"), message_type ("ORDERS"),
              sender_port, receiver_port, created_at
    header:   action, curcy, belnr (document number), bsart (order type),
              zterm (payment terms)
    partners[]: parvw (role), partn (partner id)
    items[]:  posex, menge, vprei, matnr, arktx
    summary:  summe

``po_ack`` layout::

    control:  ... message_type ("ORDRSP")
    header:   action (ACC / REJ / PAR), curcy, belnr
    partners[]: parvw, partn
    items[]:  posex, menge, matnr, action (ACC / REJ / BCK)
    summary:  summe (accepted amount)
"""

from __future__ import annotations

from typing import Any

from repro.documents.model import Document
from repro.documents.schema import DocumentSchema, FieldSpec
from repro.errors import WireFormatError

__all__ = [
    "SAP_IDOC",
    "ACTION_BY_STATUS",
    "STATUS_BY_ACTION",
    "ITEM_ACTION_BY_STATUS",
    "STATUS_BY_ITEM_ACTION",
    "to_wire",
    "from_wire",
    "idoc_po_schema",
    "idoc_poa_schema",
]

SAP_IDOC = "sap-idoc"

ACTION_BY_STATUS = {"accepted": "ACC", "rejected": "REJ", "partial": "PAR"}
STATUS_BY_ACTION = {code: status for status, code in ACTION_BY_STATUS.items()}

ITEM_ACTION_BY_STATUS = {"accepted": "ACC", "rejected": "REJ", "backordered": "BCK"}
STATUS_BY_ITEM_ACTION = {code: status for status, code in ITEM_ACTION_BY_STATUS.items()}

_SEGMENT_NAME_WIDTH = 10

# Field tables: (field name, width).  Order matters — it is the wire order.
_FIELDS: dict[str, list[tuple[str, int]]] = {
    "EDI_DC40": [
        ("idoc_number", 24),
        ("idoc_type", 12),
        ("message_type", 8),
        ("sender_port", 12),
        ("receiver_port", 12),
        ("created_at", 16),
    ],
    "E1EDK01": [
        ("action", 3),
        ("curcy", 3),
        ("belnr", 35),
        ("bsart", 4),
        ("zterm", 10),
    ],
    "E1EDKA1": [
        ("parvw", 3),
        ("partn", 17),
    ],
    "E1EDP01": [
        ("posex", 6),
        ("menge", 15),
        ("vprei", 15),
        ("matnr", 35),
        ("arktx", 40),
    ],
    "E1EDS01": [
        ("sumid", 3),
        ("summe", 18),
    ],
    # ORDRSP item carries a per-line action code instead of a price.
    "E1EDP01A": [
        ("posex", 6),
        ("menge", 15),
        ("matnr", 35),
        ("action", 3),
    ],
}

_NUMERIC_FIELDS = {"menge", "vprei", "summe", "created_at"}
_INT_FIELDS = {"posex"}


def _render_segment(name: str, values: dict[str, Any]) -> str:
    pieces = [name.ljust(_SEGMENT_NAME_WIDTH)]
    for field_name, width in _FIELDS[name]:
        text = "" if values.get(field_name) is None else str(values[field_name])
        if len(text) > width:
            raise WireFormatError(
                f"IDoc field {name}.{field_name} value {text!r} exceeds width {width}"
            )
        pieces.append(text.ljust(width))
    return "".join(pieces)


def _parse_segment(line: str) -> tuple[str, dict[str, Any]]:
    name = line[:_SEGMENT_NAME_WIDTH].strip()
    if name not in _FIELDS:
        raise WireFormatError(f"unknown IDoc segment {name!r}")
    values: dict[str, Any] = {}
    offset = _SEGMENT_NAME_WIDTH
    for field_name, width in _FIELDS[name]:
        raw = line[offset:offset + width].strip()
        offset += width
        if field_name in _NUMERIC_FIELDS:
            values[field_name] = _number(raw, f"{name}.{field_name}")
        elif field_name in _INT_FIELDS:
            values[field_name] = int(_number(raw, f"{name}.{field_name}"))
        else:
            values[field_name] = raw
    return name, values


def _number(text: str, context: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise WireFormatError(f"non-numeric value {text!r} in {context}") from None


def to_wire(document: Document) -> str:
    """Render a ``sap-idoc`` document to its flat-file string."""
    if document.format_name != SAP_IDOC:
        raise WireFormatError(
            f"to_wire expects format {SAP_IDOC!r}, got {document.format_name!r}"
        )
    if document.doc_type == "purchase_order":
        item_segment = "E1EDP01"
    elif document.doc_type == "po_ack":
        item_segment = "E1EDP01A"
    else:
        raise WireFormatError(f"IDoc cannot carry doc_type {document.doc_type!r}")
    lines = [_render_segment("EDI_DC40", document.get("control"))]
    lines.append(_render_segment("E1EDK01", document.get("header")))
    for partner in document.get("partners"):
        lines.append(_render_segment("E1EDKA1", partner))
    for item in document.get("items"):
        lines.append(_render_segment(item_segment, item))
    summary = dict(document.get("summary"))
    summary.setdefault("sumid", "002")
    lines.append(_render_segment("E1EDS01", summary))
    return "\n".join(lines) + "\n"


def from_wire(text: str) -> Document:
    """Parse an IDoc flat-file string into a ``sap-idoc`` document."""
    if not isinstance(text, str) or not text.strip():
        raise WireFormatError("empty IDoc")
    control: dict[str, Any] | None = None
    header: dict[str, Any] | None = None
    partners: list[dict[str, Any]] = []
    items: list[dict[str, Any]] = []
    summary: dict[str, Any] | None = None
    for line in text.splitlines():
        if not line.strip():
            continue
        name, values = _parse_segment(line)
        if name == "EDI_DC40":
            if control is not None:
                raise WireFormatError("duplicate EDI_DC40 control record")
            control = values
        elif name == "E1EDK01":
            header = values
        elif name == "E1EDKA1":
            partners.append(values)
        elif name in ("E1EDP01", "E1EDP01A"):
            items.append(values)
        elif name == "E1EDS01":
            summary = {"summe": values["summe"]}
    if control is None:
        raise WireFormatError("IDoc without EDI_DC40 control record")
    if header is None or summary is None or not items:
        raise WireFormatError("IDoc missing header, items, or summary")
    message_type = control["message_type"]
    if message_type == "ORDERS":
        doc_type = "purchase_order"
    elif message_type == "ORDRSP":
        doc_type = "po_ack"
    else:
        raise WireFormatError(f"unknown IDoc message type {message_type!r}")
    data = {
        "control": control,
        "header": header,
        "partners": partners,
        "items": items,
        "summary": summary,
    }
    return Document(SAP_IDOC, doc_type, data)


def idoc_po_schema() -> DocumentSchema:
    """Schema for the ``sap-idoc`` purchase-order layout."""
    return DocumentSchema(
        "sap-idoc/purchase_order",
        format_name=SAP_IDOC,
        doc_type="purchase_order",
        fields=[
            FieldSpec("control.idoc_number"),
            FieldSpec("control.idoc_type", choices=("ORDERS05",)),
            FieldSpec("control.message_type", choices=("ORDERS",)),
            FieldSpec("header.belnr"),
            FieldSpec("header.curcy"),
            FieldSpec("partners", "list", min_items=2),
            FieldSpec("items", "list", min_items=1),
            FieldSpec("summary.summe", "number"),
        ],
    )


def idoc_poa_schema() -> DocumentSchema:
    """Schema for the ``sap-idoc`` PO-acknowledgment layout."""
    return DocumentSchema(
        "sap-idoc/po_ack",
        format_name=SAP_IDOC,
        doc_type="po_ack",
        fields=[
            FieldSpec("control.message_type", choices=("ORDRSP",)),
            FieldSpec("header.belnr"),
            FieldSpec("header.action", choices=tuple(STATUS_BY_ACTION)),
            FieldSpec("items", "list", min_items=1),
            FieldSpec("summary.summe", "number"),
        ],
    )
