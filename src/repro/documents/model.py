"""Generic business-document model.

A :class:`Document` is a typed, format-tagged tree of dicts, lists and
scalars with dotted-path access.  Both business rules ("``PO.amount >
10000``", Figure 1) and declarative transformations (Section 4.2) address
document content through these paths, so path semantics live here, in one
place.

Path syntax::

    header.po_number          nested dict fields
    lines[0].sku              list indexing
    lines[+]                  append position (set only)
    lines[-1].quantity        negative indexes (get only)

Paths are compiled by :class:`DocumentPath` and may be reused across
documents; ``Document.get``/``set`` accept either a string or a compiled
path.
"""

from __future__ import annotations

import copy as _copy
import hashlib
import json
import re
from typing import Any, Iterator

from repro.errors import DocumentError, DocumentPathError

__all__ = ["Document", "DocumentPath", "APPEND"]


class _Append:
    """Sentinel index meaning 'append to the list' in a set operation."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "APPEND"


APPEND = _Append()

_SEGMENT_RE = re.compile(
    r"""
    (?P<name>[A-Za-z_][A-Za-z0-9_\-]*)     # field name
    (?P<indexes>(\[(-?\d+|\+)\])*)          # zero or more [i] / [+]
    $
    """,
    re.VERBOSE,
)
_INDEX_RE = re.compile(r"\[(-?\d+|\+)\]")


class DocumentPath:
    """A compiled document path.

    Internally a tuple of steps where each step is a field name (``str``),
    a list index (``int``) or the :data:`APPEND` sentinel.
    """

    __slots__ = ("text", "steps")

    def __init__(self, text: str):
        if not isinstance(text, str) or not text.strip():
            raise DocumentPathError(f"empty or non-string path: {text!r}")
        self.text = text
        self.steps: tuple[Any, ...] = self._compile(text)

    @staticmethod
    def _compile(text: str) -> tuple[Any, ...]:
        steps: list[Any] = []
        for raw_segment in text.split("."):
            match = _SEGMENT_RE.match(raw_segment.strip())
            if match is None:
                raise DocumentPathError(
                    f"invalid path segment {raw_segment!r} in {text!r}"
                )
            steps.append(match.group("name"))
            for index_text in _INDEX_RE.findall(match.group("indexes")):
                if index_text == "+":
                    steps.append(APPEND)
                else:
                    steps.append(int(index_text))
        return tuple(steps)

    def __repr__(self) -> str:
        return f"DocumentPath({self.text!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DocumentPath) and self.steps == other.steps

    def __hash__(self) -> int:
        return hash(self.steps)


def _as_path(path: str | DocumentPath) -> DocumentPath:
    return path if isinstance(path, DocumentPath) else DocumentPath(path)


class Document:
    """A format-tagged tree of business data.

    :param format_name: the layout this document uses, e.g. ``"normalized"``,
        ``"edi-x12"``, ``"sap-idoc"``.  Transformations are registered
        between format names.
    :param doc_type: the business document kind, e.g. ``"purchase_order"``.
    :param data: the root mapping; deep-copied defensively on request only
        (documents are passed by reference inside one enterprise, copied at
        trust boundaries by the messaging layer).
    """

    __slots__ = ("format_name", "doc_type", "data")

    def __init__(
        self,
        format_name: str,
        doc_type: str,
        data: dict[str, Any] | None = None,
    ):
        if not format_name:
            raise DocumentError("format_name must be non-empty")
        if not doc_type:
            raise DocumentError("doc_type must be non-empty")
        if data is not None and not isinstance(data, dict):
            raise DocumentError(
                f"document root must be a dict, got {type(data).__name__}"
            )
        self.format_name = format_name
        self.doc_type = doc_type
        self.data: dict[str, Any] = data if data is not None else {}

    # -- path access --------------------------------------------------------

    def get(self, path: str | DocumentPath, default: Any = ...) -> Any:
        """Return the value at ``path``.

        Raises :class:`DocumentPathError` when the path does not resolve,
        unless ``default`` is given, in which case it is returned instead.
        """
        compiled = _as_path(path)
        node: Any = self.data
        for step in compiled.steps:
            try:
                node = self._descend(node, step)
            except DocumentPathError:
                if default is not ...:
                    return default
                raise DocumentPathError(
                    f"path {compiled.text!r} does not resolve in "
                    f"{self.doc_type!r} document (failed at {step!r})"
                ) from None
        return node

    @staticmethod
    def _descend(node: Any, step: Any) -> Any:
        if step is APPEND:
            raise DocumentPathError("[+] is only valid when setting")
        if isinstance(step, str):
            if isinstance(node, dict) and step in node:
                return node[step]
            raise DocumentPathError(f"no field {step!r}")
        # integer index
        if isinstance(node, list):
            try:
                return node[step]
            except IndexError:
                raise DocumentPathError(f"index {step} out of range") from None
        raise DocumentPathError(f"cannot index {type(node).__name__} with {step}")

    def has(self, path: str | DocumentPath) -> bool:
        """Return True when ``path`` resolves in this document."""
        marker = object()
        return self.get(path, default=marker) is not marker

    def set(self, path: str | DocumentPath, value: Any) -> None:
        """Set ``value`` at ``path``, creating intermediate containers.

        A string step creates a dict level; a ``[+]`` or integer step
        creates/extends a list level.  Setting index ``n`` on a list shorter
        than ``n`` raises (holes are never silently created).
        """
        compiled = _as_path(path)
        node: Any = self.data
        steps = compiled.steps
        for position, step in enumerate(steps[:-1]):
            next_step = steps[position + 1]
            node = self._descend_or_create(node, step, next_step, compiled)
        self._assign(node, steps[-1], value, compiled)

    def _descend_or_create(
        self, node: Any, step: Any, next_step: Any, compiled: DocumentPath
    ) -> Any:
        container_factory = list if next_step is APPEND or isinstance(next_step, int) else dict
        if isinstance(step, str):
            if not isinstance(node, dict):
                raise DocumentPathError(
                    f"{compiled.text!r}: expected dict at {step!r}, "
                    f"found {type(node).__name__}"
                )
            if step not in node:
                node[step] = container_factory()
            return node[step]
        if step is APPEND:
            if not isinstance(node, list):
                raise DocumentPathError(
                    f"{compiled.text!r}: [+] applied to {type(node).__name__}"
                )
            node.append(container_factory())
            return node[-1]
        # integer index
        if not isinstance(node, list):
            raise DocumentPathError(
                f"{compiled.text!r}: index {step} applied to "
                f"{type(node).__name__}"
            )
        if step == len(node):
            node.append(container_factory())
        if not -len(node) <= step < len(node):
            raise DocumentPathError(
                f"{compiled.text!r}: index {step} out of range "
                f"(length {len(node)})"
            )
        return node[step]

    @staticmethod
    def _assign(node: Any, step: Any, value: Any, compiled: DocumentPath) -> None:
        if isinstance(step, str):
            if not isinstance(node, dict):
                raise DocumentPathError(
                    f"{compiled.text!r}: cannot set field {step!r} on "
                    f"{type(node).__name__}"
                )
            node[step] = value
        elif step is APPEND:
            if not isinstance(node, list):
                raise DocumentPathError(
                    f"{compiled.text!r}: [+] applied to {type(node).__name__}"
                )
            node.append(value)
        else:
            if not isinstance(node, list):
                raise DocumentPathError(
                    f"{compiled.text!r}: index {step} applied to "
                    f"{type(node).__name__}"
                )
            if step == len(node):
                node.append(value)
            elif -len(node) <= step < len(node):
                node[step] = value
            else:
                raise DocumentPathError(
                    f"{compiled.text!r}: index {step} out of range "
                    f"(length {len(node)})"
                )

    def delete(self, path: str | DocumentPath) -> None:
        """Remove the value at ``path``; raises if it does not resolve."""
        compiled = _as_path(path)
        if not compiled.steps:
            raise DocumentPathError("cannot delete document root")
        parent: Any = self.data
        for step in compiled.steps[:-1]:
            parent = self._descend(parent, step)
        last = compiled.steps[-1]
        try:
            if isinstance(last, str):
                del parent[last]
            elif isinstance(last, int):
                parent.pop(last)
            else:
                raise DocumentPathError("[+] is only valid when setting")
        except (KeyError, IndexError, TypeError):
            raise DocumentPathError(
                f"path {compiled.text!r} does not resolve for delete"
            ) from None

    # -- traversal ----------------------------------------------------------

    def iter_leaves(self) -> Iterator[tuple[str, Any]]:
        """Yield ``(path_text, scalar_value)`` for every leaf, sorted by path.

        Dicts are walked in key order so the iteration (and anything built on
        it, such as content digests) is deterministic.
        """
        yield from _walk_leaves("", self.data)

    def leaf_count(self) -> int:
        """Return the number of scalar leaves (a size measure for metrics)."""
        return sum(1 for _ in self.iter_leaves())

    def content_digest(self) -> str:
        """Stable content hash over ``(format, doc_type, data)``.

        Two documents share a digest exactly when they compare equal:
        the payload is canonical JSON (sorted keys, tight separators),
        so dict insertion order never leaks into the hash.  Non-JSON
        scalars fall back to their ``repr``.  This is the document half
        of the transformation-cache key.
        """
        payload = json.dumps(
            (self.format_name, self.doc_type, self.data),
            sort_keys=True,
            separators=(",", ":"),
            default=repr,
        )
        return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()

    # -- lifecycle ----------------------------------------------------------

    def copy(self) -> "Document":
        """Return a deep copy (used at trust boundaries)."""
        return Document(self.format_name, self.doc_type, _copy.deepcopy(self.data))

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-compatible envelope for persistence."""
        return {
            "format": self.format_name,
            "doc_type": self.doc_type,
            "data": _copy.deepcopy(self.data),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Document":
        """Rebuild a document persisted with :meth:`to_dict`."""
        try:
            return cls(payload["format"], payload["doc_type"], payload["data"])
        except KeyError as exc:
            raise DocumentError(f"malformed document payload: missing {exc}") from None

    # -- comparison ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Document)
            and self.format_name == other.format_name
            and self.doc_type == other.doc_type
            and self.data == other.data
        )

    def __repr__(self) -> str:
        return (
            f"Document(format={self.format_name!r}, doc_type={self.doc_type!r}, "
            f"leaves={self.leaf_count()})"
        )


def _walk_leaves(prefix: str, node: Any) -> Iterator[tuple[str, Any]]:
    if isinstance(node, dict):
        for key in sorted(node):
            child_prefix = f"{prefix}.{key}" if prefix else key
            yield from _walk_leaves(child_prefix, node[key])
    elif isinstance(node, list):
        for index, item in enumerate(node):
            yield from _walk_leaves(f"{prefix}[{index}]", item)
    else:
        yield prefix, node
