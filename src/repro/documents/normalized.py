"""The normalized document format private processes operate on.

Section 4.2 of the paper: "the normalized format has the benefit that the
private process does not have to be aware of all the different formats as
required by public processes (as well as back end applications)".  Every
binding transforms wire/back-end layouts to and from this one layout, so its
definition is the single most load-bearing contract in the system.

Layout for a purchase order (``doc_type="purchase_order"``)::

    header:   document_id, po_number, issued_at, buyer_id, seller_id,
              currency, payment_terms?
    lines[]:  line_no, sku, description, quantity, unit_price
    summary:  total_amount, line_count

Layout for a purchase order acknowledgment (``doc_type="po_ack"``)::

    header:   document_id, po_number, issued_at, buyer_id, seller_id, status
    lines[]:  line_no, sku, status, quantity
    summary:  accepted_amount

Invoice and ship-notice layouts are provided for the multi-document
extension scenarios (the paper's introduction motivates invoices and
shipment notices alongside POs).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.documents.model import Document
from repro.documents.schema import DocumentSchema, FieldSpec
from repro.errors import DocumentError

__all__ = [
    "NORMALIZED",
    "DOC_PURCHASE_ORDER",
    "DOC_PO_ACK",
    "DOC_INVOICE",
    "DOC_SHIP_NOTICE",
    "DOC_RFQ",
    "DOC_QUOTE",
    "POA_STATUSES",
    "LINE_ACK_STATUSES",
    "make_purchase_order",
    "make_po_ack",
    "make_invoice",
    "make_ship_notice",
    "make_rfq",
    "make_quote",
    "po_total_amount",
    "normalized_po_schema",
    "normalized_poa_schema",
    "normalized_invoice_schema",
    "normalized_ship_notice_schema",
    "normalized_rfq_schema",
    "normalized_quote_schema",
    "schema_for",
]

NORMALIZED = "normalized"

DOC_PURCHASE_ORDER = "purchase_order"
DOC_PO_ACK = "po_ack"
DOC_INVOICE = "invoice"
DOC_SHIP_NOTICE = "ship_notice"
DOC_RFQ = "request_for_quote"
DOC_QUOTE = "quote"

POA_STATUSES = ("accepted", "rejected", "partial")
LINE_ACK_STATUSES = ("accepted", "rejected", "backordered")


def _round_money(value: float) -> float:
    return round(float(value), 2)


def _build_lines(lines: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    built: list[dict[str, Any]] = []
    for position, line in enumerate(lines, start=1):
        try:
            built.append(
                {
                    "line_no": int(line.get("line_no", position)),
                    "sku": str(line["sku"]),
                    "description": str(line.get("description", "")),
                    "quantity": float(line["quantity"]),
                    "unit_price": _round_money(line["unit_price"]),
                }
            )
        except KeyError as exc:
            raise DocumentError(f"purchase-order line {position} missing {exc}") from None
    return built


def make_purchase_order(
    po_number: str,
    buyer_id: str,
    seller_id: str,
    lines: Sequence[dict[str, Any]],
    currency: str = "USD",
    issued_at: float = 0.0,
    document_id: str | None = None,
    payment_terms: str = "NET30",
) -> Document:
    """Build a normalized purchase order.

    ``lines`` items need ``sku``, ``quantity`` and ``unit_price``;
    ``line_no`` and ``description`` default.  The ``summary`` block (total
    amount, line count) is computed — business rules address it as
    ``document.summary.total_amount`` (the paper's ``PO.amount``).
    """
    if not lines:
        raise DocumentError("a purchase order needs at least one line")
    built_lines = _build_lines(lines)
    total = _round_money(
        sum(line["quantity"] * line["unit_price"] for line in built_lines)
    )
    data = {
        "header": {
            "document_id": document_id or f"PO-DOC-{po_number}",
            "po_number": str(po_number),
            "issued_at": float(issued_at),
            "buyer_id": str(buyer_id),
            "seller_id": str(seller_id),
            "currency": str(currency),
            "payment_terms": str(payment_terms),
        },
        "lines": built_lines,
        "summary": {"total_amount": total, "line_count": len(built_lines)},
    }
    return Document(NORMALIZED, DOC_PURCHASE_ORDER, data)


def make_po_ack(
    purchase_order: Document,
    status: str = "accepted",
    line_statuses: dict[int, str] | None = None,
    issued_at: float = 0.0,
    document_id: str | None = None,
) -> Document:
    """Build a normalized PO acknowledgment answering ``purchase_order``.

    ``line_statuses`` maps line numbers to per-line statuses; unlisted lines
    inherit the header status (``rejected`` lines acknowledge quantity 0).
    """
    if purchase_order.doc_type != DOC_PURCHASE_ORDER:
        raise DocumentError(
            f"can only acknowledge a purchase order, got {purchase_order.doc_type!r}"
        )
    if status not in POA_STATUSES:
        raise DocumentError(f"invalid POA status {status!r}")
    line_statuses = line_statuses or {}
    po_number = purchase_order.get("header.po_number")
    ack_lines: list[dict[str, Any]] = []
    accepted_amount = 0.0
    for line in purchase_order.get("lines"):
        line_status = line_statuses.get(line["line_no"], _default_line_status(status))
        if line_status not in LINE_ACK_STATUSES:
            raise DocumentError(f"invalid line ack status {line_status!r}")
        quantity = 0.0 if line_status == "rejected" else float(line["quantity"])
        if line_status == "accepted":
            accepted_amount += quantity * line["unit_price"]
        ack_lines.append(
            {
                "line_no": line["line_no"],
                "sku": line["sku"],
                "status": line_status,
                "quantity": quantity,
            }
        )
    data = {
        "header": {
            "document_id": document_id or f"POA-DOC-{po_number}",
            "po_number": po_number,
            "issued_at": float(issued_at),
            # A POA travels seller -> buyer, so sender roles flip.
            "buyer_id": purchase_order.get("header.buyer_id"),
            "seller_id": purchase_order.get("header.seller_id"),
            "status": status,
        },
        "lines": ack_lines,
        "summary": {"accepted_amount": _round_money(accepted_amount)},
    }
    return Document(NORMALIZED, DOC_PO_ACK, data)


def _default_line_status(header_status: str) -> str:
    return "accepted" if header_status in ("accepted", "partial") else "rejected"


def make_invoice(
    purchase_order: Document,
    invoice_number: str,
    issued_at: float = 0.0,
    tax_rate: float = 0.0,
) -> Document:
    """Build a normalized invoice for an accepted purchase order."""
    subtotal = float(purchase_order.get("summary.total_amount"))
    tax = _round_money(subtotal * tax_rate)
    data = {
        "header": {
            "document_id": f"INV-DOC-{invoice_number}",
            "invoice_number": str(invoice_number),
            "po_number": purchase_order.get("header.po_number"),
            "issued_at": float(issued_at),
            "buyer_id": purchase_order.get("header.buyer_id"),
            "seller_id": purchase_order.get("header.seller_id"),
            "currency": purchase_order.get("header.currency"),
        },
        "lines": [
            {
                "line_no": line["line_no"],
                "sku": line["sku"],
                "quantity": line["quantity"],
                "unit_price": line["unit_price"],
                "amount": _round_money(line["quantity"] * line["unit_price"]),
            }
            for line in purchase_order.get("lines")
        ],
        "summary": {
            "subtotal": _round_money(subtotal),
            "tax": tax,
            "total_due": _round_money(subtotal + tax),
        },
    }
    return Document(NORMALIZED, DOC_INVOICE, data)


def make_ship_notice(
    purchase_order: Document,
    shipment_id: str,
    carrier: str = "SIMFREIGHT",
    issued_at: float = 0.0,
) -> Document:
    """Build a normalized advance ship notice for a purchase order."""
    data = {
        "header": {
            "document_id": f"ASN-DOC-{shipment_id}",
            "shipment_id": str(shipment_id),
            "po_number": purchase_order.get("header.po_number"),
            "issued_at": float(issued_at),
            "buyer_id": purchase_order.get("header.buyer_id"),
            "seller_id": purchase_order.get("header.seller_id"),
            "carrier": str(carrier),
        },
        "lines": [
            {
                "line_no": line["line_no"],
                "sku": line["sku"],
                "quantity_shipped": line["quantity"],
            }
            for line in purchase_order.get("lines")
        ],
        "summary": {"package_count": len(purchase_order.get("lines"))},
    }
    return Document(NORMALIZED, DOC_SHIP_NOTICE, data)


def make_rfq(
    rfq_number: str,
    buyer_id: str,
    seller_id: str,
    lines: Sequence[dict[str, Any]],
    respond_by: float = 0.0,
    issued_at: float = 0.0,
    document_id: str | None = None,
) -> Document:
    """Build a normalized request for quotation (the Section 2.3 example).

    ``lines`` items need ``sku`` and ``quantity`` (no prices — that is what
    the quotes are for).  A broadcast clones this per addressed seller.
    """
    if not lines:
        raise DocumentError("an RFQ needs at least one line")
    built_lines = [
        {
            "line_no": int(line.get("line_no", position)),
            "sku": str(line["sku"]),
            "description": str(line.get("description", "")),
            "quantity": float(line["quantity"]),
        }
        for position, line in enumerate(lines, start=1)
    ]
    data = {
        "header": {
            "document_id": document_id or f"RFQ-DOC-{rfq_number}",
            "rfq_number": str(rfq_number),
            "issued_at": float(issued_at),
            "buyer_id": str(buyer_id),
            "seller_id": str(seller_id),
            "respond_by": float(respond_by),
        },
        "lines": built_lines,
        "summary": {"line_count": len(built_lines)},
    }
    return Document(NORMALIZED, DOC_RFQ, data)


def make_quote(
    rfq: Document,
    unit_prices: dict[str, float],
    quote_number: str,
    currency: str = "USD",
    valid_until: float = 0.0,
    issued_at: float = 0.0,
) -> Document:
    """Build a normalized quote answering ``rfq``.

    ``unit_prices`` maps sku -> offered unit price; every RFQ line must be
    priced.  The quote travels seller -> buyer.
    """
    if rfq.doc_type != DOC_RFQ:
        raise DocumentError(f"can only quote an RFQ, got {rfq.doc_type!r}")
    lines = []
    total = 0.0
    for line in rfq.get("lines"):
        if line["sku"] not in unit_prices:
            raise DocumentError(f"no offered price for sku {line['sku']!r}")
        price = _round_money(unit_prices[line["sku"]])
        total += line["quantity"] * price
        lines.append(
            {
                "line_no": line["line_no"],
                "sku": line["sku"],
                "quantity": line["quantity"],
                "unit_price": price,
            }
        )
    data = {
        "header": {
            "document_id": f"QUOTE-DOC-{quote_number}",
            "quote_number": str(quote_number),
            "rfq_number": rfq.get("header.rfq_number"),
            "issued_at": float(issued_at),
            "buyer_id": rfq.get("header.buyer_id"),
            "seller_id": rfq.get("header.seller_id"),
            "currency": str(currency),
            "valid_until": float(valid_until),
        },
        "lines": lines,
        "summary": {"total_amount": _round_money(total)},
    }
    return Document(NORMALIZED, DOC_QUOTE, data)


def po_total_amount(document: Document) -> float:
    """Return the paper's ``PO.amount`` for a normalized purchase order."""
    return float(document.get("summary.total_amount"))


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------


def _line_schema(*specs: FieldSpec) -> DocumentSchema:
    schema = DocumentSchema("line")
    for spec in specs:
        schema.add(spec)
    return schema


def normalized_po_schema() -> DocumentSchema:
    """Schema for the normalized purchase order layout."""
    return DocumentSchema(
        "normalized/purchase_order",
        format_name=NORMALIZED,
        doc_type=DOC_PURCHASE_ORDER,
        fields=[
            FieldSpec("header.document_id"),
            FieldSpec("header.po_number"),
            FieldSpec("header.issued_at", "number"),
            FieldSpec("header.buyer_id"),
            FieldSpec("header.seller_id"),
            FieldSpec("header.currency"),
            FieldSpec("header.payment_terms", required=False),
            FieldSpec(
                "lines",
                "list",
                min_items=1,
                items=_line_schema(
                    FieldSpec("line_no", "int"),
                    FieldSpec("sku"),
                    FieldSpec("description", required=False),
                    FieldSpec(
                        "quantity", "number",
                        check=lambda value: value > 0,
                        check_label="quantity > 0",
                    ),
                    FieldSpec(
                        "unit_price", "number",
                        check=lambda value: value >= 0,
                        check_label="unit_price >= 0",
                    ),
                ),
            ),
            FieldSpec(
                "summary.total_amount", "number",
                check=lambda value: value >= 0,
                check_label="total_amount >= 0",
            ),
            FieldSpec("summary.line_count", "int"),
        ],
    )


def normalized_poa_schema() -> DocumentSchema:
    """Schema for the normalized PO-acknowledgment layout."""
    return DocumentSchema(
        "normalized/po_ack",
        format_name=NORMALIZED,
        doc_type=DOC_PO_ACK,
        fields=[
            FieldSpec("header.document_id"),
            FieldSpec("header.po_number"),
            FieldSpec("header.issued_at", "number"),
            FieldSpec("header.buyer_id"),
            FieldSpec("header.seller_id"),
            FieldSpec("header.status", choices=POA_STATUSES),
            FieldSpec(
                "lines",
                "list",
                min_items=1,
                items=_line_schema(
                    FieldSpec("line_no", "int"),
                    FieldSpec("sku"),
                    FieldSpec("status", choices=LINE_ACK_STATUSES),
                    FieldSpec("quantity", "number"),
                ),
            ),
            FieldSpec("summary.accepted_amount", "number"),
        ],
    )


def normalized_invoice_schema() -> DocumentSchema:
    """Schema for the normalized invoice layout."""
    return DocumentSchema(
        "normalized/invoice",
        format_name=NORMALIZED,
        doc_type=DOC_INVOICE,
        fields=[
            FieldSpec("header.document_id"),
            FieldSpec("header.invoice_number"),
            FieldSpec("header.po_number"),
            FieldSpec("header.buyer_id"),
            FieldSpec("header.seller_id"),
            FieldSpec("summary.subtotal", "number"),
            FieldSpec("summary.tax", "number"),
            FieldSpec("summary.total_due", "number"),
            FieldSpec("lines", "list", min_items=1),
        ],
    )


def normalized_ship_notice_schema() -> DocumentSchema:
    """Schema for the normalized advance-ship-notice layout."""
    return DocumentSchema(
        "normalized/ship_notice",
        format_name=NORMALIZED,
        doc_type=DOC_SHIP_NOTICE,
        fields=[
            FieldSpec("header.document_id"),
            FieldSpec("header.shipment_id"),
            FieldSpec("header.po_number"),
            FieldSpec("header.buyer_id"),
            FieldSpec("header.seller_id"),
            FieldSpec("header.carrier"),
            FieldSpec("lines", "list", min_items=1),
            FieldSpec("summary.package_count", "int"),
        ],
    )


def normalized_rfq_schema() -> DocumentSchema:
    """Schema for the normalized request-for-quote layout."""
    return DocumentSchema(
        "normalized/request_for_quote",
        format_name=NORMALIZED,
        doc_type=DOC_RFQ,
        fields=[
            FieldSpec("header.document_id"),
            FieldSpec("header.rfq_number"),
            FieldSpec("header.issued_at", "number"),
            FieldSpec("header.buyer_id"),
            FieldSpec("header.seller_id"),
            FieldSpec("header.respond_by", "number"),
            FieldSpec(
                "lines",
                "list",
                min_items=1,
                items=_line_schema(
                    FieldSpec("line_no", "int"),
                    FieldSpec("sku"),
                    FieldSpec("description", required=False),
                    FieldSpec(
                        "quantity", "number",
                        check=lambda value: value > 0,
                        check_label="quantity > 0",
                    ),
                ),
            ),
            FieldSpec("summary.line_count", "int"),
        ],
    )


def normalized_quote_schema() -> DocumentSchema:
    """Schema for the normalized quote layout."""
    return DocumentSchema(
        "normalized/quote",
        format_name=NORMALIZED,
        doc_type=DOC_QUOTE,
        fields=[
            FieldSpec("header.document_id"),
            FieldSpec("header.quote_number"),
            FieldSpec("header.rfq_number"),
            FieldSpec("header.issued_at", "number"),
            FieldSpec("header.buyer_id"),
            FieldSpec("header.seller_id"),
            FieldSpec("header.currency"),
            FieldSpec("header.valid_until", "number"),
            FieldSpec(
                "lines",
                "list",
                min_items=1,
                items=_line_schema(
                    FieldSpec("line_no", "int"),
                    FieldSpec("sku"),
                    FieldSpec("quantity", "number"),
                    FieldSpec(
                        "unit_price", "number",
                        check=lambda value: value >= 0,
                        check_label="unit_price >= 0",
                    ),
                ),
            ),
            FieldSpec("summary.total_amount", "number"),
        ],
    )


_SCHEMA_FACTORIES = {
    DOC_PURCHASE_ORDER: normalized_po_schema,
    DOC_PO_ACK: normalized_poa_schema,
    DOC_INVOICE: normalized_invoice_schema,
    DOC_SHIP_NOTICE: normalized_ship_notice_schema,
    DOC_RFQ: normalized_rfq_schema,
    DOC_QUOTE: normalized_quote_schema,
}


def schema_for(doc_type: str) -> DocumentSchema:
    """Return the normalized-format schema for ``doc_type``."""
    try:
        return _SCHEMA_FACTORIES[doc_type]()
    except KeyError:
        raise DocumentError(f"no normalized schema for doc_type {doc_type!r}") from None
