"""OAGIS-like XML wire format (the paper's ``OAGIS [36]``).

Implements Business Object Documents (BODs) shaped after OAGIS:
``ProcessPurchaseOrder`` (PO request) and ``AcknowledgePurchaseOrder``
(PO acknowledgment), each with the OAGIS two-part body:

* ``ApplicationArea`` — sender, creation time, BOD id;
* ``DataArea`` — the verb/noun payload.

**OAGIS document layout** (``format_name="oagis-bod"``):

``purchase_order`` layout::

    application_area: sender_id, receiver_id, creation_time, bod_id
    order_header: document_id, po_number, currency, total_value, terms
    order_lines[]: line_num, item_id, item_description, quantity, price

``po_ack`` layout::

    application_area: sender_id, receiver_id, creation_time, bod_id
    ack_header: document_id, po_number, acknowledge_code
                (Accepted / Rejected / Modified), total_accepted
    ack_lines[]: line_num, item_id, line_code, quantity

``ship_notice`` layout (``ShowShipment`` BOD)::

    application_area: sender_id, receiver_id, creation_time, bod_id
    shipment_header: document_id, shipment_id, po_number, carrier,
                     package_count
    shipment_lines[]: line_num, item_id, quantity_shipped

``invoice`` layout (``ProcessInvoice`` BOD)::

    application_area: sender_id, receiver_id, creation_time, bod_id
    invoice_header: document_id, invoice_number, po_number, currency,
                    subtotal, tax, total_due
    invoice_lines[]: line_num, item_id, quantity, unit_price, amount
"""

from __future__ import annotations

from typing import Any

from repro.documents.model import Document
from repro.documents.schema import DocumentSchema, FieldSpec
from repro.documents.xmlio import XmlElement, parse, serialize
from repro.errors import WireFormatError

__all__ = [
    "OAGIS",
    "ACK_CODE_BY_STATUS",
    "STATUS_BY_ACK_CODE",
    "LINE_CODE_BY_STATUS",
    "STATUS_BY_LINE_CODE",
    "to_wire",
    "from_wire",
    "oagis_po_schema",
    "oagis_poa_schema",
]

OAGIS = "oagis-bod"

ACK_CODE_BY_STATUS = {"accepted": "Accepted", "rejected": "Rejected", "partial": "Modified"}
STATUS_BY_ACK_CODE = {code: status for status, code in ACK_CODE_BY_STATUS.items()}

LINE_CODE_BY_STATUS = {"accepted": "Accepted", "rejected": "Rejected", "backordered": "Backordered"}
STATUS_BY_LINE_CODE = {code: status for status, code in LINE_CODE_BY_STATUS.items()}

_PROCESS_ROOT = "ProcessPurchaseOrder"
_ACK_ROOT = "AcknowledgePurchaseOrder"
_SHIPMENT_ROOT = "ShowShipment"
_INVOICE_ROOT = "ProcessInvoice"
_RFQ_ROOT = "GetQuote"
_QUOTE_ROOT = "ShowQuote"


def _text(value: Any) -> str:
    return "" if value is None else str(value)


def to_wire(document: Document) -> str:
    """Render an ``oagis-bod`` document to its BOD XML string."""
    if document.format_name != OAGIS:
        raise WireFormatError(
            f"to_wire expects format {OAGIS!r}, got {document.format_name!r}"
        )
    if document.doc_type == "purchase_order":
        root = _render_process(document)
    elif document.doc_type == "po_ack":
        root = _render_acknowledge(document)
    elif document.doc_type == "ship_notice":
        root = _render_shipment(document)
    elif document.doc_type == "invoice":
        root = _render_invoice(document)
    elif document.doc_type == "request_for_quote":
        root = _render_rfq(document)
    elif document.doc_type == "quote":
        root = _render_quote(document)
    else:
        raise WireFormatError(f"OAGIS BODs here cannot carry doc_type {document.doc_type!r}")
    return serialize(root, declaration=True, indent=2)


def _render_application_area(root: XmlElement, document: Document) -> None:
    area = document.get("application_area")
    element = root.child("ApplicationArea")
    sender = element.child("Sender")
    sender.child("LogicalId", area["sender_id"])
    receiver = element.child("Receiver")
    receiver.child("LogicalId", area["receiver_id"])
    element.child("CreationDateTime", _text(area["creation_time"]))
    element.child("BODId", area["bod_id"])


def _render_process(document: Document) -> XmlElement:
    root = XmlElement(_PROCESS_ROOT, {"releaseID": "SIM.9"})
    _render_application_area(root, document)
    data_area = root.child("DataArea")
    data_area.child("Process")
    order = data_area.child("PurchaseOrder")
    header = document.get("order_header")
    header_element = order.child("PurchaseOrderHeader")
    header_element.child("DocumentId", header["document_id"])
    header_element.child("PurchaseOrderId", header["po_number"])
    header_element.child("Currency", header["currency"])
    header_element.child("TotalValue", _text(header["total_value"]))
    header_element.child("PaymentTerms", header.get("terms", ""))
    for line in document.get("order_lines"):
        line_element = order.child("PurchaseOrderLine")
        line_element.child("LineNumber", _text(line["line_num"]))
        line_element.child("ItemId", line["item_id"])
        line_element.child("ItemDescription", line.get("item_description", ""))
        line_element.child("Quantity", _text(line["quantity"]))
        line_element.child("UnitPrice", _text(line["price"]))
    return root


def _render_acknowledge(document: Document) -> XmlElement:
    root = XmlElement(_ACK_ROOT, {"releaseID": "SIM.9"})
    _render_application_area(root, document)
    data_area = root.child("DataArea")
    data_area.child("Acknowledge")
    order = data_area.child("PurchaseOrder")
    header = document.get("ack_header")
    header_element = order.child("PurchaseOrderHeader")
    header_element.child("DocumentId", header["document_id"])
    header_element.child("PurchaseOrderId", header["po_number"])
    header_element.child("AcknowledgeCode", header["acknowledge_code"])
    header_element.child("TotalAccepted", _text(header["total_accepted"]))
    for line in document.get("ack_lines"):
        line_element = order.child("PurchaseOrderLine")
        line_element.child("LineNumber", _text(line["line_num"]))
        line_element.child("ItemId", line["item_id"])
        line_element.child("LineCode", line["line_code"])
        line_element.child("Quantity", _text(line["quantity"]))
    return root


def _render_shipment(document: Document) -> XmlElement:
    root = XmlElement(_SHIPMENT_ROOT, {"releaseID": "SIM.9"})
    _render_application_area(root, document)
    data_area = root.child("DataArea")
    data_area.child("Show")
    shipment = data_area.child("Shipment")
    header = document.get("shipment_header")
    header_element = shipment.child("ShipmentHeader")
    header_element.child("DocumentId", header["document_id"])
    header_element.child("ShipmentId", header["shipment_id"])
    header_element.child("PurchaseOrderId", header["po_number"])
    header_element.child("Carrier", header["carrier"])
    header_element.child("PackageCount", _text(header["package_count"]))
    for line in document.get("shipment_lines"):
        line_element = shipment.child("ShipmentLine")
        line_element.child("LineNumber", _text(line["line_num"]))
        line_element.child("ItemId", line["item_id"])
        line_element.child("QuantityShipped", _text(line["quantity_shipped"]))
    return root


def _render_invoice(document: Document) -> XmlElement:
    root = XmlElement(_INVOICE_ROOT, {"releaseID": "SIM.9"})
    _render_application_area(root, document)
    data_area = root.child("DataArea")
    data_area.child("Process")
    invoice = data_area.child("Invoice")
    header = document.get("invoice_header")
    header_element = invoice.child("InvoiceHeader")
    header_element.child("DocumentId", header["document_id"])
    header_element.child("InvoiceId", header["invoice_number"])
    header_element.child("PurchaseOrderId", header["po_number"])
    header_element.child("Currency", header["currency"])
    header_element.child("Subtotal", _text(header["subtotal"]))
    header_element.child("Tax", _text(header["tax"]))
    header_element.child("TotalDue", _text(header["total_due"]))
    for line in document.get("invoice_lines"):
        line_element = invoice.child("InvoiceLine")
        line_element.child("LineNumber", _text(line["line_num"]))
        line_element.child("ItemId", line["item_id"])
        line_element.child("Quantity", _text(line["quantity"]))
        line_element.child("UnitPrice", _text(line["unit_price"]))
        line_element.child("Amount", _text(line["amount"]))
    return root


def _render_rfq(document: Document) -> XmlElement:
    root = XmlElement(_RFQ_ROOT, {"releaseID": "SIM.9"})
    _render_application_area(root, document)
    data_area = root.child("DataArea")
    data_area.child("Get")
    quote = data_area.child("Quote")
    header = document.get("rfq_header")
    header_element = quote.child("QuoteHeader")
    header_element.child("DocumentId", header["document_id"])
    header_element.child("RfqId", header["rfq_number"])
    header_element.child("RespondBy", _text(header["respond_by"]))
    for line in document.get("rfq_lines"):
        line_element = quote.child("QuoteLine")
        line_element.child("LineNumber", _text(line["line_num"]))
        line_element.child("ItemId", line["item_id"])
        line_element.child("ItemDescription", line.get("item_description", ""))
        line_element.child("Quantity", _text(line["quantity"]))
    return root


def _render_quote(document: Document) -> XmlElement:
    root = XmlElement(_QUOTE_ROOT, {"releaseID": "SIM.9"})
    _render_application_area(root, document)
    data_area = root.child("DataArea")
    data_area.child("Show")
    quote = data_area.child("Quote")
    header = document.get("quote_header")
    header_element = quote.child("QuoteHeader")
    header_element.child("DocumentId", header["document_id"])
    header_element.child("QuoteId", header["quote_number"])
    header_element.child("RfqId", header["rfq_number"])
    header_element.child("Currency", header["currency"])
    header_element.child("ValidUntil", _text(header["valid_until"]))
    header_element.child("TotalAmount", _text(header["total_amount"]))
    for line in document.get("quote_lines"):
        line_element = quote.child("QuoteLine")
        line_element.child("LineNumber", _text(line["line_num"]))
        line_element.child("ItemId", line["item_id"])
        line_element.child("Quantity", _text(line["quantity"]))
        line_element.child("UnitPrice", _text(line["unit_price"]))
    return root


def from_wire(text: str) -> Document:
    """Parse a BOD XML string into an ``oagis-bod`` document."""
    root = parse(text)
    if root.tag == _PROCESS_ROOT:
        return _parse_process(root)
    if root.tag == _ACK_ROOT:
        return _parse_acknowledge(root)
    if root.tag == _SHIPMENT_ROOT:
        return _parse_shipment(root)
    if root.tag == _INVOICE_ROOT:
        return _parse_invoice(root)
    if root.tag == _RFQ_ROOT:
        return _parse_rfq(root)
    if root.tag == _QUOTE_ROOT:
        return _parse_quote(root)
    raise WireFormatError(f"unknown OAGIS root element <{root.tag}>")


def _parse_rfq(root: XmlElement) -> Document:
    data_area = root.require("DataArea")
    if data_area.find("Get") is None:
        raise WireFormatError("GetQuote without <Get> verb")
    quote = data_area.require("Quote")
    header = quote.require("QuoteHeader")
    lines = [
        {
            "line_num": int(_float(line, "LineNumber")),
            "item_id": line.require("ItemId").text,
            "item_description": line.child_text("ItemDescription", ""),
            "quantity": _float(line, "Quantity"),
        }
        for line in quote.find_all("QuoteLine")
    ]
    if not lines:
        raise WireFormatError("GetQuote without QuoteLine")
    data = {
        "application_area": _parse_application_area(root),
        "rfq_header": {
            "document_id": header.require("DocumentId").text,
            "rfq_number": header.require("RfqId").text,
            "respond_by": _float(header, "RespondBy"),
        },
        "rfq_lines": lines,
    }
    return Document(OAGIS, "request_for_quote", data)


def _parse_quote(root: XmlElement) -> Document:
    data_area = root.require("DataArea")
    if data_area.find("Show") is None:
        raise WireFormatError("ShowQuote without <Show> verb")
    quote = data_area.require("Quote")
    header = quote.require("QuoteHeader")
    lines = [
        {
            "line_num": int(_float(line, "LineNumber")),
            "item_id": line.require("ItemId").text,
            "quantity": _float(line, "Quantity"),
            "unit_price": _float(line, "UnitPrice"),
        }
        for line in quote.find_all("QuoteLine")
    ]
    if not lines:
        raise WireFormatError("ShowQuote without QuoteLine")
    data = {
        "application_area": _parse_application_area(root),
        "quote_header": {
            "document_id": header.require("DocumentId").text,
            "quote_number": header.require("QuoteId").text,
            "rfq_number": header.require("RfqId").text,
            "currency": header.require("Currency").text,
            "valid_until": _float(header, "ValidUntil"),
            "total_amount": _float(header, "TotalAmount"),
        },
        "quote_lines": lines,
    }
    return Document(OAGIS, "quote", data)


def _parse_shipment(root: XmlElement) -> Document:
    data_area = root.require("DataArea")
    if data_area.find("Show") is None:
        raise WireFormatError("ShowShipment without <Show> verb")
    shipment = data_area.require("Shipment")
    header = shipment.require("ShipmentHeader")
    lines = [
        {
            "line_num": int(_float(line, "LineNumber")),
            "item_id": line.require("ItemId").text,
            "quantity_shipped": _float(line, "QuantityShipped"),
        }
        for line in shipment.find_all("ShipmentLine")
    ]
    if not lines:
        raise WireFormatError("ShowShipment without ShipmentLine")
    data = {
        "application_area": _parse_application_area(root),
        "shipment_header": {
            "document_id": header.require("DocumentId").text,
            "shipment_id": header.require("ShipmentId").text,
            "po_number": header.require("PurchaseOrderId").text,
            "carrier": header.require("Carrier").text,
            "package_count": int(_float(header, "PackageCount")),
        },
        "shipment_lines": lines,
    }
    return Document(OAGIS, "ship_notice", data)


def _parse_invoice(root: XmlElement) -> Document:
    data_area = root.require("DataArea")
    if data_area.find("Process") is None:
        raise WireFormatError("ProcessInvoice without <Process> verb")
    invoice = data_area.require("Invoice")
    header = invoice.require("InvoiceHeader")
    lines = [
        {
            "line_num": int(_float(line, "LineNumber")),
            "item_id": line.require("ItemId").text,
            "quantity": _float(line, "Quantity"),
            "unit_price": _float(line, "UnitPrice"),
            "amount": _float(line, "Amount"),
        }
        for line in invoice.find_all("InvoiceLine")
    ]
    if not lines:
        raise WireFormatError("ProcessInvoice without InvoiceLine")
    data = {
        "application_area": _parse_application_area(root),
        "invoice_header": {
            "document_id": header.require("DocumentId").text,
            "invoice_number": header.require("InvoiceId").text,
            "po_number": header.require("PurchaseOrderId").text,
            "currency": header.require("Currency").text,
            "subtotal": _float(header, "Subtotal"),
            "tax": _float(header, "Tax"),
            "total_due": _float(header, "TotalDue"),
        },
        "invoice_lines": lines,
    }
    return Document(OAGIS, "invoice", data)


def _parse_application_area(root: XmlElement) -> dict[str, Any]:
    area = root.require("ApplicationArea")
    creation_text = area.require("CreationDateTime").text
    try:
        creation_time = float(creation_text)
    except ValueError:
        raise WireFormatError(f"non-numeric CreationDateTime {creation_text!r}") from None
    return {
        "sender_id": area.require("Sender").require("LogicalId").text,
        "receiver_id": area.require("Receiver").require("LogicalId").text,
        "creation_time": creation_time,
        "bod_id": area.require("BODId").text,
    }


def _float(element: XmlElement, tag: str) -> float:
    text = element.require(tag).text
    try:
        return float(text)
    except ValueError:
        raise WireFormatError(f"non-numeric <{tag}>: {text!r}") from None


def _parse_process(root: XmlElement) -> Document:
    data_area = root.require("DataArea")
    if data_area.find("Process") is None:
        raise WireFormatError("ProcessPurchaseOrder without <Process> verb")
    order = data_area.require("PurchaseOrder")
    header = order.require("PurchaseOrderHeader")
    lines = [
        {
            "line_num": int(_float(line, "LineNumber")),
            "item_id": line.require("ItemId").text,
            "item_description": line.child_text("ItemDescription", ""),
            "quantity": _float(line, "Quantity"),
            "price": _float(line, "UnitPrice"),
        }
        for line in order.find_all("PurchaseOrderLine")
    ]
    if not lines:
        raise WireFormatError("ProcessPurchaseOrder without PurchaseOrderLine")
    data = {
        "application_area": _parse_application_area(root),
        "order_header": {
            "document_id": header.require("DocumentId").text,
            "po_number": header.require("PurchaseOrderId").text,
            "currency": header.require("Currency").text,
            "total_value": _float(header, "TotalValue"),
            "terms": header.child_text("PaymentTerms", ""),
        },
        "order_lines": lines,
    }
    return Document(OAGIS, "purchase_order", data)


def _parse_acknowledge(root: XmlElement) -> Document:
    data_area = root.require("DataArea")
    if data_area.find("Acknowledge") is None:
        raise WireFormatError("AcknowledgePurchaseOrder without <Acknowledge> verb")
    order = data_area.require("PurchaseOrder")
    header = order.require("PurchaseOrderHeader")
    ack_code = header.require("AcknowledgeCode").text
    if ack_code not in STATUS_BY_ACK_CODE:
        raise WireFormatError(f"unknown AcknowledgeCode {ack_code!r}")
    lines = [
        {
            "line_num": int(_float(line, "LineNumber")),
            "item_id": line.require("ItemId").text,
            "line_code": line.require("LineCode").text,
            "quantity": _float(line, "Quantity"),
        }
        for line in order.find_all("PurchaseOrderLine")
    ]
    if not lines:
        raise WireFormatError("AcknowledgePurchaseOrder without PurchaseOrderLine")
    data = {
        "application_area": _parse_application_area(root),
        "ack_header": {
            "document_id": header.require("DocumentId").text,
            "po_number": header.require("PurchaseOrderId").text,
            "acknowledge_code": ack_code,
            "total_accepted": _float(header, "TotalAccepted"),
        },
        "ack_lines": lines,
    }
    return Document(OAGIS, "po_ack", data)


def oagis_po_schema() -> DocumentSchema:
    """Schema for the ``oagis-bod`` purchase-order layout."""
    return DocumentSchema(
        "oagis-bod/purchase_order",
        format_name=OAGIS,
        doc_type="purchase_order",
        fields=[
            FieldSpec("application_area.sender_id"),
            FieldSpec("application_area.receiver_id"),
            FieldSpec("application_area.bod_id"),
            FieldSpec("order_header.document_id"),
            FieldSpec("order_header.po_number"),
            FieldSpec("order_header.currency"),
            FieldSpec("order_header.total_value", "number"),
            FieldSpec("order_lines", "list", min_items=1),
        ],
    )


def oagis_asn_schema() -> DocumentSchema:
    """Schema for the ``oagis-bod`` ship-notice layout."""
    return DocumentSchema(
        "oagis-bod/ship_notice",
        format_name=OAGIS,
        doc_type="ship_notice",
        fields=[
            FieldSpec("application_area.sender_id"),
            FieldSpec("application_area.receiver_id"),
            FieldSpec("shipment_header.document_id"),
            FieldSpec("shipment_header.shipment_id"),
            FieldSpec("shipment_header.po_number"),
            FieldSpec("shipment_header.carrier"),
            FieldSpec("shipment_header.package_count", "int"),
            FieldSpec("shipment_lines", "list", min_items=1),
        ],
    )


def oagis_invoice_schema() -> DocumentSchema:
    """Schema for the ``oagis-bod`` invoice layout."""
    return DocumentSchema(
        "oagis-bod/invoice",
        format_name=OAGIS,
        doc_type="invoice",
        fields=[
            FieldSpec("application_area.sender_id"),
            FieldSpec("application_area.receiver_id"),
            FieldSpec("invoice_header.document_id"),
            FieldSpec("invoice_header.invoice_number"),
            FieldSpec("invoice_header.po_number"),
            FieldSpec("invoice_header.currency"),
            FieldSpec("invoice_header.subtotal", "number"),
            FieldSpec("invoice_header.tax", "number"),
            FieldSpec("invoice_header.total_due", "number"),
            FieldSpec("invoice_lines", "list", min_items=1),
        ],
    )


def oagis_rfq_schema() -> DocumentSchema:
    """Schema for the ``oagis-bod`` request-for-quote layout."""
    return DocumentSchema(
        "oagis-bod/request_for_quote",
        format_name=OAGIS,
        doc_type="request_for_quote",
        fields=[
            FieldSpec("application_area.sender_id"),
            FieldSpec("application_area.receiver_id"),
            FieldSpec("rfq_header.document_id"),
            FieldSpec("rfq_header.rfq_number"),
            FieldSpec("rfq_header.respond_by", "number"),
            FieldSpec("rfq_lines", "list", min_items=1),
        ],
    )


def oagis_quote_schema() -> DocumentSchema:
    """Schema for the ``oagis-bod`` quote layout."""
    return DocumentSchema(
        "oagis-bod/quote",
        format_name=OAGIS,
        doc_type="quote",
        fields=[
            FieldSpec("application_area.sender_id"),
            FieldSpec("application_area.receiver_id"),
            FieldSpec("quote_header.document_id"),
            FieldSpec("quote_header.quote_number"),
            FieldSpec("quote_header.rfq_number"),
            FieldSpec("quote_header.currency"),
            FieldSpec("quote_header.total_amount", "number"),
            FieldSpec("quote_lines", "list", min_items=1),
        ],
    )


def oagis_poa_schema() -> DocumentSchema:
    """Schema for the ``oagis-bod`` PO-acknowledgment layout."""
    return DocumentSchema(
        "oagis-bod/po_ack",
        format_name=OAGIS,
        doc_type="po_ack",
        fields=[
            FieldSpec("application_area.sender_id"),
            FieldSpec("application_area.receiver_id"),
            FieldSpec("ack_header.po_number"),
            FieldSpec("ack_header.acknowledge_code", choices=tuple(STATUS_BY_ACK_CODE)),
            FieldSpec("ack_lines", "list", min_items=1),
        ],
    )
