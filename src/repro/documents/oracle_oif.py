"""Oracle open-interface-like back-end format (the paper's ``Oracle [37]``).

The Oracle ERP simulator (:mod:`repro.backend.oracle_sim`) exchanges
documents as open-interface-table record sets: the wire form is one record
per line, ``TABLE_NAME|COLUMN=value|COLUMN=value|...`` — the shape of
loading ``PO_HEADERS_INTERFACE``/``PO_LINES_INTERFACE`` staging tables, with
pipes standing in for the SQL*Loader control files real deployments use.

Tables:

======================= ============================================
PO_HEADERS_INTERFACE    one per document: document number, currency,
                        buyer/vendor orgs, total, creation date
PO_LINES_INTERFACE      one per order line
PO_ACK_HEADERS          acknowledgment header: acceptance code
PO_ACK_LINES            acknowledgment lines: line status, quantity
======================= ============================================

**Oracle OIF document layout** (``format_name="oracle-oif"``):

``purchase_order`` layout::

    header: interface_header_id, document_num, currency_code, buyer_org,
            vendor_org, terms, total_amount, creation_date
    lines[]: line_num, item_id, item_description, quantity, unit_price

``po_ack`` layout::

    header: interface_header_id, document_num, acceptance_code
            (FULL / REJECTED / PARTIAL), buyer_org, vendor_org,
            accepted_amount, creation_date
    lines[]: line_num, item_id, line_status
             (ACCEPTED / REJECTED / BACKORDER), quantity
"""

from __future__ import annotations

from typing import Any

from repro.documents.model import Document
from repro.documents.schema import DocumentSchema, FieldSpec
from repro.errors import WireFormatError

__all__ = [
    "ORACLE_OIF",
    "ACCEPTANCE_BY_STATUS",
    "STATUS_BY_ACCEPTANCE",
    "LINE_STATUS_BY_STATUS",
    "STATUS_BY_LINE_STATUS",
    "to_wire",
    "from_wire",
    "oif_po_schema",
    "oif_poa_schema",
]

ORACLE_OIF = "oracle-oif"

ACCEPTANCE_BY_STATUS = {"accepted": "FULL", "rejected": "REJECTED", "partial": "PARTIAL"}
STATUS_BY_ACCEPTANCE = {code: status for status, code in ACCEPTANCE_BY_STATUS.items()}

LINE_STATUS_BY_STATUS = {"accepted": "ACCEPTED", "rejected": "REJECTED", "backordered": "BACKORDER"}
STATUS_BY_LINE_STATUS = {code: status for status, code in LINE_STATUS_BY_STATUS.items()}

_HEADER_COLUMNS = {
    "PO_HEADERS_INTERFACE": [
        "INTERFACE_HEADER_ID",
        "DOCUMENT_NUM",
        "CURRENCY_CODE",
        "BUYER_ORG",
        "VENDOR_ORG",
        "TERMS",
        "TOTAL_AMOUNT",
        "CREATION_DATE",
    ],
    "PO_LINES_INTERFACE": [
        "LINE_NUM",
        "ITEM_ID",
        "ITEM_DESCRIPTION",
        "QUANTITY",
        "UNIT_PRICE",
    ],
    "PO_ACK_HEADERS": [
        "INTERFACE_HEADER_ID",
        "DOCUMENT_NUM",
        "ACCEPTANCE_CODE",
        "BUYER_ORG",
        "VENDOR_ORG",
        "ACCEPTED_AMOUNT",
        "CREATION_DATE",
    ],
    "PO_ACK_LINES": [
        "LINE_NUM",
        "ITEM_ID",
        "LINE_STATUS",
        "QUANTITY",
    ],
}

_NUMERIC_COLUMNS = {"TOTAL_AMOUNT", "QUANTITY", "UNIT_PRICE", "CREATION_DATE", "ACCEPTED_AMOUNT"}
_INT_COLUMNS = {"LINE_NUM"}

# layout field name (lower case) per column, for each table
_FIELD_NAMES = {
    table: [column.lower() for column in columns]
    for table, columns in _HEADER_COLUMNS.items()
}


def _escape(value: Any) -> str:
    text = "" if value is None else str(value)
    return text.replace("\\", "\\\\").replace("|", "\\p").replace("\n", "\\n")


def _unescape(text: str) -> str:
    pieces: list[str] = []
    index = 0
    while index < len(text):
        character = text[index]
        if character == "\\":
            if index + 1 >= len(text):
                raise WireFormatError("dangling escape in OIF value")
            escape_code = text[index + 1]
            if escape_code == "\\":
                pieces.append("\\")
            elif escape_code == "p":
                pieces.append("|")
            elif escape_code == "n":
                pieces.append("\n")
            else:
                raise WireFormatError(f"unknown OIF escape \\{escape_code}")
            index += 2
        else:
            pieces.append(character)
            index += 1
    return "".join(pieces)


def _render_record(table: str, values: dict[str, Any]) -> str:
    pieces = [table]
    for column, field_name in zip(_HEADER_COLUMNS[table], _FIELD_NAMES[table]):
        pieces.append(f"{column}={_escape(values.get(field_name))}")
    return "|".join(pieces)


def _parse_record(line: str) -> tuple[str, dict[str, Any]]:
    cells = _split_record(line)
    table = cells[0]
    if table not in _HEADER_COLUMNS:
        raise WireFormatError(f"unknown OIF table {table!r}")
    values: dict[str, Any] = {}
    expected = dict(zip(_HEADER_COLUMNS[table], _FIELD_NAMES[table]))
    for cell in cells[1:]:
        if "=" not in cell:
            raise WireFormatError(f"malformed OIF cell {cell!r}")
        column, _, raw = cell.partition("=")
        if column not in expected:
            raise WireFormatError(f"unknown column {column!r} for table {table}")
        text = _unescape(raw)
        if column in _NUMERIC_COLUMNS:
            values[expected[column]] = _number(text, f"{table}.{column}")
        elif column in _INT_COLUMNS:
            values[expected[column]] = int(_number(text, f"{table}.{column}"))
        else:
            values[expected[column]] = text
    missing = set(expected.values()) - set(values)
    if missing:
        raise WireFormatError(f"{table} record missing columns {sorted(missing)}")
    return table, values


def _split_record(line: str) -> list[str]:
    """Split on unescaped pipes (escapes use ``\\p`` so no lookbehind needed)."""
    return line.split("|")


def _number(text: str, context: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise WireFormatError(f"non-numeric value {text!r} in {context}") from None


def to_wire(document: Document) -> str:
    """Render an ``oracle-oif`` document to its record-set string."""
    if document.format_name != ORACLE_OIF:
        raise WireFormatError(
            f"to_wire expects format {ORACLE_OIF!r}, got {document.format_name!r}"
        )
    if document.doc_type == "purchase_order":
        header_table, line_table = "PO_HEADERS_INTERFACE", "PO_LINES_INTERFACE"
    elif document.doc_type == "po_ack":
        header_table, line_table = "PO_ACK_HEADERS", "PO_ACK_LINES"
    else:
        raise WireFormatError(f"OIF cannot carry doc_type {document.doc_type!r}")
    lines = [_render_record(header_table, document.get("header"))]
    for line in document.get("lines"):
        lines.append(_render_record(line_table, line))
    return "\n".join(lines) + "\n"


def from_wire(text: str) -> Document:
    """Parse an OIF record-set string into an ``oracle-oif`` document."""
    if not isinstance(text, str) or not text.strip():
        raise WireFormatError("empty OIF record set")
    header: dict[str, Any] | None = None
    header_table: str | None = None
    lines: list[dict[str, Any]] = []
    for raw_line in text.splitlines():
        if not raw_line.strip():
            continue
        table, values = _parse_record(raw_line)
        if table in ("PO_HEADERS_INTERFACE", "PO_ACK_HEADERS"):
            if header is not None:
                raise WireFormatError("OIF record set with two header records")
            header, header_table = values, table
        else:
            lines.append(values)
    if header is None or header_table is None:
        raise WireFormatError("OIF record set without header record")
    if not lines:
        raise WireFormatError("OIF record set without line records")
    doc_type = "purchase_order" if header_table == "PO_HEADERS_INTERFACE" else "po_ack"
    expected_line_table = (
        "PO_LINES_INTERFACE" if doc_type == "purchase_order" else "PO_ACK_LINES"
    )
    data = {"header": header, "lines": lines}
    document = Document(ORACLE_OIF, doc_type, data)
    # Cross-check that line records match the header's document kind.
    for line in lines:
        expected_fields = set(_FIELD_NAMES[expected_line_table])
        if set(line) != expected_fields:
            raise WireFormatError(
                f"line record fields {sorted(line)} do not match {expected_line_table}"
            )
    return document


def oif_po_schema() -> DocumentSchema:
    """Schema for the ``oracle-oif`` purchase-order layout."""
    return DocumentSchema(
        "oracle-oif/purchase_order",
        format_name=ORACLE_OIF,
        doc_type="purchase_order",
        fields=[
            FieldSpec("header.interface_header_id"),
            FieldSpec("header.document_num"),
            FieldSpec("header.currency_code"),
            FieldSpec("header.buyer_org"),
            FieldSpec("header.vendor_org"),
            FieldSpec("header.total_amount", "number"),
            FieldSpec("lines", "list", min_items=1),
        ],
    )


def oif_poa_schema() -> DocumentSchema:
    """Schema for the ``oracle-oif`` PO-acknowledgment layout."""
    return DocumentSchema(
        "oracle-oif/po_ack",
        format_name=ORACLE_OIF,
        doc_type="po_ack",
        fields=[
            FieldSpec("header.interface_header_id"),
            FieldSpec("header.document_num"),
            FieldSpec("header.acceptance_code", choices=tuple(STATUS_BY_ACCEPTANCE)),
            FieldSpec("lines", "list", min_items=1),
        ],
    )
