"""RosettaNet-like XML wire format (PIP 3A4, the paper's ``RN [40]``).

Implements the *document* half of RosettaNet: PIP-3A4-shaped XML for the
"create purchase order" request and the "purchase order acceptance"
response between a **Buyer** and a **Seller** role (Section 5.1 of the
paper).  The *behavioural* half — reliable exchange with acknowledgments,
time-outs and retries (RNIF) — lives in :mod:`repro.messaging.reliable` and
the protocol layer :mod:`repro.b2b.rosettanet`.

**RosettaNet document layout** (``format_name="rosettanet-xml"``) — field
names follow RosettaNet vocabulary, deliberately unlike the normalized
layout:

``purchase_order`` layout::

    service_header: pip_code ("3A4"), pip_instance_id, from_role ("Buyer"),
                    to_role ("Seller"), from_partner, to_partner
    order: global_document_id, po_number, currency_code, document_date,
           payment_terms, total_amount, product_lines[]: line_number,
           global_product_id, description, ordered_quantity, unit_price

``po_ack`` layout::

    service_header: pip_code, pip_instance_id, from_role ("Seller"),
                    to_role ("Buyer"), from_partner, to_partner
    acknowledgment: global_document_id, po_number, document_date,
                    global_response_code (Accept / Reject / Partial),
                    accepted_amount,
                    ack_lines[]: line_number, global_product_id,
                    response_code, accepted_quantity
"""

from __future__ import annotations

from typing import Any

from repro.documents.model import Document
from repro.documents.schema import DocumentSchema, FieldSpec
from repro.documents.xmlio import XmlElement, parse, serialize
from repro.errors import WireFormatError

__all__ = [
    "ROSETTANET",
    "RESPONSE_CODE_BY_STATUS",
    "STATUS_BY_RESPONSE_CODE",
    "LINE_CODE_BY_STATUS",
    "STATUS_BY_LINE_CODE",
    "to_wire",
    "from_wire",
    "make_receipt_ack",
    "rn_po_schema",
    "rn_poa_schema",
]

ROSETTANET = "rosettanet-xml"

RESPONSE_CODE_BY_STATUS = {"accepted": "Accept", "rejected": "Reject", "partial": "Partial"}
STATUS_BY_RESPONSE_CODE = {code: status for status, code in RESPONSE_CODE_BY_STATUS.items()}

LINE_CODE_BY_STATUS = {"accepted": "Accept", "rejected": "Reject", "backordered": "Backorder"}
STATUS_BY_LINE_CODE = {code: status for status, code in LINE_CODE_BY_STATUS.items()}

_REQUEST_ROOT = "Pip3A4PurchaseOrderRequest"
_CONFIRM_ROOT = "Pip3A4PurchaseOrderConfirmation"
_RECEIPT_ROOT = "ReceiptAcknowledgment"


def to_wire(document: Document) -> str:
    """Render a ``rosettanet-xml`` document to its XML string."""
    if document.format_name != ROSETTANET:
        raise WireFormatError(
            f"to_wire expects format {ROSETTANET!r}, got {document.format_name!r}"
        )
    if document.doc_type == "purchase_order":
        root = _render_request(document)
    elif document.doc_type == "po_ack":
        root = _render_confirmation(document)
    elif document.doc_type == "receipt_ack":
        root = _render_receipt(document)
    else:
        raise WireFormatError(
            f"RosettaNet PIP 3A4 cannot carry doc_type {document.doc_type!r}"
        )
    return serialize(root, declaration=True, indent=2)


def _render_service_header(parent: XmlElement, document: Document) -> None:
    header = document.get("service_header")
    element = parent.child("ServiceHeader")
    element.child("PipCode", header["pip_code"])
    element.child("PipInstanceId", header["pip_instance_id"])
    element.child("FromRole", header["from_role"])
    element.child("ToRole", header["to_role"])
    element.child("FromPartner", header["from_partner"])
    element.child("ToPartner", header["to_partner"])


def _render_request(document: Document) -> XmlElement:
    root = XmlElement(_REQUEST_ROOT)
    _render_service_header(root, document)
    order = document.get("order")
    order_element = root.child("PurchaseOrder")
    order_element.child("GlobalDocumentIdentifier", order["global_document_id"])
    order_element.child("PurchaseOrderNumber", order["po_number"])
    order_element.child("GlobalCurrencyCode", order["currency_code"])
    order_element.child("DocumentDate", _text(order["document_date"]))
    order_element.child("PaymentTerms", order.get("payment_terms", ""))
    order_element.child("TotalAmount", _text(order["total_amount"]))
    for line in order["product_lines"]:
        line_element = order_element.child("ProductLineItem")
        line_element.child("LineNumber", _text(line["line_number"]))
        line_element.child("GlobalProductIdentifier", line["global_product_id"])
        line_element.child("Description", line.get("description", ""))
        line_element.child("OrderedQuantity", _text(line["ordered_quantity"]))
        line_element.child("UnitPrice", _text(line["unit_price"]))
    return root


def _render_confirmation(document: Document) -> XmlElement:
    root = XmlElement(_CONFIRM_ROOT)
    _render_service_header(root, document)
    ack = document.get("acknowledgment")
    ack_element = root.child("PurchaseOrderAcknowledgment")
    ack_element.child("GlobalDocumentIdentifier", ack["global_document_id"])
    ack_element.child("PurchaseOrderNumber", ack["po_number"])
    ack_element.child("DocumentDate", _text(ack["document_date"]))
    ack_element.child("GlobalResponseCode", ack["global_response_code"])
    ack_element.child("AcceptedAmount", _text(ack["accepted_amount"]))
    for line in ack["ack_lines"]:
        line_element = ack_element.child("AcknowledgedLineItem")
        line_element.child("LineNumber", _text(line["line_number"]))
        line_element.child("GlobalProductIdentifier", line["global_product_id"])
        line_element.child("ResponseCode", line["response_code"])
        line_element.child("AcceptedQuantity", _text(line["accepted_quantity"]))
    return root


def _text(value: Any) -> str:
    return "" if value is None else str(value)


def _render_receipt(document: Document) -> XmlElement:
    root = XmlElement(_RECEIPT_ROOT)
    _render_service_header(root, document)
    receipt = document.get("receipt")
    receipt_element = root.child("Receipt")
    receipt_element.child("OriginalDocumentIdentifier", receipt["original_document_id"])
    receipt_element.child("OriginalDocumentType", receipt["original_doc_type"])
    receipt_element.child("ReceivedAt", _text(receipt["received_at"]))
    return root


def from_wire(text: str) -> Document:
    """Parse a PIP 3A4 XML string into a ``rosettanet-xml`` document."""
    root = parse(text)
    if root.tag == _REQUEST_ROOT:
        return _parse_request(root)
    if root.tag == _CONFIRM_ROOT:
        return _parse_confirmation(root)
    if root.tag == _RECEIPT_ROOT:
        return _parse_receipt(root)
    raise WireFormatError(f"unknown RosettaNet root element <{root.tag}>")


def _parse_receipt(root: XmlElement) -> Document:
    receipt = root.require("Receipt")
    data = {
        "service_header": _parse_service_header(root),
        "receipt": {
            "original_document_id": receipt.require("OriginalDocumentIdentifier").text,
            "original_doc_type": receipt.require("OriginalDocumentType").text,
            "received_at": _float(receipt, "ReceivedAt"),
        },
    }
    return Document(ROSETTANET, "receipt_ack", data)


def make_receipt_ack(received: Document, now: float) -> Document:
    """Build the RNIF-style business receipt for a received 3A4 document.

    The receipt reverses the service-header roles/partners of the received
    document — it travels back to whoever sent the original.
    """
    header = received.get("service_header")
    if received.doc_type == "purchase_order":
        original_id = received.get("order.global_document_id")
    elif received.doc_type == "po_ack":
        original_id = received.get("acknowledgment.global_document_id")
    else:
        raise WireFormatError(
            f"cannot build a receipt for doc_type {received.doc_type!r}"
        )
    data = {
        "service_header": {
            "pip_code": header["pip_code"],
            "pip_instance_id": header["pip_instance_id"],
            "from_role": header["to_role"],
            "to_role": header["from_role"],
            "from_partner": header["to_partner"],
            "to_partner": header["from_partner"],
        },
        "receipt": {
            "original_document_id": original_id,
            "original_doc_type": received.doc_type,
            "received_at": float(now),
        },
    }
    return Document(ROSETTANET, "receipt_ack", data)


def _parse_service_header(root: XmlElement) -> dict[str, Any]:
    header = root.require("ServiceHeader")
    return {
        "pip_code": header.require("PipCode").text,
        "pip_instance_id": header.require("PipInstanceId").text,
        "from_role": header.require("FromRole").text,
        "to_role": header.require("ToRole").text,
        "from_partner": header.require("FromPartner").text,
        "to_partner": header.require("ToPartner").text,
    }


def _float(element: XmlElement, tag: str) -> float:
    text = element.require(tag).text
    try:
        return float(text)
    except ValueError:
        raise WireFormatError(f"non-numeric <{tag}>: {text!r}") from None


def _int(element: XmlElement, tag: str) -> int:
    return int(_float(element, tag))


def _parse_request(root: XmlElement) -> Document:
    order = root.require("PurchaseOrder")
    lines = [
        {
            "line_number": _int(line, "LineNumber"),
            "global_product_id": line.require("GlobalProductIdentifier").text,
            "description": line.child_text("Description", ""),
            "ordered_quantity": _float(line, "OrderedQuantity"),
            "unit_price": _float(line, "UnitPrice"),
        }
        for line in order.find_all("ProductLineItem")
    ]
    if not lines:
        raise WireFormatError("PIP 3A4 request without ProductLineItem")
    data = {
        "service_header": _parse_service_header(root),
        "order": {
            "global_document_id": order.require("GlobalDocumentIdentifier").text,
            "po_number": order.require("PurchaseOrderNumber").text,
            "currency_code": order.require("GlobalCurrencyCode").text,
            "document_date": _float(order, "DocumentDate"),
            "payment_terms": order.child_text("PaymentTerms", ""),
            "total_amount": _float(order, "TotalAmount"),
            "product_lines": lines,
        },
    }
    return Document(ROSETTANET, "purchase_order", data)


def _parse_confirmation(root: XmlElement) -> Document:
    ack = root.require("PurchaseOrderAcknowledgment")
    lines = [
        {
            "line_number": _int(line, "LineNumber"),
            "global_product_id": line.require("GlobalProductIdentifier").text,
            "response_code": line.require("ResponseCode").text,
            "accepted_quantity": _float(line, "AcceptedQuantity"),
        }
        for line in ack.find_all("AcknowledgedLineItem")
    ]
    if not lines:
        raise WireFormatError("PIP 3A4 confirmation without AcknowledgedLineItem")
    response_code = ack.require("GlobalResponseCode").text
    if response_code not in STATUS_BY_RESPONSE_CODE:
        raise WireFormatError(f"unknown GlobalResponseCode {response_code!r}")
    data = {
        "service_header": _parse_service_header(root),
        "acknowledgment": {
            "global_document_id": ack.require("GlobalDocumentIdentifier").text,
            "po_number": ack.require("PurchaseOrderNumber").text,
            "document_date": _float(ack, "DocumentDate"),
            "global_response_code": response_code,
            "accepted_amount": _float(ack, "AcceptedAmount"),
            "ack_lines": lines,
        },
    }
    return Document(ROSETTANET, "po_ack", data)


def rn_po_schema() -> DocumentSchema:
    """Schema for the ``rosettanet-xml`` purchase-order layout."""
    return DocumentSchema(
        "rosettanet-xml/purchase_order",
        format_name=ROSETTANET,
        doc_type="purchase_order",
        fields=[
            FieldSpec("service_header.pip_code", choices=("3A4",)),
            FieldSpec("service_header.pip_instance_id"),
            FieldSpec("service_header.from_role", choices=("Buyer",)),
            FieldSpec("service_header.to_role", choices=("Seller",)),
            FieldSpec("service_header.from_partner"),
            FieldSpec("service_header.to_partner"),
            FieldSpec("order.global_document_id"),
            FieldSpec("order.po_number"),
            FieldSpec("order.currency_code"),
            FieldSpec("order.total_amount", "number"),
            FieldSpec("order.product_lines", "list", min_items=1),
        ],
    )


def rn_poa_schema() -> DocumentSchema:
    """Schema for the ``rosettanet-xml`` PO-acknowledgment layout."""
    return DocumentSchema(
        "rosettanet-xml/po_ack",
        format_name=ROSETTANET,
        doc_type="po_ack",
        fields=[
            FieldSpec("service_header.pip_code", choices=("3A4",)),
            FieldSpec("service_header.from_role", choices=("Seller",)),
            FieldSpec("service_header.to_role", choices=("Buyer",)),
            FieldSpec("acknowledgment.po_number"),
            FieldSpec(
                "acknowledgment.global_response_code",
                choices=tuple(STATUS_BY_RESPONSE_CODE),
            ),
            FieldSpec("acknowledgment.ack_lines", "list", min_items=1),
        ],
    )
