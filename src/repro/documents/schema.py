"""Document schemas: declarative structure checks for document layouts.

Transformations and bindings validate documents at the boundaries where the
paper places format obligations: public processes must produce documents in
their protocol's wire layout, private processes only ever see the normalized
layout (Section 4.2).  A schema failure at one of these seams is a modelling
bug, so violations are collected exhaustively and raised together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.documents.model import Document, DocumentPath
from repro.errors import SchemaError, ValidationError

__all__ = ["FieldSpec", "DocumentSchema"]

_ABSENT = object()

_TYPE_NAMES: dict[str, type | tuple[type, ...]] = {
    "str": str,
    "int": int,
    "float": (int, float),
    "number": (int, float),
    "bool": bool,
}


@dataclass(frozen=True)
class FieldSpec:
    """One field constraint inside a :class:`DocumentSchema`.

    :param path: document path of the field (list fields are expressed via
        an ``items`` sub-schema on the containing spec instead).
    :param type_name: one of ``str int float number bool list dict``.
    :param required: whether the field must be present.
    :param choices: optional closed set of allowed values.
    :param check: optional predicate ``value -> bool`` for extra constraints
        (e.g. non-negative amounts); described by ``check_label`` in
        violation messages.
    :param items: for ``list`` fields, a schema every element must satisfy
        (elements are dicts, validated as anonymous sub-documents).
    :param min_items: for ``list`` fields, minimum number of elements.
    """

    path: str
    type_name: str = "str"
    required: bool = True
    choices: tuple[Any, ...] | None = None
    check: Callable[[Any], bool] | None = None
    check_label: str = "custom check"
    items: "DocumentSchema | None" = None
    min_items: int = 0

    def __post_init__(self) -> None:
        if self.type_name not in (*_TYPE_NAMES, "list", "dict"):
            raise SchemaError(
                f"unknown type {self.type_name!r} for field {self.path!r}"
            )
        if self.items is not None and self.type_name != "list":
            raise SchemaError(
                f"field {self.path!r}: items= requires type 'list'"
            )
        # Schema validation runs on every document at every trust boundary;
        # compile the path once instead of re-parsing it per validation.
        object.__setattr__(self, "_compiled_path", DocumentPath(self.path))

    def violations_for(self, document: Document) -> list[str]:
        """Return the list of violations of this spec in ``document``."""
        value = document.get(self._compiled_path, default=_ABSENT)
        if value is _ABSENT:
            if self.required:
                return [f"{self.path}: required field is missing"]
            return []
        return self._check_value(value)

    def _check_value(self, value: Any) -> list[str]:
        problems: list[str] = []
        if self.type_name == "list":
            if not isinstance(value, list):
                return [f"{self.path}: expected list, got {type(value).__name__}"]
            if len(value) < self.min_items:
                problems.append(
                    f"{self.path}: expected at least {self.min_items} item(s), "
                    f"got {len(value)}"
                )
            if self.items is not None:
                for index, element in enumerate(value):
                    if not isinstance(element, dict):
                        problems.append(
                            f"{self.path}[{index}]: expected dict item, got "
                            f"{type(element).__name__}"
                        )
                        continue
                    item_doc = Document("item", "item", element)
                    for spec in self.items.fields:
                        problems.extend(
                            f"{self.path}[{index}].{violation}"
                            for violation in spec.violations_for(item_doc)
                        )
            return problems
        if self.type_name == "dict":
            if not isinstance(value, dict):
                return [f"{self.path}: expected dict, got {type(value).__name__}"]
            return problems
        expected = _TYPE_NAMES[self.type_name]
        if isinstance(value, bool) and self.type_name in ("int", "float", "number"):
            problems.append(f"{self.path}: expected {self.type_name}, got bool")
        elif not isinstance(value, expected):
            problems.append(
                f"{self.path}: expected {self.type_name}, got {type(value).__name__}"
            )
        if self.choices is not None and value not in self.choices:
            problems.append(
                f"{self.path}: value {value!r} not in allowed choices {self.choices!r}"
            )
        if self.check is not None and not problems:
            try:
                passed = bool(self.check(value))
            except Exception as exc:  # checks must never crash validation
                passed = False
                problems.append(f"{self.path}: {self.check_label} raised {exc!r}")
            else:
                if not passed:
                    problems.append(f"{self.path}: failed {self.check_label}")
        return problems


@dataclass
class DocumentSchema:
    """A named set of field constraints for one (format, doc_type) layout."""

    name: str
    format_name: str = ""
    doc_type: str = ""
    fields: list[FieldSpec] = field(default_factory=list)

    def add(self, spec: FieldSpec) -> "DocumentSchema":
        """Append a field spec (fluent)."""
        self.fields.append(spec)
        return self

    def violations(self, document: Document) -> list[str]:
        """Return every violation of this schema in ``document``."""
        problems: list[str] = []
        if self.format_name and document.format_name != self.format_name:
            problems.append(
                f"format mismatch: schema {self.name!r} expects "
                f"{self.format_name!r}, document is {document.format_name!r}"
            )
        if self.doc_type and document.doc_type != self.doc_type:
            problems.append(
                f"doc_type mismatch: schema {self.name!r} expects "
                f"{self.doc_type!r}, document is {document.doc_type!r}"
            )
        for spec in self.fields:
            problems.extend(spec.violations_for(document))
        return problems

    def validate(self, document: Document) -> None:
        """Raise :class:`ValidationError` when ``document`` violates this schema."""
        problems = self.violations(document)
        if problems:
            raise ValidationError(
                f"document failed schema {self.name!r}: "
                f"{len(problems)} violation(s): " + "; ".join(problems[:5]),
                violations=problems,
            )

    def is_valid(self, document: Document) -> bool:
        """Return True when ``document`` satisfies this schema."""
        return not self.violations(document)
