"""Minimal XML reader/writer used by the XML wire formats.

The paper's B2B protocols (RosettaNet, OAGIS) are XML-based.  Per the
reproduction rule ("B2B/XML tooling weaker — build the substrate"), this is
a small, dependency-free XML subset implemented from scratch:

* elements with attributes and text,
* the five predefined entities (``&amp; &lt; &gt; &quot; &apos;``) plus
  numeric character references,
* comments and an optional XML declaration (both skipped on parse),
* UTF-8 text in, text out.

It deliberately excludes namespaces-as-objects (prefixes are kept verbatim
in tag names), CDATA, DTDs and processing instructions — none of which the
wire formats here use.  ``parse(serialize(tree)) == tree`` is property-tested
in ``tests/documents/test_xmlio.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import XmlSyntaxError

__all__ = ["XmlElement", "parse", "serialize"]


@dataclass
class XmlElement:
    """An XML element: tag, attributes, text chunks and child elements.

    ``content`` is the ordered mixed content: a list whose items are either
    ``str`` (text) or :class:`XmlElement` (child).  Convenience accessors
    cover the common case of element-only or text-only content.
    """

    tag: str
    attrs: dict[str, str] = field(default_factory=dict)
    content: list["XmlElement | str"] = field(default_factory=list)

    # -- construction helpers ------------------------------------------------

    def child(self, tag: str, text: str | None = None, **attrs: str) -> "XmlElement":
        """Append and return a new child element (optionally with text)."""
        element = XmlElement(tag, dict(attrs))
        if text is not None:
            element.content.append(text)
        self.content.append(element)
        return element

    # -- queries -------------------------------------------------------------

    @property
    def children(self) -> list["XmlElement"]:
        """Child elements, in document order (text chunks excluded)."""
        return [item for item in self.content if isinstance(item, XmlElement)]

    @property
    def text(self) -> str:
        """Concatenated direct text content."""
        return "".join(item for item in self.content if isinstance(item, str))

    def find(self, tag: str) -> "XmlElement | None":
        """Return the first direct child with ``tag``, or ``None``."""
        for element in self.children:
            if element.tag == tag:
                return element
        return None

    def find_all(self, tag: str) -> list["XmlElement"]:
        """Return all direct children with ``tag``."""
        return [element for element in self.children if element.tag == tag]

    def require(self, tag: str) -> "XmlElement":
        """Like :meth:`find` but raises when the child is absent."""
        element = self.find(tag)
        if element is None:
            raise XmlSyntaxError(f"<{self.tag}> is missing required child <{tag}>")
        return element

    def child_text(self, tag: str, default: str | None = None) -> str | None:
        """Return the text of the first ``tag`` child, or ``default``."""
        element = self.find(tag)
        return element.text if element is not None else default

    def iter(self) -> Iterator["XmlElement"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for element in self.children:
            yield from element.iter()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, XmlElement)
            and self.tag == other.tag
            and self.attrs == other.attrs
            and self.content == other.content
        )


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {**_TEXT_ESCAPES, '"': "&quot;"}

_NAME_START = set(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_:"
)
_NAME_CHARS = _NAME_START | set("0123456789.-")


def _escape(value: str, table: dict[str, str]) -> str:
    for raw, replacement in table.items():
        value = value.replace(raw, replacement)
    return value


def _check_name(name: str) -> str:
    if not name or name[0] not in _NAME_START or any(
        character not in _NAME_CHARS for character in name
    ):
        raise XmlSyntaxError(f"invalid XML name {name!r}")
    return name


def serialize(root: XmlElement, declaration: bool = True, indent: int = 0) -> str:
    """Serialize ``root`` to an XML string.

    ``indent > 0`` pretty-prints element-only content with that many spaces
    per level; mixed content (text alongside elements) is always emitted
    verbatim so that round-tripping preserves text exactly.
    """
    pieces: list[str] = []
    if declaration:
        pieces.append('<?xml version="1.0" encoding="UTF-8"?>')
        if indent:
            pieces.append("\n")
    _serialize_element(root, pieces, indent, 0)
    return "".join(pieces)


def _serialize_element(
    element: XmlElement, pieces: list[str], indent: int, depth: int
) -> None:
    pad = " " * (indent * depth) if indent else ""
    pieces.append(f"{pad}<{_check_name(element.tag)}")
    for key in element.attrs:
        pieces.append(f' {_check_name(key)}="{_escape(element.attrs[key], _ATTR_ESCAPES)}"')
    if not element.content:
        pieces.append("/>")
        if indent:
            pieces.append("\n")
        return
    pieces.append(">")
    element_only = all(isinstance(item, XmlElement) for item in element.content)
    if indent and element_only:
        pieces.append("\n")
        for item in element.content:
            _serialize_element(item, pieces, indent, depth + 1)  # type: ignore[arg-type]
        pieces.append(pad)
    else:
        for item in element.content:
            if isinstance(item, str):
                pieces.append(_escape(item, _TEXT_ESCAPES))
            else:
                _serialize_element(item, pieces, 0, 0)
    pieces.append(f"</{element.tag}>")
    if indent:
        pieces.append("\n")


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}


class _Parser:
    """A single-pass recursive-descent parser over the input string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    # -- low-level helpers ---------------------------------------------------

    def error(self, message: str) -> XmlSyntaxError:
        return XmlSyntaxError(message, position=self.pos)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def skip_misc(self) -> None:
        """Skip whitespace, comments and the XML declaration."""
        while True:
            self.skip_whitespace()
            if self.startswith("<!--"):
                end = self.text.find("-->", self.pos + 4)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.startswith("<?"):
                end = self.text.find("?>", self.pos + 2)
                if end < 0:
                    raise self.error("unterminated declaration")
                self.pos = end + 2
            else:
                return

    def read_name(self) -> str:
        start = self.pos
        if self.peek() not in _NAME_START:
            raise self.error("expected XML name")
        self.pos += 1
        while self.peek() in _NAME_CHARS:
            self.pos += 1
        return self.text[start:self.pos]

    def read_entity(self) -> str:
        self.expect("&")
        end = self.text.find(";", self.pos)
        if end < 0 or end - self.pos > 10:
            raise self.error("unterminated entity reference")
        body = self.text[self.pos:end]
        self.pos = end + 1
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        if body in _ENTITIES:
            return _ENTITIES[body]
        raise self.error(f"unknown entity &{body};")

    # -- grammar -------------------------------------------------------------

    def parse_document(self) -> XmlElement:
        self.skip_misc()
        if not self.startswith("<"):
            raise self.error("expected root element")
        root = self.parse_element()
        self.skip_misc()
        if self.pos != self.length:
            raise self.error("content after document root")
        return root

    def parse_element(self) -> XmlElement:
        self.expect("<")
        tag = self.read_name()
        attrs = self.parse_attributes()
        if self.startswith("/>"):
            self.pos += 2
            return XmlElement(tag, attrs)
        self.expect(">")
        content = self.parse_content(tag)
        return XmlElement(tag, attrs, content)

    def parse_attributes(self) -> dict[str, str]:
        attrs: dict[str, str] = {}
        while True:
            self.skip_whitespace()
            if self.peek() in (">", "/") or self.pos >= self.length:
                return attrs
            name = self.read_name()
            self.skip_whitespace()
            self.expect("=")
            self.skip_whitespace()
            quote = self.peek()
            if quote not in ('"', "'"):
                raise self.error("attribute value must be quoted")
            self.pos += 1
            value_pieces: list[str] = []
            while self.peek() != quote:
                if self.pos >= self.length:
                    raise self.error("unterminated attribute value")
                if self.peek() == "&":
                    value_pieces.append(self.read_entity())
                elif self.peek() == "<":
                    raise self.error("'<' not allowed in attribute value")
                else:
                    value_pieces.append(self.peek())
                    self.pos += 1
            self.pos += 1
            if name in attrs:
                raise self.error(f"duplicate attribute {name!r}")
            attrs[name] = "".join(value_pieces)

    def parse_content(self, open_tag: str) -> list[XmlElement | str]:
        content: list[XmlElement | str] = []
        text_pieces: list[str] = []

        def flush_text() -> None:
            if text_pieces:
                content.append("".join(text_pieces))
                text_pieces.clear()

        while True:
            if self.pos >= self.length:
                raise self.error(f"unterminated element <{open_tag}>")
            if self.startswith("</"):
                flush_text()
                self.pos += 2
                closing = self.read_name()
                if closing != open_tag:
                    raise self.error(
                        f"mismatched closing tag </{closing}> for <{open_tag}>"
                    )
                self.skip_whitespace()
                self.expect(">")
                return content
            if self.startswith("<!--"):
                end = self.text.find("-->", self.pos + 4)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.peek() == "<":
                flush_text()
                content.append(self.parse_element())
            elif self.peek() == "&":
                text_pieces.append(self.read_entity())
            else:
                text_pieces.append(self.peek())
                self.pos += 1


def parse(text: str) -> XmlElement:
    """Parse an XML string and return its root :class:`XmlElement`."""
    if not isinstance(text, str):
        raise XmlSyntaxError(f"expected str, got {type(text).__name__}")
    return _Parser(text).parse_document()
