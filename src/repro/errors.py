"""Exception hierarchy shared by every repro subsystem.

Each substrate (documents, transform, messaging, workflow) and the core
integration layer raises exceptions derived from :class:`ReproError` so that
callers can catch at whatever granularity they need: a single substrate
(``except DocumentError``), one precise condition (``except
DuplicateMessageError``), or anything raised by the library (``except
ReproError``).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    # documents
    "DocumentError",
    "DocumentPathError",
    "SchemaError",
    "ValidationError",
    "WireFormatError",
    "XmlSyntaxError",
    # transform
    "TransformError",
    "MappingError",
    "NoRouteError",
    # messaging
    "MessagingError",
    "EndpointError",
    "DeliveryError",
    "DuplicateMessageError",
    "CorrelationError",
    "RetryExhaustedError",
    # workflow
    "WorkflowError",
    "DefinitionError",
    "ExpressionError",
    "InstanceError",
    "ActivityError",
    "PersistenceError",
    "MigrationError",
    "WorklistError",
    # core / B2B
    "IntegrationError",
    "BindingError",
    "RuleError",
    "NoApplicableRuleError",
    "PartnerError",
    "AgreementError",
    "BackendError",
    "ProtocolError",
    "ChangeError",
    "VerificationError",
]


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was assembled or configured inconsistently."""


# ---------------------------------------------------------------------------
# Document substrate
# ---------------------------------------------------------------------------


class DocumentError(ReproError):
    """Base class for document-model and wire-format errors."""


class DocumentPathError(DocumentError):
    """A document path did not resolve (bad segment, index out of range...)."""


class SchemaError(DocumentError):
    """A document schema is itself malformed."""


class ValidationError(DocumentError):
    """A document does not conform to its schema.

    Carries the list of individual violations in :attr:`violations`.
    """

    def __init__(self, message: str, violations: list[str] | None = None):
        super().__init__(message)
        self.violations: list[str] = violations or []


class WireFormatError(DocumentError):
    """A wire representation (EDI, IDoc, ...) could not be parsed or built."""


class XmlSyntaxError(WireFormatError):
    """The minimal XML parser rejected its input."""

    def __init__(self, message: str, position: int = -1):
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


# ---------------------------------------------------------------------------
# Transformation substrate
# ---------------------------------------------------------------------------


class TransformError(ReproError):
    """Base class for transformation errors."""


class MappingError(TransformError):
    """A mapping rule failed to apply to a concrete document."""


class NoRouteError(TransformError):
    """No transformation (or chain of them) connects two formats."""


# ---------------------------------------------------------------------------
# Messaging substrate
# ---------------------------------------------------------------------------


class MessagingError(ReproError):
    """Base class for network / transport / reliable-messaging errors."""


class EndpointError(MessagingError):
    """An endpoint address is unknown or already registered."""


class DeliveryError(MessagingError):
    """A message could not be delivered (and the failure is terminal)."""


class DuplicateMessageError(MessagingError):
    """A message id was seen before by a duplicate-detecting receiver."""


class CorrelationError(MessagingError):
    """A reply or acknowledgment could not be correlated to a request."""


class RetryExhaustedError(MessagingError):
    """Reliable delivery gave up after the configured number of retries."""

    def __init__(self, message: str, attempts: int = 0):
        super().__init__(message)
        self.attempts = attempts


# ---------------------------------------------------------------------------
# Workflow substrate
# ---------------------------------------------------------------------------


class WorkflowError(ReproError):
    """Base class for workflow definition and execution errors."""


class DefinitionError(WorkflowError):
    """A workflow type is structurally invalid."""


class ExpressionError(WorkflowError):
    """A condition/data expression failed to parse or evaluate.

    Carries the offending expression text in :attr:`expression` when known
    (runtime evaluation failures always set it).
    """

    def __init__(self, message: str, expression: str = ""):
        super().__init__(message)
        self.expression = expression


class InstanceError(WorkflowError):
    """An operation was applied to a workflow instance in the wrong state."""


class ActivityError(WorkflowError):
    """An activity implementation failed or is missing from the registry."""


class PersistenceError(WorkflowError):
    """The workflow database rejected a load or store."""


class MigrationError(WorkflowError):
    """Workflow instance/type migration between engines failed."""


class WorklistError(WorkflowError):
    """A work item operation (claim, complete) was invalid."""


# ---------------------------------------------------------------------------
# Core integration layer
# ---------------------------------------------------------------------------


class IntegrationError(ReproError):
    """Base class for public/private process and B2B engine errors."""


class BindingError(IntegrationError):
    """A binding is mis-wired or failed while routing a message."""


class RuleError(IntegrationError):
    """A business rule failed to evaluate.

    This is the paper's explicit ``result := error`` case: when no rule in a
    rule set applies to a (source, target) pair the engine must surface an
    error rather than guess (Section 4.3).
    """


class NoApplicableRuleError(RuleError):
    """No business rule in the set applies to the given source/target."""

    def __init__(self, function: str, source: str, target: str):
        super().__init__(
            f"no business rule in {function!r} applies to "
            f"source={source!r} target={target!r}"
        )
        self.function = function
        self.source = source
        self.target = target


class PartnerError(IntegrationError):
    """A trading partner is unknown or inconsistently defined."""


class AgreementError(IntegrationError):
    """No trading partner agreement covers a requested exchange."""


class BackendError(IntegrationError):
    """A back-end application simulator rejected an operation."""


class ProtocolError(IntegrationError):
    """A B2B protocol constraint was violated (bad sequence, wrong format)."""


class ChangeError(IntegrationError):
    """A change scenario could not be applied to a model."""


class VerificationError(IntegrationError):
    """Static verification of an integration model found errors.

    Raised by ``IntegrationModel.verify(strict=True)``; carries the error
    diagnostics in :attr:`diagnostics`.
    """

    def __init__(self, message: str, diagnostics: list | None = None):
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])
