"""Messaging substrate: simulated networks, transports, reliable delivery.

The paper assumes (Section 1) that messages between trading partners can be
"lost ... incorrect ... or duplicate", and that B2B protocol stacks such as
RNIF compensate with "message level acknowledgments, time-outs and sending
retries" (Section 5.1).  This package provides:

* :mod:`repro.messaging.network` — a deterministic discrete-event network
  with configurable loss, duplication, corruption and latency;
* :mod:`repro.messaging.envelope` — message envelopes with ids,
  conversations and correlation;
* :mod:`repro.messaging.transport` — endpoints on the network, plus a
  store-and-forward Value Added Network mailbox service (the pre-Internet
  EDI transport the paper's introduction describes);
* :mod:`repro.messaging.reliable` — an RNIF-like reliable-messaging layer
  (acknowledgments, retry timers, duplicate suppression) delivering
  exactly-once above the lossy network.
"""

from repro.messaging.envelope import IdGenerator, Message
from repro.messaging.network import NetworkConditions, SimulatedNetwork
from repro.messaging.transport import Endpoint, ValueAddedNetwork
from repro.messaging.reliable import ReliableEndpoint, RetryPolicy

__all__ = [
    "Message",
    "IdGenerator",
    "NetworkConditions",
    "SimulatedNetwork",
    "Endpoint",
    "ValueAddedNetwork",
    "ReliableEndpoint",
    "RetryPolicy",
]
