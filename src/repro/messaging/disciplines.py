"""Transport discipline names shared by the protocol and core layers.

Kept in the messaging substrate (a leaf package) so that both
:mod:`repro.b2b.protocol` and :mod:`repro.core.integration` can name the
disciplines without importing each other.
"""

TRANSPORT_RELIABLE = "reliable"   # RNIF-style: acks, time-outs, retries
TRANSPORT_VAN = "van"             # store-and-forward mailboxes
TRANSPORT_PLAIN = "plain"         # point-to-point, no retransmission

ALL_TRANSPORTS = (TRANSPORT_RELIABLE, TRANSPORT_VAN, TRANSPORT_PLAIN)

__all__ = ["TRANSPORT_RELIABLE", "TRANSPORT_VAN", "TRANSPORT_PLAIN", "ALL_TRANSPORTS"]
