"""Message envelopes exchanged between enterprises.

A :class:`Message` carries a *wire-format string body* (never a live
document object — enterprises share "business data ... not data about
workflow instances, their state or their type", Section 3) plus the
envelope metadata every B2B protocol needs: sender/receiver addresses, a
message id, a conversation id grouping one business exchange (e.g. one
PO--POA round trip), and a correlation id pointing back at the message this
one answers or acknowledges.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import MessagingError

__all__ = ["Message", "IdGenerator", "KIND_BUSINESS", "KIND_ACK", "KIND_EXCEPTION"]

KIND_BUSINESS = "business"
KIND_ACK = "ack"
KIND_EXCEPTION = "exception"

_KINDS = (KIND_BUSINESS, KIND_ACK, KIND_EXCEPTION)


class IdGenerator:
    """Deterministic id factory (``<prefix>-000001`` ...).

    Wall-clock-free so that simulation runs are reproducible.
    """

    def __init__(self, prefix: str):
        if not prefix:
            raise MessagingError("id prefix must be non-empty")
        self.prefix = prefix
        self._counter = itertools.count(1)

    def next(self) -> str:
        """Return the next id."""
        return f"{self.prefix}-{next(self._counter):06d}"


@dataclass(frozen=True)
class Message:
    """An immutable message envelope.

    :param message_id: globally unique id (duplicate detection key).
    :param sender: network address of the sending enterprise.
    :param receiver: network address of the receiving enterprise.
    :param kind: ``business`` payload, transport-level ``ack``, or
        ``exception`` notification.
    :param protocol: B2B protocol name governing this exchange
        (e.g. ``"rosettanet"``); transport acks inherit it.
    :param doc_type: business document kind in the body (empty for acks).
    :param body: the wire-format string payload (empty for acks).
    :param conversation_id: groups the messages of one business exchange.
    :param correlation_id: id of the message this one answers/acknowledges.
    :param headers: protocol-specific extras (PIP code, attempt number...).
    :param sent_at: logical send timestamp, stamped by the endpoint.
    """

    message_id: str
    sender: str
    receiver: str
    kind: str = KIND_BUSINESS
    protocol: str = ""
    doc_type: str = ""
    body: str = ""
    conversation_id: str = ""
    correlation_id: str = ""
    headers: dict[str, Any] = field(default_factory=dict)
    sent_at: float = 0.0

    def __post_init__(self) -> None:
        if not self.message_id:
            raise MessagingError("message_id must be non-empty")
        if not self.sender or not self.receiver:
            raise MessagingError(
                f"message {self.message_id} needs sender and receiver"
            )
        if self.kind not in _KINDS:
            raise MessagingError(f"unknown message kind {self.kind!r}")

    def ack(self, ack_id: str, sent_at: float = 0.0) -> "Message":
        """Build the transport acknowledgment for this message."""
        return Message(
            message_id=ack_id,
            sender=self.receiver,
            receiver=self.sender,
            kind=KIND_ACK,
            protocol=self.protocol,
            conversation_id=self.conversation_id,
            correlation_id=self.message_id,
            sent_at=sent_at,
        )

    def with_body(self, body: str) -> "Message":
        """Return a copy with a different body (used by fault injection)."""
        return replace(self, body=body)

    def stamped(self, sent_at: float) -> "Message":
        """Return a copy stamped with the logical send time."""
        return replace(self, sent_at=sent_at)

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-compatible representation (audit trails)."""
        return {
            "message_id": self.message_id,
            "sender": self.sender,
            "receiver": self.receiver,
            "kind": self.kind,
            "protocol": self.protocol,
            "doc_type": self.doc_type,
            "body": self.body,
            "conversation_id": self.conversation_id,
            "correlation_id": self.correlation_id,
            "headers": dict(self.headers),
            "sent_at": self.sent_at,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Message":
        """Rebuild a message serialized with :meth:`to_dict`."""
        try:
            return cls(**payload)
        except TypeError as exc:
            raise MessagingError(f"malformed message payload: {exc}") from None
