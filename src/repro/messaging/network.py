"""Deterministic simulated network between enterprises.

The Internet of Figure 1, reduced to what the reproduction needs: messages
sent between registered addresses experience configurable **loss**,
**duplication**, **corruption** and **latency** (variable latency yields
reordering).  Everything is driven by the shared
:class:`~repro.sim.EventScheduler` and a seeded RNG, so a run is a pure
function of (topology, workload, conditions, seed) — which is what lets the
reliability benchmarks sweep loss rates reproducibly.

Per-link condition overrides support asymmetric experiments (e.g. only the
seller's inbound link is lossy), and :meth:`SimulatedNetwork.partition`
models a partner being unreachable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import EndpointError, MessagingError
from repro.messaging.envelope import Message
from repro.runtime import Kernel, MessageDelivered, MessageDropped, MessageSent, Runtime
from repro.sim import EventScheduler

__all__ = ["NetworkConditions", "NetworkStats", "SimulatedNetwork"]

Handler = Callable[[Message], None]


@dataclass(frozen=True)
class NetworkConditions:
    """Link behaviour knobs.

    :param loss_rate: probability a transmission is silently dropped.
    :param duplicate_rate: probability a delivered message arrives twice.
    :param corrupt_rate: probability the body is damaged in flight.
    :param min_latency / max_latency: uniform delivery-delay bounds;
        overlapping windows of consecutive sends produce reordering.
    """

    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    min_latency: float = 0.01
    max_latency: float = 0.05

    def __post_init__(self) -> None:
        for name in ("loss_rate", "duplicate_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise MessagingError(f"{name} must be in [0, 1], got {value}")
        if self.min_latency < 0 or self.max_latency < self.min_latency:
            raise MessagingError(
                f"invalid latency window [{self.min_latency}, {self.max_latency}]"
            )

    @classmethod
    def perfect(cls) -> "NetworkConditions":
        """A loss-free, constant-latency link (unit and baseline tests)."""
        return cls(min_latency=0.01, max_latency=0.01)


@dataclass
class NetworkStats:
    """Counters the reliability experiments report."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
        }


class SimulatedNetwork:
    """The event-scheduled network connecting enterprise endpoints.

    The network owns (or is handed) the simulation's runtime kernel: every
    component sharing this network — engines, B2B engines, reliable
    endpoints — reaches the kernel through ``network.runtime``, so one
    event stream covers the whole community.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        conditions: NetworkConditions | None = None,
        seed: int = 7,
        runtime: Runtime | None = None,
    ):
        self.scheduler = scheduler
        self.conditions = conditions or NetworkConditions.perfect()
        self.runtime = runtime or Kernel(clock=scheduler.clock)
        self._rng = random.Random(seed)
        self._handlers: dict[str, Handler] = {}
        self._link_conditions: dict[tuple[str, str], NetworkConditions] = {}
        self._partitioned: set[str] = set()
        self.stats = NetworkStats()
        self.link_stats: dict[tuple[str, str], NetworkStats] = {}

    def _link(self, message: Message) -> NetworkStats:
        key = (message.sender, message.receiver)
        stats = self.link_stats.get(key)
        if stats is None:
            stats = self.link_stats[key] = NetworkStats()
        return stats

    def _emit_drop(self, message: Message, reason: str) -> None:
        self.stats.dropped += 1
        self._link(message).dropped += 1
        self.runtime.emit(
            MessageDropped,
            "network",
            message_id=message.message_id,
            sender=message.sender,
            receiver=message.receiver,
            reason=reason,
        )

    # -- topology -------------------------------------------------------------

    def register(self, address: str, handler: Handler) -> None:
        """Attach ``handler`` as the receiver for ``address``."""
        if not address:
            raise EndpointError("address must be non-empty")
        if address in self._handlers:
            raise EndpointError(f"address {address!r} already registered")
        self._handlers[address] = handler

    def unregister(self, address: str) -> None:
        """Detach ``address`` (subsequent sends to it are dropped)."""
        self._handlers.pop(address, None)

    def is_registered(self, address: str) -> bool:
        """Return True when ``address`` has a receiver."""
        return address in self._handlers

    def set_link_conditions(
        self, sender: str, receiver: str, conditions: NetworkConditions
    ) -> None:
        """Override conditions for the directed link ``sender -> receiver``."""
        self._link_conditions[(sender, receiver)] = conditions

    def partition(self, address: str) -> None:
        """Make ``address`` unreachable (all traffic to it is dropped)."""
        self._partitioned.add(address)

    def heal(self, address: str) -> None:
        """Reconnect a partitioned ``address``."""
        self._partitioned.discard(address)

    # -- traffic ----------------------------------------------------------------

    def stats_for(self, sender: str, receiver: str) -> NetworkStats:
        """Counters for the directed link ``sender -> receiver``.

        Returns a zeroed (unattached) record for links that never carried
        traffic, so callers can read without guards.
        """
        return self.link_stats.get((sender, receiver), NetworkStats())

    def link_report(self) -> dict[str, dict[str, int]]:
        """All per-link counters, keyed ``"<sender>-><receiver>"``."""
        return {
            f"{sender}->{receiver}": stats.as_dict()
            for (sender, receiver), stats in sorted(self.link_stats.items())
        }

    def send(self, message: Message) -> None:
        """Transmit ``message``; delivery (if any) happens via the scheduler."""
        self.stats.sent += 1
        self._link(message).sent += 1
        self.runtime.emit(
            MessageSent,
            "network",
            message_id=message.message_id,
            sender=message.sender,
            receiver=message.receiver,
            kind=message.kind,
            protocol=message.protocol,
            doc_type=message.doc_type,
        )
        conditions = self._link_conditions.get(
            (message.sender, message.receiver), self.conditions
        )
        if message.receiver in self._partitioned:
            self._emit_drop(message, "partitioned")
            return
        if self._rng.random() < conditions.loss_rate:
            self._emit_drop(message, "lost")
            return
        copies = 1
        if self._rng.random() < conditions.duplicate_rate:
            copies = 2
            self.stats.duplicated += 1
            self._link(message).duplicated += 1
        for _ in range(copies):
            delivered = message
            if self._rng.random() < conditions.corrupt_rate:
                delivered = self._corrupt(message)
                self.stats.corrupted += 1
                self._link(message).corrupted += 1
            latency = self._rng.uniform(conditions.min_latency, conditions.max_latency)
            self.scheduler.after(
                latency,
                lambda msg=delivered: self._deliver(msg),
                label=f"deliver {message.message_id} to {message.receiver}",
            )

    def _corrupt(self, message: Message) -> Message:
        """Damage the body so wire-format parsers reject it downstream.

        Corruption is modelled as a cut transmission (the body truncated at
        a random point) because truncation is *detectable* by every parser;
        a flipped character inside a free-text field would be silently
        accepted, which is realistic but useless for fault-path tests.
        """
        body = message.body
        if not body:
            return message
        position = self._rng.randrange(len(body))
        return message.with_body(body[:position] + "\x00GARBLED")

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.receiver)
        if handler is None or message.receiver in self._partitioned:
            self._emit_drop(message, "unreachable")
            return
        self.stats.delivered += 1
        self._link(message).delivered += 1
        self.runtime.emit(
            MessageDelivered,
            "network",
            message_id=message.message_id,
            sender=message.sender,
            receiver=message.receiver,
            kind=message.kind,
        )
        handler(message)
