"""RNIF-like reliable messaging: acks, retry timers, duplicate suppression.

Section 5.1 of the paper: "RNIF provides a specification how messages are
exchanged reliably over the Internet using techniques like message level
acknowledgments, time-outs and sending retries ... PIPs assume a reliable
message exchange layer and this is provided by RNIF."

:class:`ReliableEndpoint` is that layer.  Public processes hand it business
messages and receive business messages from it; acknowledgments, retries and
duplicates never reach them — exactly the abstraction split that makes
"public process has to model transport acknowledgments" a *local* change in
Section 4.5.

Guarantees over an arbitrarily lossy/duplicating :class:`SimulatedNetwork`:

* **at-least-once transmission** — unacknowledged messages are re-sent up to
  ``RetryPolicy.max_retries`` times, then reported as failed;
* **at-most-once delivery** — receivers remember seen message ids and
  re-acknowledge duplicates without re-delivering them;

together: exactly-once delivery whenever any of the attempts gets through
(property-tested in ``tests/messaging/test_reliable.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import MessagingError, RetryExhaustedError
from repro.messaging.envelope import KIND_ACK, KIND_BUSINESS, Message
from repro.messaging.transport import Endpoint
from repro.runtime import DeliveryFailed, RetryScheduled
from repro.sim import ScheduledEvent

__all__ = ["RetryPolicy", "ReliableStats", "ReliableEndpoint"]

DeliveryHandler = Callable[[Message], None]
FailureHandler = Callable[[Message, RetryExhaustedError], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry knobs for one reliable endpoint.

    :param ack_timeout: time to wait for an acknowledgment before re-sending.
    :param max_retries: re-sends after the initial transmission; when they
        are exhausted the message is reported failed.
    :param backoff: multiplier applied to the timeout after every retry
        (RNIF profiles typically back off).
    """

    ack_timeout: float = 1.0
    max_retries: int = 3
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0:
            raise MessagingError(f"ack_timeout must be > 0, got {self.ack_timeout}")
        if self.max_retries < 0:
            raise MessagingError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 1.0:
            raise MessagingError(f"backoff must be >= 1, got {self.backoff}")

    def timeout_for_attempt(self, attempt: int) -> float:
        """Return the ack timeout for transmission number ``attempt`` (1-based)."""
        return self.ack_timeout * (self.backoff ** (attempt - 1))


@dataclass
class ReliableStats:
    """Counters for the reliability overhead experiment (E-MSG)."""

    business_sent: int = 0
    retries: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    duplicates_suppressed: int = 0
    delivered: int = 0
    failed: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "business_sent": self.business_sent,
            "retries": self.retries,
            "acks_sent": self.acks_sent,
            "acks_received": self.acks_received,
            "duplicates_suppressed": self.duplicates_suppressed,
            "delivered": self.delivered,
            "failed": self.failed,
        }


@dataclass
class _PendingSend:
    message: Message
    attempt: int = 1
    timer: ScheduledEvent | None = None
    on_delivered: Callable[[Message], None] | None = None
    on_failed: FailureHandler | None = None


class ReliableEndpoint:
    """Reliable-messaging wrapper around a raw :class:`Endpoint`.

    :param endpoint: the raw network endpoint to wrap (its push handler is
        taken over by this wrapper).
    :param policy: retry policy for outbound messages.
    :param dedup_window: how many delivered message ids to remember for
        duplicate suppression (bounded so long simulations don't grow
        without limit; well above any in-flight population).
    """

    def __init__(
        self,
        endpoint: Endpoint,
        policy: RetryPolicy | None = None,
        dedup_window: int = 10_000,
    ):
        self.endpoint = endpoint
        self.policy = policy or RetryPolicy()
        self.stats = ReliableStats()
        self._pending: dict[str, _PendingSend] = {}
        self._seen: dict[str, None] = {}
        self._dedup_window = dedup_window
        self._handler: DeliveryHandler | None = None
        self._failure_handler: FailureHandler | None = None
        endpoint.on_message(self._on_raw_message)

    @property
    def address(self) -> str:
        """The underlying network address."""
        return self.endpoint.address

    @property
    def scheduler(self):
        """The shared event scheduler (convenience for protocol timers)."""
        return self.endpoint.network.scheduler

    @property
    def runtime(self):
        """The simulation's runtime kernel (shared via the network)."""
        return self.endpoint.network.runtime

    # -- application-facing API ------------------------------------------------

    def on_message(self, handler: DeliveryHandler | None) -> None:
        """Register the business-message handler (exactly-once delivery)."""
        self._handler = handler

    def on_failure(self, handler: FailureHandler | None) -> None:
        """Register the default handler for sends that exhaust retries."""
        self._failure_handler = handler

    def send_reliable(
        self,
        message: Message,
        on_delivered: Callable[[Message], None] | None = None,
        on_failed: FailureHandler | None = None,
    ) -> None:
        """Send ``message`` with at-least-once retransmission.

        ``on_delivered`` fires when the receiver's acknowledgment arrives;
        ``on_failed`` (or the endpoint-level failure handler) fires when
        retries are exhausted.
        """
        if message.kind != KIND_BUSINESS:
            raise MessagingError("send_reliable only carries business messages")
        if message.message_id in self._pending:
            raise MessagingError(
                f"message {message.message_id} is already in flight"
            )
        pending = _PendingSend(message, on_delivered=on_delivered, on_failed=on_failed)
        self._pending[message.message_id] = pending
        self.stats.business_sent += 1
        self._transmit(pending)

    def in_flight(self) -> int:
        """Return the number of unacknowledged outbound messages."""
        return len(self._pending)

    def restore_dedup(self, message_ids: Iterable[str]) -> int:
        """Re-seed the duplicate-suppression window after a crash recovery.

        The dedup window is the at-most-once half of the exactly-once
        guarantee; a recovered endpoint that forgot it would re-deliver
        any business message a partner retries across the crash.
        Recovery feeds it the delivered message ids the journal proves
        were already handed to the application
        (:meth:`repro.runtime.recovery.Projector.dedup_ids`).  Returns
        the number of ids newly remembered.
        """
        restored = 0
        for message_id in message_ids:
            if message_id not in self._seen:
                self._remember(message_id)
                restored += 1
        return restored

    # -- internals ---------------------------------------------------------------

    def _transmit(self, pending: _PendingSend) -> None:
        self.endpoint.send(pending.message)
        timeout = self.policy.timeout_for_attempt(pending.attempt)
        pending.timer = self.scheduler.after(
            timeout,
            lambda: self._on_timeout(pending.message.message_id),
            label=f"ack-timeout {pending.message.message_id}",
        )

    def _on_timeout(self, message_id: str) -> None:
        pending = self._pending.get(message_id)
        if pending is None:
            return
        if pending.attempt > self.policy.max_retries:
            del self._pending[message_id]
            self.stats.failed += 1
            self.runtime.emit(
                DeliveryFailed,
                self.address,
                message_id=message_id,
                receiver=pending.message.receiver,
                attempts=pending.attempt,
            )
            error = RetryExhaustedError(
                f"message {message_id} to {pending.message.receiver} "
                f"unacknowledged after {pending.attempt} transmission(s)",
                attempts=pending.attempt,
            )
            handler = pending.on_failed or self._failure_handler
            if handler is None:
                raise error
            handler(pending.message, error)
            return
        pending.attempt += 1
        self.stats.retries += 1
        self.runtime.emit(
            RetryScheduled,
            self.address,
            message_id=message_id,
            receiver=pending.message.receiver,
            attempt=pending.attempt,
            timeout=self.policy.timeout_for_attempt(pending.attempt),
        )
        self._transmit(pending)

    def _on_raw_message(self, message: Message) -> None:
        if message.kind == KIND_ACK:
            self._on_ack(message)
            return
        self._acknowledge(message)
        if message.message_id in self._seen:
            self.stats.duplicates_suppressed += 1
            return
        self._remember(message.message_id)
        self.stats.delivered += 1
        if self._handler is not None:
            self._handler(message)

    def _on_ack(self, ack: Message) -> None:
        self.stats.acks_received += 1
        pending = self._pending.pop(ack.correlation_id, None)
        if pending is None:
            return  # ack for a retry we already accounted for
        if pending.timer is not None:
            pending.timer.cancel()
        if pending.on_delivered is not None:
            pending.on_delivered(pending.message)

    def _acknowledge(self, message: Message) -> None:
        ack = message.ack(
            ack_id=self.endpoint.next_message_id(),
            sent_at=self.scheduler.clock.now(),
        )
        self.endpoint.send(ack)
        self.stats.acks_sent += 1

    def _remember(self, message_id: str) -> None:
        self._seen[message_id] = None
        if len(self._seen) > self._dedup_window:
            oldest = next(iter(self._seen))
            del self._seen[oldest]
