"""Endpoints on the simulated network, and a VAN mailbox service.

An :class:`Endpoint` is an enterprise's attachment point: it stamps and
sends outbound messages and dispatches inbound ones to registered handlers
(or queues them for polling — both push and pull consumption are used by
the protocol layer).

A :class:`ValueAddedNetwork` models the paper's pre-Internet EDI transport
(Section 1): a trusted store-and-forward intermediary with per-subscriber
mailboxes.  Senders post interchanges; receivers poll their mailbox on
their own schedule.  The VAN never loses messages — its trade-off is batch
latency, not unreliability — which is why the EDI protocol in
:mod:`repro.b2b.edi_van` does not need the RNIF-style retry machinery.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import EndpointError
from repro.messaging.envelope import IdGenerator, Message
from repro.messaging.network import SimulatedNetwork

__all__ = ["Endpoint", "ValueAddedNetwork"]

Handler = Callable[[Message], None]


class Endpoint:
    """An enterprise's send/receive port on the simulated network.

    :param address: unique network address (conventionally the enterprise id).
    :param network: the shared :class:`SimulatedNetwork`.

    Inbound messages go to the handler registered with :meth:`on_message`;
    when none is set they accumulate in :attr:`inbox` for :meth:`poll`.
    """

    def __init__(self, address: str, network: SimulatedNetwork):
        self.address = address
        self.network = network
        self.inbox: deque[Message] = deque()
        self._handler: Handler | None = None
        self._ids = IdGenerator(f"MSG-{address}")
        self.sent_count = 0
        self.received_count = 0
        network.register(address, self._receive)

    # -- sending ------------------------------------------------------------

    def next_message_id(self) -> str:
        """Return a fresh message id scoped to this endpoint."""
        return self._ids.next()

    def send(self, message: Message) -> Message:
        """Stamp ``message`` with the logical time and transmit it."""
        if message.sender != self.address:
            raise EndpointError(
                f"endpoint {self.address!r} cannot send a message from "
                f"{message.sender!r}"
            )
        stamped = message.stamped(self.network.scheduler.clock.now())
        self.network.send(stamped)
        self.sent_count += 1
        return stamped

    # -- receiving ----------------------------------------------------------

    def on_message(self, handler: Handler | None) -> None:
        """Set (or clear) the push handler; queued messages are flushed."""
        self._handler = handler
        if handler is not None:
            while self.inbox:
                handler(self.inbox.popleft())

    def poll(self) -> Message | None:
        """Pop the oldest queued message, or ``None``."""
        return self.inbox.popleft() if self.inbox else None

    def _receive(self, message: Message) -> None:
        self.received_count += 1
        if self._handler is not None:
            self._handler(message)
        else:
            self.inbox.append(message)

    def close(self) -> None:
        """Detach from the network."""
        self.network.unregister(self.address)


class ValueAddedNetwork:
    """Store-and-forward VAN with per-subscriber mailboxes.

    Unlike :class:`SimulatedNetwork` links, the VAN is lossless: a posted
    interchange stays in the receiver's mailbox until picked up.  Batch
    latency is modelled by the subscriber's polling cadence, not by the VAN.
    """

    def __init__(self):
        self._mailboxes: dict[str, deque[Message]] = {}
        self.posted_count = 0
        self.picked_up_count = 0

    def subscribe(self, address: str) -> None:
        """Open a mailbox for ``address``."""
        if address in self._mailboxes:
            raise EndpointError(f"VAN mailbox for {address!r} already exists")
        self._mailboxes[address] = deque()

    def post(self, message: Message) -> None:
        """Deposit ``message`` in the receiver's mailbox."""
        try:
            mailbox = self._mailboxes[message.receiver]
        except KeyError:
            raise EndpointError(
                f"no VAN mailbox for receiver {message.receiver!r}"
            ) from None
        mailbox.append(message)
        self.posted_count += 1

    def pick_up(self, address: str, limit: int | None = None) -> list[Message]:
        """Drain up to ``limit`` messages from ``address``'s mailbox."""
        try:
            mailbox = self._mailboxes[address]
        except KeyError:
            raise EndpointError(f"no VAN mailbox for {address!r}") from None
        batch: list[Message] = []
        while mailbox and (limit is None or len(batch) < limit):
            batch.append(mailbox.popleft())
        self.picked_up_count += len(batch)
        return batch

    def pending(self, address: str) -> int:
        """Return the number of messages waiting for ``address``."""
        try:
            return len(self._mailboxes[address])
        except KeyError:
            raise EndpointError(f"no VAN mailbox for {address!r}") from None
