"""Trading partner management: profiles, agreements, directory.

The paper's business rules and public processes are *trading partner
specific* (Sections 4.1 and 4.3): which B2B protocol a partner speaks,
which documents it exchanges, and which rule thresholds apply all hang off
the partner.  This package is the registry those decisions consult.
"""

from repro.partners.profile import TradingPartner
from repro.partners.agreement import TradingPartnerAgreement
from repro.partners.directory import PartnerDirectory

__all__ = ["TradingPartner", "TradingPartnerAgreement", "PartnerDirectory"]
