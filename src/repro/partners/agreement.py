"""Trading partner agreements.

A :class:`TradingPartnerAgreement` is the operational contract between us
and one partner: which B2B protocol governs the exchange, which document
kinds flow, and which role each side plays (the paper's RosettaNet PIPs
assign buyer/seller roles; ebXML calls the equivalent artifact a CPA —
Collaboration Protocol Agreement).  The B2B engine refuses exchanges not
covered by an active agreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AgreementError

__all__ = ["TradingPartnerAgreement", "ROLE_BUYER", "ROLE_SELLER"]

ROLE_BUYER = "buyer"
ROLE_SELLER = "seller"

STATUS_ACTIVE = "active"
STATUS_SUSPENDED = "suspended"


@dataclass
class TradingPartnerAgreement:
    """The contract for one partner/protocol pair.

    :param partner_id: the counterparty.
    :param protocol: B2B protocol name (e.g. ``"rosettanet"``).
    :param our_role: the role *we* play in exchanges under this agreement
        (``buyer`` initiates purchase orders, ``seller`` answers them);
        one agreement covers one direction of commerce, matching how PIP
        3A4 assigns fixed roles.
    :param doc_types: business document kinds allowed under the agreement.
    :param status: only ``active`` agreements admit traffic.
    """

    partner_id: str
    protocol: str
    our_role: str
    doc_types: tuple[str, ...] = ("purchase_order", "po_ack")
    status: str = STATUS_ACTIVE
    properties: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.partner_id:
            raise AgreementError("agreement needs a partner_id")
        if not self.protocol:
            raise AgreementError("agreement needs a protocol")
        if self.our_role not in (ROLE_BUYER, ROLE_SELLER):
            raise AgreementError(
                f"our_role must be buyer or seller, got {self.our_role!r}"
            )
        if not self.doc_types:
            raise AgreementError("agreement must allow at least one doc type")

    @property
    def their_role(self) -> str:
        """The counterparty's role."""
        return ROLE_SELLER if self.our_role == ROLE_BUYER else ROLE_BUYER

    def is_active(self) -> bool:
        """True when the agreement admits traffic."""
        return self.status == STATUS_ACTIVE

    def allows(self, doc_type: str) -> bool:
        """True when ``doc_type`` may flow under this agreement."""
        return self.is_active() and doc_type in self.doc_types

    def suspend(self) -> None:
        """Stop admitting traffic (partner off-boarding, disputes)."""
        self.status = STATUS_SUSPENDED

    def reactivate(self) -> None:
        """Resume admitting traffic."""
        self.status = STATUS_ACTIVE

    def key(self) -> tuple[str, str, str]:
        """Uniqueness key within a directory."""
        return (self.partner_id, self.protocol, self.our_role)
