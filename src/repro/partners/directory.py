"""The partner directory: partners + agreements, with lookup by need.

Section 4.6's scalability claim — "adding a new trading partner only
requires to add business rules, if at all" — presumes partner on-boarding
is a pure registry operation.  This directory is that registry; the change
experiments count how many *other* model elements a partner addition
touches.
"""

from __future__ import annotations

from repro.errors import AgreementError, PartnerError
from repro.partners.agreement import TradingPartnerAgreement
from repro.partners.profile import TradingPartner

__all__ = ["PartnerDirectory"]


class PartnerDirectory:
    """Registry of trading partners and their agreements."""

    def __init__(self):
        self._partners: dict[str, TradingPartner] = {}
        self._agreements: dict[tuple[str, str, str], TradingPartnerAgreement] = {}

    # -- partners ---------------------------------------------------------------

    def add_partner(self, partner: TradingPartner) -> TradingPartner:
        """Register a partner; duplicate ids are configuration errors."""
        if partner.partner_id in self._partners:
            raise PartnerError(f"partner {partner.partner_id!r} already registered")
        self._partners[partner.partner_id] = partner
        return partner

    def update_partner(self, partner: TradingPartner) -> TradingPartner:
        """Replace an existing partner's profile (e.g. after it gained a
        protocol capability)."""
        if partner.partner_id not in self._partners:
            raise PartnerError(f"unknown trading partner {partner.partner_id!r}")
        self._partners[partner.partner_id] = partner
        return partner

    def get_partner(self, partner_id: str) -> TradingPartner:
        """Return the partner with ``partner_id``."""
        try:
            return self._partners[partner_id]
        except KeyError:
            raise PartnerError(f"unknown trading partner {partner_id!r}") from None

    def has_partner(self, partner_id: str) -> bool:
        """True when ``partner_id`` is registered."""
        return partner_id in self._partners

    def remove_partner(self, partner_id: str) -> None:
        """Remove a partner and every agreement with it."""
        if partner_id not in self._partners:
            raise PartnerError(f"unknown trading partner {partner_id!r}")
        del self._partners[partner_id]
        for key in [key for key in self._agreements if key[0] == partner_id]:
            del self._agreements[key]

    def partners(self) -> list[TradingPartner]:
        """All partners, sorted by id."""
        return [self._partners[pid] for pid in sorted(self._partners)]

    def partner_by_address(self, address: str) -> TradingPartner:
        """Resolve an inbound message's sender address to a partner."""
        for partner in self._partners.values():
            if partner.address == address:
                return partner
        raise PartnerError(f"no trading partner with address {address!r}")

    # -- agreements ----------------------------------------------------------------

    def add_agreement(self, agreement: TradingPartnerAgreement) -> TradingPartnerAgreement:
        """Register an agreement; the partner must already exist."""
        if agreement.partner_id not in self._partners:
            raise PartnerError(
                f"cannot add agreement: unknown partner {agreement.partner_id!r}"
            )
        if not self._partners[agreement.partner_id].speaks(agreement.protocol):
            raise AgreementError(
                f"partner {agreement.partner_id!r} does not speak "
                f"{agreement.protocol!r}"
            )
        if agreement.key() in self._agreements:
            raise AgreementError(
                f"duplicate agreement {agreement.key()}"
            )
        self._agreements[agreement.key()] = agreement
        return agreement

    def find_agreement(
        self,
        partner_id: str,
        protocol: str | None = None,
        our_role: str | None = None,
        doc_type: str | None = None,
    ) -> TradingPartnerAgreement:
        """Return the unique active agreement matching the filters."""
        matches = [
            agreement
            for agreement in self._agreements.values()
            if agreement.partner_id == partner_id
            and agreement.is_active()
            and (protocol is None or agreement.protocol == protocol)
            and (our_role is None or agreement.our_role == our_role)
            and (doc_type is None or agreement.allows(doc_type))
        ]
        if not matches:
            raise AgreementError(
                f"no active agreement with {partner_id!r} "
                f"(protocol={protocol!r}, role={our_role!r}, doc_type={doc_type!r})"
            )
        if len(matches) > 1:
            raise AgreementError(
                f"ambiguous agreements with {partner_id!r}: "
                f"{[m.key() for m in matches]}; narrow the filters"
            )
        return matches[0]

    def agreements(self) -> list[TradingPartnerAgreement]:
        """All agreements, sorted by key."""
        return [self._agreements[key] for key in sorted(self._agreements)]

    def agreements_for_protocol(self, protocol: str) -> list[TradingPartnerAgreement]:
        """All active agreements under ``protocol``."""
        return [
            agreement
            for agreement in self.agreements()
            if agreement.protocol == protocol and agreement.is_active()
        ]
