"""Trading partner profiles."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import PartnerError

__all__ = ["TradingPartner"]


@dataclass
class TradingPartner:
    """One external organization we exchange business documents with.

    :param partner_id: stable id used in agreements, rules and envelopes
        (the paper's ``TP1``/``TP2``/``TP3``).
    :param name: display name.
    :param address: network address of the partner's endpoint (defaults to
        the partner id).
    :param protocols: B2B protocol names the partner can speak.
    :param properties: free-form attributes (DUNS number, region, tier ...)
        that business rules may consult.
    """

    partner_id: str
    name: str = ""
    address: str = ""
    protocols: tuple[str, ...] = ()
    properties: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.partner_id:
            raise PartnerError("partner_id must be non-empty")
        if not self.name:
            self.name = self.partner_id
        if not self.address:
            self.address = self.partner_id

    def speaks(self, protocol: str) -> bool:
        """True when the partner supports ``protocol``."""
        return protocol in self.protocols

    def with_protocol(self, protocol: str) -> "TradingPartner":
        """Return a copy that additionally speaks ``protocol``."""
        if self.speaks(protocol):
            return self
        return TradingPartner(
            self.partner_id,
            self.name,
            self.address,
            (*self.protocols, protocol),
            dict(self.properties),
        )
