"""Unified runtime kernel shared by all four architectures.

See :mod:`repro.runtime.kernel` for the scheduler, :mod:`repro.runtime.events`
for the lifecycle event taxonomy, and :mod:`repro.runtime.observers` for the
shipped trace/metrics observers.
"""

from repro.runtime.bus import EventBus, Subscription
from repro.runtime.events import (
    ALL_EVENT_TYPES,
    CONVERSATION_EVENTS,
    MESSAGING_EVENTS,
    WORKFLOW_EVENTS,
    ConversationCompleted,
    ConversationFailed,
    ConversationStarted,
    DeliveryFailed,
    DocumentReceived,
    DocumentSent,
    InstanceCancelled,
    InstanceCompleted,
    InstanceCreated,
    InstanceFailed,
    InstanceStarted,
    MessageDelivered,
    MessageDropped,
    MessageSent,
    RetryScheduled,
    RuntimeEvent,
    StepCompleted,
    StepFailed,
    StepSkipped,
    StepStarted,
    StepWaiting,
)
from repro.runtime.kernel import Kernel, RunQueue, Runtime, Task
from repro.runtime.observers import Histogram, MetricsObserver, TraceRecorder

__all__ = [
    "ALL_EVENT_TYPES",
    "CONVERSATION_EVENTS",
    "MESSAGING_EVENTS",
    "WORKFLOW_EVENTS",
    "ConversationCompleted",
    "ConversationFailed",
    "ConversationStarted",
    "DeliveryFailed",
    "DocumentReceived",
    "DocumentSent",
    "EventBus",
    "Histogram",
    "InstanceCancelled",
    "InstanceCompleted",
    "InstanceCreated",
    "InstanceFailed",
    "InstanceStarted",
    "Kernel",
    "MessageDelivered",
    "MessageDropped",
    "MessageSent",
    "MetricsObserver",
    "RetryScheduled",
    "RunQueue",
    "Runtime",
    "RuntimeEvent",
    "StepCompleted",
    "StepFailed",
    "StepSkipped",
    "StepStarted",
    "StepWaiting",
    "Subscription",
    "Task",
    "TraceRecorder",
]
