"""In-process event bus: the kernel's publish/subscribe backbone.

The bus is synchronous and deterministic — :meth:`EventBus.publish` calls
every matching observer before returning, in subscription order.  That
keeps traces reproducible under the discrete-event simulation and lets
tests assert on observer state immediately after driving a scenario.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.runtime.events import RuntimeEvent

__all__ = ["EventBus", "Subscription"]

Observer = Callable[[RuntimeEvent], None]


def _normalize_filter(
    events: Iterable[type[RuntimeEvent] | str] | None,
) -> frozenset[str] | None:
    """Turn a mixed iterable of event classes / type strings into a name set."""
    if events is None:
        return None
    names = set()
    for item in events:
        if isinstance(item, str):
            names.add(item)
        else:
            names.add(item.type)
    return frozenset(names)


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; lets the observer detach."""

    __slots__ = ("bus", "observer", "types", "active")

    def __init__(self, bus: "EventBus", observer: Observer,
                 types: frozenset[str] | None) -> None:
        self.bus = bus
        self.observer = observer
        self.types = types
        self.active = True

    def matches(self, event: RuntimeEvent) -> bool:
        return self.active and (self.types is None or event.type in self.types)

    def unsubscribe(self) -> None:
        """Detach the observer; safe to call more than once."""
        if self.active:
            self.active = False
            self.bus._remove(self)


class EventBus:
    """Synchronous pub/sub channel for :class:`RuntimeEvent` objects.

    ``write_ahead`` is the durability seam: when set (by
    :mod:`repro.runtime.journal`), it is invoked with each event *before*
    any subscriber — the event is on stable storage before observers can
    mutate state from it, which is what makes replay-based recovery
    exact.
    """

    def __init__(self) -> None:
        self._subscriptions: list[Subscription] = []
        self.published = 0
        self.write_ahead: Observer | None = None

    def subscribe(
        self,
        observer: Observer,
        events: Iterable[type[RuntimeEvent] | str] | None = None,
    ) -> Subscription:
        """Register ``observer`` for every event (default) or a filtered set.

        :param observer: callable invoked with each matching event
        :param events: optional iterable of event classes and/or ``type``
            strings to filter on; ``None`` subscribes to everything
        :returns: a :class:`Subscription` whose ``unsubscribe()`` detaches
        """
        subscription = Subscription(self, observer, _normalize_filter(events))
        self._subscriptions.append(subscription)
        return subscription

    def publish(self, event: RuntimeEvent) -> None:
        """Deliver ``event`` to every matching subscriber, in order."""
        if self.write_ahead is not None:
            self.write_ahead(event)
        self.published += 1
        for subscription in list(self._subscriptions):
            if subscription.matches(event):
                subscription.observer(event)

    def subscriber_count(self) -> int:
        return len(self._subscriptions)

    def _remove(self, subscription: Subscription) -> None:
        try:
            self._subscriptions.remove(subscription)
        except ValueError:
            pass
