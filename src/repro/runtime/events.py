"""Typed lifecycle events carried on the runtime kernel's event bus.

Every architecture in the repro (the three baselines and the advanced
:class:`~repro.core.integration.B2BEngine`) runs on the same
:class:`~repro.runtime.kernel.Kernel`, and the kernel's only public record
of what happened is this event stream.  Observers — trace recorders,
metrics counters, test assertions — subscribe to the bus and receive the
frozen dataclasses below.

Events fall into four families:

* **workflow** — instance/step lifecycle emitted by
  :class:`~repro.workflow.engine.WorkflowEngine`
* **messaging** — wire-level send/deliver/drop/retry emitted by
  :class:`~repro.messaging.network.SimulatedNetwork` and
  :class:`~repro.messaging.reliable.ReliableEndpoint`
* **conversation** — B2B-protocol-level document and conversation
  lifecycle emitted by :class:`~repro.core.integration.B2BEngine`
* **kernel** — scheduler-level signals emitted by the kernel itself:
  abandoned batches on drain failure and shard backpressure
  (:class:`~repro.runtime.sharding.ShardedKernel` watermarks)

Each event carries ``at`` (simulated clock time) and ``source`` (the name
of the emitting component: an engine name, an endpoint address, or
``"network"``).  The ``type`` class attribute is a stable snake_case
string used for filtering and for counting in the metrics observer.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = [
    "RuntimeEvent",
    # workflow lifecycle
    "InstanceCreated",
    "InstanceStarted",
    "InstanceCompleted",
    "InstanceFailed",
    "InstanceCancelled",
    "StepStarted",
    "StepCompleted",
    "StepSkipped",
    "StepWaiting",
    "StepFailed",
    # messaging
    "MessageSent",
    "MessageDelivered",
    "MessageDropped",
    "RetryScheduled",
    "DeliveryFailed",
    # B2B conversations
    "ConversationStarted",
    "ConversationCompleted",
    "ConversationFailed",
    "DocumentSent",
    "DocumentReceived",
    # kernel / scheduler
    "BatchAbandoned",
    "ShardSaturated",
    "ShardDrained",
    "TransformCacheSnapshot",
    "WORKFLOW_EVENTS",
    "MESSAGING_EVENTS",
    "CONVERSATION_EVENTS",
    "KERNEL_EVENTS",
    "ALL_EVENT_TYPES",
]


@dataclass(frozen=True)
class RuntimeEvent:
    """Base class for every kernel event.

    :param at: simulated clock time the event happened at
    :param source: name of the emitting component (engine name, endpoint
        address, or ``"network"``)
    """

    at: float
    source: str

    type = "runtime_event"

    def describe(self) -> str:
        """One fixed-width human-readable line (used by the trace renderer)."""
        details = " ".join(
            f"{field.name}={getattr(self, field.name)}"
            for field in fields(self)
            if field.name not in ("at", "source")
        )
        return f"t={self.at:>10.4f}  {self.source:<20} {self.type:<22} {details}"


# --------------------------------------------------------------------------
# workflow lifecycle
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class InstanceCreated(RuntimeEvent):
    """A workflow instance was instantiated from its type (not yet started)."""

    instance_id: str
    type_name: str

    type = "instance_created"


@dataclass(frozen=True)
class InstanceStarted(RuntimeEvent):
    """A created instance began executing."""

    instance_id: str
    type_name: str

    type = "instance_started"


@dataclass(frozen=True)
class InstanceCompleted(RuntimeEvent):
    """Every step of the instance reached a terminal status.

    :param duration: simulated time from instance creation to completion;
        feeds the metrics observer's duration histogram.
    """

    instance_id: str
    type_name: str
    duration: float

    type = "instance_completed"


@dataclass(frozen=True)
class InstanceFailed(RuntimeEvent):
    """A step failure marked the whole instance failed."""

    instance_id: str
    type_name: str
    error: str

    type = "instance_failed"


@dataclass(frozen=True)
class InstanceCancelled(RuntimeEvent):
    """The instance was cancelled by an external request."""

    instance_id: str
    type_name: str
    reason: str

    type = "instance_cancelled"


@dataclass(frozen=True)
class StepStarted(RuntimeEvent):
    """A ready step's activity began executing."""

    instance_id: str
    step_id: str

    type = "step_started"


@dataclass(frozen=True)
class StepCompleted(RuntimeEvent):
    """A step finished and signalled its outgoing arcs."""

    instance_id: str
    step_id: str

    type = "step_completed"


@dataclass(frozen=True)
class StepSkipped(RuntimeEvent):
    """Dead-path elimination skipped a step whose join could not fire."""

    instance_id: str
    step_id: str

    type = "step_skipped"


@dataclass(frozen=True)
class StepWaiting(RuntimeEvent):
    """An activity parked its step on an external wait key."""

    instance_id: str
    step_id: str
    wait_key: str

    type = "step_waiting"


@dataclass(frozen=True)
class StepFailed(RuntimeEvent):
    """An activity raised and the step was marked failed."""

    instance_id: str
    step_id: str
    error: str

    type = "step_failed"


# --------------------------------------------------------------------------
# messaging
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MessageSent(RuntimeEvent):
    """An endpoint handed a message to the simulated network."""

    message_id: str
    sender: str
    receiver: str
    kind: str
    protocol: str
    doc_type: str

    type = "message_sent"


@dataclass(frozen=True)
class MessageDelivered(RuntimeEvent):
    """The network delivered a message to its receiving endpoint."""

    message_id: str
    sender: str
    receiver: str
    kind: str

    type = "message_delivered"


@dataclass(frozen=True)
class MessageDropped(RuntimeEvent):
    """The network dropped a message (loss, partition, or no receiver)."""

    message_id: str
    sender: str
    receiver: str
    reason: str

    type = "message_dropped"


@dataclass(frozen=True)
class RetryScheduled(RuntimeEvent):
    """A reliable endpoint's ack timer expired and the message was re-sent."""

    message_id: str
    receiver: str
    attempt: int
    timeout: float

    type = "retry_scheduled"


@dataclass(frozen=True)
class DeliveryFailed(RuntimeEvent):
    """A reliable endpoint exhausted its retries for a message."""

    message_id: str
    receiver: str
    attempts: int

    type = "delivery_failed"


# --------------------------------------------------------------------------
# B2B conversations
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ConversationStarted(RuntimeEvent):
    """A B2B engine opened a conversation with a partner."""

    conversation_id: str
    protocol: str
    partner_id: str
    role: str

    type = "conversation_started"


@dataclass(frozen=True)
class ConversationCompleted(RuntimeEvent):
    """A conversation's public process ran to completion."""

    conversation_id: str
    protocol: str
    partner_id: str

    type = "conversation_completed"


@dataclass(frozen=True)
class ConversationFailed(RuntimeEvent):
    """A conversation was abandoned (delivery failure, closed broadcast, ...)."""

    conversation_id: str
    protocol: str
    partner_id: str
    reason: str

    type = "conversation_failed"


@dataclass(frozen=True)
class DocumentSent(RuntimeEvent):
    """A B2B engine transmitted a business document on a conversation."""

    conversation_id: str
    doc_type: str
    partner_id: str

    type = "document_sent"


@dataclass(frozen=True)
class DocumentReceived(RuntimeEvent):
    """A B2B engine accepted an inbound business document."""

    conversation_id: str
    doc_type: str
    partner_id: str

    type = "document_received"


# --------------------------------------------------------------------------
# kernel / scheduler
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchAbandoned(RuntimeEvent):
    """A drain failed and the rest of the batch was dropped.

    Emitted at the outermost drain level when a task raises: the queue is
    cleared so the next stimulus starts clean, and this event is the
    observers' only record of how many queued tasks never ran.
    """

    abandoned: int
    error: str

    type = "batch_abandoned"


@dataclass(frozen=True)
class ShardSaturated(RuntimeEvent):
    """A shard's combined queue+inbox load crossed its saturation watermark."""

    shard: int
    pending: int
    watermark: int

    type = "shard_saturated"


@dataclass(frozen=True)
class ShardDrained(RuntimeEvent):
    """A previously saturated shard's load fell back below the watermark."""

    shard: int
    pending: int

    type = "shard_drained"


@dataclass(frozen=True)
class TransformCacheSnapshot(RuntimeEvent):
    """Point-in-time counters of the content-addressed transformation cache.

    Published by :meth:`repro.transform.cache.TransformCache.publish` so the
    metrics observer sees cache effectiveness alongside the kernel's other
    scheduler-level signals.  Counters are cumulative since cache creation;
    ``entries`` is the current resident set size.
    """

    hits: int
    misses: int
    evictions: int
    bypasses: int
    entries: int

    type = "transform_cache_snapshot"


WORKFLOW_EVENTS: tuple[type[RuntimeEvent], ...] = (
    InstanceCreated,
    InstanceStarted,
    InstanceCompleted,
    InstanceFailed,
    InstanceCancelled,
    StepStarted,
    StepCompleted,
    StepSkipped,
    StepWaiting,
    StepFailed,
)

MESSAGING_EVENTS: tuple[type[RuntimeEvent], ...] = (
    MessageSent,
    MessageDelivered,
    MessageDropped,
    RetryScheduled,
    DeliveryFailed,
)

CONVERSATION_EVENTS: tuple[type[RuntimeEvent], ...] = (
    ConversationStarted,
    ConversationCompleted,
    ConversationFailed,
    DocumentSent,
    DocumentReceived,
)

KERNEL_EVENTS: tuple[type[RuntimeEvent], ...] = (
    BatchAbandoned,
    ShardSaturated,
    ShardDrained,
    TransformCacheSnapshot,
)

ALL_EVENT_TYPES: frozenset[str] = frozenset(
    cls.type
    for cls in (
        *WORKFLOW_EVENTS,
        *MESSAGING_EVENTS,
        *CONVERSATION_EVENTS,
        *KERNEL_EVENTS,
    )
)
