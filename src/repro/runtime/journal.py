"""Durable event-sourced journal + snapshot store under the kernel.

Every layer of the reproduction keeps its state in memory — the workflow
database, conversation state, reliable-messaging dedup windows.  A hub
crash mid-RNIF-exchange therefore loses or duplicates orders, which the
paper's architecture (a hub that *absorbs* partner-facing failure) cannot
afford.  This module makes the PR-1 lifecycle event bus an actual
event-sourcing substrate:

* :class:`JournalWriter` — an append-only, checksummed, segment-rotated,
  fsync-optional log of :class:`JournalRecord` frames;
* :class:`SnapshotStore` — checksummed projection snapshots keyed by the
  journal sequence they were taken at, so recovery replays only the tail;
* :class:`KernelJournal` / :class:`ShardedJournal` — write-ahead wiring:
  the kernel bus's ``write_ahead`` hook appends each lifecycle event to
  the journal *before* any observer applies it.  The sharded variant
  keeps one journal per shard (each shard's segment bus writes only its
  own log) while stamping every record with the global submission
  sequence, so recovery can rebuild the deterministic global-order
  stream by a k-way merge.

Record framing (one ASCII line per record)::

    <seq> <kind> <payload-len> <crc32-hex8> <payload-json>\\n

``crc32`` covers the payload bytes; a torn append (crash mid-write) fails
the length or checksum test and recovery truncates the tail at the last
whole record — the corrupt-tail cases of the crash harness.  Kinds:

* ``event``   — one bus event, encoded positionally (see
  :func:`encode_event`);
* ``command`` — a write-ahead record of an external stimulus (an order
  submission, a VAN poll) logged *before* it executes; the exactly-once
  unit of the recovery contract;
* ``marker``  — out-of-band durability markers, e.g. the registry
  versions backing the incremental-lint cache, so warm verdicts can be
  trusted across restarts.

Recovery semantics live in :mod:`repro.runtime.recovery`.
"""

from __future__ import annotations

import dataclasses
import json
import operator
import os
import re
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.runtime.events import (
    ALL_EVENT_TYPES,
    CONVERSATION_EVENTS,
    KERNEL_EVENTS,
    MESSAGING_EVENTS,
    WORKFLOW_EVENTS,
    RuntimeEvent,
)

__all__ = [
    "JOURNAL_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "JournalRecord",
    "JournalError",
    "Truncation",
    "JournalWriter",
    "SnapshotStore",
    "KernelJournal",
    "ShardedJournal",
    "attach_journal",
    "encode_event",
    "decode_event",
    "read_segment_dir",
    "segment_files",
]

JOURNAL_SCHEMA = "repro-journal/1"
SNAPSHOT_SCHEMA = "repro-journal-snapshot/1"

SEGMENT_PREFIX = "segment-"
SEGMENT_SUFFIX = ".jrnl"
SHARD_DIR_PREFIX = "shard-"

KIND_EVENT = "event"
KIND_COMMAND = "command"
KIND_MARKER = "marker"


class JournalError(Exception):
    """Raised for misuse of the journal API (never for corrupt data —
    corruption is reported as a :class:`Truncation`, not an exception)."""


# ---------------------------------------------------------------------------
# Event codec: positional, per-class, hot-path cheap
# ---------------------------------------------------------------------------

_EVENT_CLASSES: dict[str, type[RuntimeEvent]] = {
    cls.type: cls
    for cls in (
        *WORKFLOW_EVENTS,
        *MESSAGING_EVENTS,
        *CONVERSATION_EVENTS,
        *KERNEL_EVENTS,
    )
}
assert set(_EVENT_CLASSES) == set(ALL_EVENT_TYPES)

# Per-class attribute getters: one C-level call extracts every field in
# declaration order (``at``/``source`` first, then subclass fields), so
# encoding stays cheap enough for the write-ahead hot path.
_FIELD_NAMES: dict[str, tuple[str, ...]] = {
    type_name: tuple(spec.name for spec in dataclasses.fields(cls))
    for type_name, cls in _EVENT_CLASSES.items()
}
_GETTERS: dict[type[RuntimeEvent], Callable[[RuntimeEvent], tuple]] = {
    cls: operator.attrgetter(*_FIELD_NAMES[type_name])
    for type_name, cls in _EVENT_CLASSES.items()
}


def encode_event(event: RuntimeEvent) -> list[Any]:
    """``[type, at, source, *fields]`` — the journal payload of an event."""
    getter = _GETTERS.get(type(event))
    if getter is None:
        raise JournalError(
            f"cannot journal unregistered event type {type(event).__name__!r}"
        )
    values = getter(event)
    if not isinstance(values, tuple):  # single-field base class edge
        values = (values,)
    return [event.type, *values]


def decode_event(payload: list[Any]) -> RuntimeEvent:
    """Inverse of :func:`encode_event`."""
    cls = _EVENT_CLASSES.get(payload[0])
    if cls is None:
        raise JournalError(f"unknown journaled event type {payload[0]!r}")
    return cls(*payload[1:])


# ---------------------------------------------------------------------------
# Record framing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal frame."""

    seq: int
    kind: str
    payload: Any
    segment: str = ""
    offset: int = 0
    end_offset: int = 0

    def event(self) -> RuntimeEvent:
        """Decode an ``event`` record's payload (raises otherwise)."""
        if self.kind != KIND_EVENT:
            raise JournalError(f"record {self.seq} is a {self.kind}, not an event")
        return decode_event(self.payload)


@dataclass(frozen=True)
class Truncation:
    """Where and why a read stopped before the physical end of the log."""

    segment: str
    offset: int
    reason: str


# Hot-path encoder, cached: json.dumps with keyword options constructs a
# fresh JSONEncoder per call (~2x slower).  sort_keys canonicalizes dict
# payloads so a record re-journaled from recovered state (snapshots
# round-trip through sorted JSON) is byte-identical to the original
# append — the crash harness compares resumed and uncrashed journals
# byte for byte.
_encode_json = json.JSONEncoder(separators=(",", ":"), sort_keys=True).encode

_KIND_BYTES = {
    KIND_EVENT: b"event",
    KIND_COMMAND: b"command",
    KIND_MARKER: b"marker",
}

# Printable ASCII minus '"' and '\\': strings in this set serialize as
# themselves between quotes, byte-identically to the JSON encoder
# (ensure_ascii mode).  Everything else falls back to the real encoder.
_SAFE_ASCII = re.compile(r'[ !#-\[\]-~]*\Z').match
_INF = float("inf")


def _fast_body(payload: list) -> bytes | None:
    """Serialize a flat list of safe scalars byte-identically to
    ``_encode_json`` — the shape of every event payload — skipping the
    JSON encoder machinery on the per-event hot path.  Returns ``None``
    when any element needs the real encoder (escapes, non-ASCII,
    non-finite floats, nested containers)."""
    parts = []
    append = parts.append
    for item in payload:
        kind = type(item)
        if kind is str:
            if _SAFE_ASCII(item) is None:
                return None
            append('"' + item + '"')
        elif kind is float:
            # NaN/inf render differently in the stdlib encoder.
            if item != item or item == _INF or item == -_INF:
                return None
            append(float.__repr__(item))
        elif kind is bool:
            append("true" if item else "false")
        elif kind is int:
            append(int.__repr__(item))
        elif item is None:
            append("null")
        else:
            return None
    return ("[" + ",".join(parts) + "]").encode("utf-8")


def _frame(seq: int, kind: str, payload: Any) -> bytes:
    if type(payload) is list:
        body = _fast_body(payload)
        if body is None:
            body = _encode_json(payload).encode("utf-8")
    else:
        body = _encode_json(payload).encode("utf-8")
    return b"%d %s %d %08x %s\n" % (
        seq,
        _KIND_BYTES.get(kind) or kind.encode("ascii"),
        len(body),
        zlib.crc32(body),
        body,
    )


# Quoted-string memo for the hot path: sources, doc types and partner
# ids repeat across millions of events, so most fields hit the cache and
# skip the safety scan.  Capped so unique ids (conversation ids) cannot
# grow it without bound.
_QUOTED: dict[str, str] = {}
_QUOTED_CAP = 4096


def _compile_event_framer(
    type_name: str, cls: type[RuntimeEvent]
) -> Callable[[int, RuntimeEvent], bytes | None] | None:
    """Codegen one straight-line framer for an event class.

    The generated function loads each field by name, validates it
    against the declared annotation (returning ``None`` to punt any
    surprise — wrong runtime type, unsafe string, non-finite float — to
    the generic encoder path), and builds the whole frame body in a
    single f-string.  No attrgetter tuple, no per-item type dispatch,
    no parts list: this is the write-ahead hook's per-event cost.
    """
    guards: list[str] = []
    exprs: list[str] = []
    for index, spec in enumerate(dataclasses.fields(cls)):
        annotation = (
            spec.type
            if isinstance(spec.type, str)
            else getattr(spec.type, "__name__", "")
        )
        var = f"v{index}"
        guards.append(f"    {var} = event.{spec.name}")
        if annotation in ("float", "int"):
            # bool is excluded by the __class__ identity checks, and a
            # non-finite float renders differently in the JSON encoder.
            guards.append(f"    c = {var}.__class__")
            guards.append(
                f"    if c is float:\n"
                f"        if {var} != {var} or {var} == _INF or {var} == -_INF:\n"
                f"            return None\n"
                f"    elif c is not int:\n"
                f"        return None"
            )
            exprs.append(f"{{{var}!r}}")
        elif annotation == "str":
            guards.append(
                f"    if {var}.__class__ is not str:\n"
                f"        return None\n"
                f"    q = _QUOTED.get({var})\n"
                f"    if q is None:\n"
                f"        if _SAFE_ASCII({var}) is None:\n"
                f"            return None\n"
                f"        q = '\\\"' + {var} + '\\\"'\n"
                f"        if len(_QUOTED) < _QUOTED_CAP:\n"
                f"            _QUOTED[{var}] = q\n"
                f"    {var} = q"
            )
            exprs.append(f"{{{var}}}")
        else:
            return None
    body_template = '["' + type_name + '",' + ",".join(exprs) + "]"
    source = "\n".join(
        [
            "def framer(seq, event):",
            *guards,
            f"    body = f'{body_template}'.encode('ascii')",
            "    return b'%d event %d %08x %s\\n'"
            " % (seq, len(body), _crc32(body), body)",
        ]
    )
    namespace: dict[str, Any] = {
        "_INF": _INF,
        "_SAFE_ASCII": _SAFE_ASCII,
        "_QUOTED": _QUOTED,
        "_QUOTED_CAP": _QUOTED_CAP,
        "_crc32": zlib.crc32,
    }
    exec(source, namespace)  # noqa: S102 - input is dataclass metadata only
    return namespace["framer"]


_FRAMERS: dict[type[RuntimeEvent], Callable[[int, RuntimeEvent], bytes | None]] = {}
for _type_name, _cls in _EVENT_CLASSES.items():
    _framer = _compile_event_framer(_type_name, _cls)
    if _framer is not None:
        _FRAMERS[_cls] = _framer


def _event_frame(seq: int, event: RuntimeEvent) -> bytes | None:
    """One-step frame for a registered event with all-safe scalar fields.

    Byte-identical to ``_frame(seq, KIND_EVENT, encode_event(event))``;
    returns ``None`` when any field needs the full encoder path (the
    caller falls back).
    """
    framer = _FRAMERS.get(type(event))
    if framer is None:
        return None
    try:
        return framer(seq, event)
    except TypeError:
        return None


# Hot-path decoder, cached: raw_decode on an already-decoded str skips
# json.loads's per-call encoding detection and wrapper overhead.
_raw_decode = json.JSONDecoder().raw_decode

_KIND_FROM_BYTES = {frame: kind for kind, frame in _KIND_BYTES.items()}


def _parse_line(line: bytes) -> tuple[int, str, Any] | str:
    """Decode one frame; returns ``(seq, kind, payload)`` or a reason string."""
    if not line.endswith(b"\n"):
        return "torn record (no terminator)"
    parts = line[:-1].split(b" ", 4)
    if len(parts) != 5:
        return "malformed header"
    raw_seq, raw_kind, raw_len, raw_crc, body = parts
    try:
        seq = int(raw_seq)
        length = int(raw_len)
        crc = int(raw_crc, 16)
    except ValueError:
        return "malformed header"
    kind = _KIND_FROM_BYTES.get(raw_kind)
    if kind is None:
        return f"unknown record kind {raw_kind.decode('ascii', errors='replace')!r}"
    if len(body) != length:
        return f"length mismatch ({len(body)} != {length})"
    if zlib.crc32(body) != crc:
        return "checksum mismatch"
    try:
        text = body.decode("utf-8")
        payload, end = _raw_decode(text)
        if end != len(text):
            return "unparseable payload"
    except (UnicodeDecodeError, ValueError):
        return "unparseable payload"
    return seq, kind, payload


# ---------------------------------------------------------------------------
# Segment files
# ---------------------------------------------------------------------------


def segment_files(directory: str | Path) -> list[Path]:
    """The directory's journal segments, in rotation order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        path
        for path in directory.iterdir()
        if path.name.startswith(SEGMENT_PREFIX) and path.name.endswith(SEGMENT_SUFFIX)
    )


def read_segment_dir(
    directory: str | Path,
) -> tuple[list[JournalRecord], list[Truncation]]:
    """Read every whole record in one segment directory.

    Stops at the first torn/corrupt record: everything before it is
    returned, the damage is reported as a :class:`Truncation`, and any
    later segments are ignored (a crash tears only the tail; data after
    a tear cannot be trusted to be causally consistent).
    """
    records: list[JournalRecord] = []
    truncations: list[Truncation] = []
    append = records.append
    for segment in segment_files(directory):
        name = segment.name
        offset = 0
        with segment.open("rb") as handle:
            for line in handle:
                parsed = _parse_line(line)
                if isinstance(parsed, str):
                    truncations.append(Truncation(name, offset, parsed))
                    return records, truncations
                seq, kind, payload = parsed
                end = offset + len(line)
                append(JournalRecord(seq, kind, payload, name, offset, end))
                offset = end
    return records, truncations


class JournalWriter:
    """Append-only checksummed segment writer.

    :param directory: segment directory (created if missing).
    :param segment_max_bytes: rotate to a fresh segment once the current
        one reaches this size.
    :param fsync: when True, ``flush()`` also forces the bytes to disk
        (``os.fsync``) — the durable-commit mode; off by default because
        the simulated crash harness truncates files rather than losing
        page cache.
    :param flush_interval: appends between automatic flushes (group
        commit); 1 flushes every record.
    """

    def __init__(
        self,
        directory: str | Path,
        segment_max_bytes: int = 4_000_000,
        fsync: bool = False,
        flush_interval: int = 64,
    ) -> None:
        if segment_max_bytes < 1:
            raise JournalError("segment_max_bytes must be >= 1")
        if flush_interval < 1:
            raise JournalError("flush_interval must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.fsync = fsync
        self.flush_interval = flush_interval
        self.records_written = 0
        self.bytes_written = 0
        self.segments_rotated = 0
        self._pending: list[bytes] = []
        self._closed = False
        existing = segment_files(self.directory)
        if existing:
            self._segment_index = int(
                existing[-1].name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
            )
            self._segment_path = existing[-1]
            self._segment_bytes = self._segment_path.stat().st_size
            self._handle = self._segment_path.open("ab")
        else:
            self._segment_index = 0
            self._open_segment()

    def _open_segment(self) -> None:
        self._segment_index += 1
        self._segment_path = (
            self.directory
            / f"{SEGMENT_PREFIX}{self._segment_index:06d}{SEGMENT_SUFFIX}"
        )
        self._segment_bytes = 0
        self._handle = self._segment_path.open("ab")

    def append(self, seq: int, kind: str, payload: Any) -> int:
        """Append one record; returns the bytes written."""
        return self.append_frame(_frame(seq, kind, payload))

    def append_frame(self, frame: bytes) -> int:
        """Append one pre-framed record; returns the bytes written.

        Frames accumulate in memory (group commit) and reach the file at
        :meth:`flush` — every ``flush_interval`` appends, on rotation,
        and on close.  Rotation happens *before* the append, so a record
        is never split across segments.
        """
        if self._closed:
            raise JournalError("journal writer is closed")
        size = len(frame)
        if self._segment_bytes and self._segment_bytes + size > self.segment_max_bytes:
            self.flush()
            self._handle.close()
            self.segments_rotated += 1
            self._open_segment()
        pending = self._pending
        pending.append(frame)
        self._segment_bytes += size
        self.bytes_written += size
        self.records_written += 1
        if len(pending) >= self.flush_interval:
            self.flush()
        return size

    def flush(self) -> None:
        """Push buffered frames to the OS (and to disk when ``fsync``)."""
        if self._closed:
            return
        if self._pending:
            self._handle.write(b"".join(self._pending))
            self._pending.clear()
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self._handle.close()
            self._closed = True


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


class SnapshotStore:
    """Checksummed projection snapshots, keyed by journal sequence.

    A snapshot holds a JSON projection of the journaled state *as of* a
    journal sequence; recovery loads the newest valid one and replays
    only the journal records after it.  A torn or bit-flipped snapshot
    fails its checksum and the store silently falls back to the previous
    one (or to full replay) — a snapshot must never make recovery worse
    than not having one.
    """

    def __init__(self, directory: str | Path, keep: int = 2) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = max(1, keep)

    def _paths(self) -> list[Path]:
        return sorted(self.directory.glob("snapshot-*.json"))

    def save(self, state: dict[str, Any], seq: int) -> Path:
        """Persist ``state`` as the snapshot at journal sequence ``seq``."""
        body = json.dumps(state, sort_keys=True, separators=(",", ":"))
        payload = {
            "schema": SNAPSHOT_SCHEMA,
            "seq": seq,
            "crc": zlib.crc32(body.encode("utf-8")),
            "state": state,
        }
        path = self.directory / f"snapshot-{seq:012d}.json"
        path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        for stale in self._paths()[: -self.keep]:
            stale.unlink()
        return path

    def load_latest(
        self, max_seq: int | None = None
    ) -> tuple[dict[str, Any], int] | None:
        """Newest valid ``(state, seq)`` with ``seq <= max_seq``, if any."""
        for path in reversed(self._paths()):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if not isinstance(payload, dict):
                continue
            if payload.get("schema") != SNAPSHOT_SCHEMA:
                continue
            state = payload.get("state")
            seq = payload.get("seq")
            if not isinstance(state, dict) or not isinstance(seq, int):
                continue
            body = json.dumps(state, sort_keys=True, separators=(",", ":"))
            if zlib.crc32(body.encode("utf-8")) != payload.get("crc"):
                continue
            if max_seq is not None and seq > max_seq:
                continue
            return state, seq
        return None


# ---------------------------------------------------------------------------
# Kernel wiring: write-ahead journaling sessions
# ---------------------------------------------------------------------------


class _JournalSessionBase:
    """Shared machinery of the single-kernel and sharded sessions."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.snapshots = SnapshotStore(self.directory)
        self.events_journaled = 0
        self.commands_journaled = 0
        self.markers_journaled = 0
        self._next_seq = 0
        self._closed = False

    # subclasses route a frame to the right segment writer
    def _append(self, writer_hint: Any, kind: str, payload: Any) -> int:
        raise NotImplementedError

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    @property
    def last_seq(self) -> int:
        """Sequence of the most recently journaled record (-1 when empty)."""
        return self._next_seq - 1

    def log_command(self, command_id: str, op: str, args: dict[str, Any]) -> int:
        """Write-ahead a command *before* executing it; returns its seq.

        This is the exactly-once anchor: a command whose record reached
        the journal is replayed by recovery; one whose record did not is
        re-submitted by the client and deduplicated against the journal.
        """
        payload = {"id": command_id, "op": op, "args": args}
        seq = self._append(None, KIND_COMMAND, payload)
        self.commands_journaled += 1
        return seq

    def mark(self, name: str, data: dict[str, Any]) -> int:
        """Journal an out-of-band durability marker (e.g. registry version)."""
        payload = {"name": name, "data": data}
        seq = self._append(None, KIND_MARKER, payload)
        self.markers_journaled += 1
        return seq

    def mark_registry_version(self, model: Any, **verify_options: Any) -> int:
        """Journal the verification digest of an integration model.

        The incremental-lint cache keys warm verdicts on this digest; by
        journaling it, a recovered hub can prove its persisted
        ``.repro-lint-cache.json`` verdicts still apply (digest equal)
        without re-linting — warm verdicts survive restarts.
        """
        from repro.verify.incremental import verification_digest

        digest, _ = verification_digest(model, verify_options)
        return self.mark(
            "registry_version",
            {
                "model": model.name,
                "digest": digest,
                "transforms_version": model.transforms.version,
            },
        )

    def snapshot(self) -> Path:
        """Persist a projection of the journal at its current position.

        The projection is rebuilt by :func:`repro.runtime.recovery.recover`
        over this session's own directory (prior snapshot + tail), which
        keeps the per-event write path free of projection work *and*
        makes every snapshot a live recovery test: a snapshot that saves
        is a journal that recovers.
        """
        from repro.runtime.recovery import recover  # avoid import cycle

        self.flush()
        recovered = recover(self.directory)
        if recovered.last_seq != self.last_seq:
            raise JournalError(
                f"snapshot recovery saw seq {recovered.last_seq}, "
                f"session wrote through {self.last_seq}"
            )
        return self.snapshots.save(recovered.projector.state(), self.last_seq)

    def flush(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class KernelJournal(_JournalSessionBase):
    """Write-ahead journaling for a single-queue :class:`Kernel`.

    Hooks the kernel bus's ``write_ahead`` seam: every published event is
    framed, checksummed and appended before any observer sees it.  The
    hook does nothing but encode + append — projection happens lazily at
    :meth:`snapshot`/recovery time, keeping durability cost per event to
    the codec and the buffered write.
    """

    def __init__(
        self,
        directory: str | Path,
        kernel: Any,
        segment_max_bytes: int = 4_000_000,
        fsync: bool = False,
        flush_interval: int = 64,
    ) -> None:
        super().__init__(directory)
        self.kernel = kernel
        self.writer = JournalWriter(
            self.directory,
            segment_max_bytes=segment_max_bytes,
            fsync=fsync,
            flush_interval=flush_interval,
        )
        if kernel.bus.write_ahead is not None:
            raise JournalError("kernel bus already has a write-ahead journal")
        # Bind once: ``self._write_event`` builds a fresh bound method per
        # access, so close() must compare against the exact object installed.
        self._hook = self._write_event
        kernel.bus.write_ahead = self._hook

    def _append(self, writer_hint: Any, kind: str, payload: Any) -> int:
        seq = self._take_seq()
        self.writer.append(seq, kind, payload)
        return seq

    def _write_event(self, event: RuntimeEvent) -> None:
        seq = self._next_seq
        self._next_seq = seq + 1
        self.events_journaled += 1
        frame = _event_frame(seq, event)
        if frame is None:
            frame = _frame(seq, KIND_EVENT, encode_event(event))
        self.writer.append_frame(frame)

    def flush(self) -> None:
        self.writer.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.kernel.bus.write_ahead is self._hook:
            self.kernel.bus.write_ahead = None
        self.writer.close()


class ShardedJournal(_JournalSessionBase):
    """One journal per shard, stitched by the global submission sequence.

    Each shard's segment bus appends only to that shard's own segment
    directory (``shard-00/``, ``shard-01/``, ...), preserving the
    no-shared-mutable-state property that makes shards independent — but
    every record carries the *global* record sequence, so recovery can
    k-way-merge the per-shard logs back into the exact deterministic
    global order the drain executed.  Commands and markers (hub-level,
    not shard-level) land in shard 0's log.

    Deterministic drain mode only: the parallel drain has no global
    publish order to journal (tracked as future work in ROADMAP).
    """

    def __init__(
        self,
        directory: str | Path,
        kernel: Any,
        segment_max_bytes: int = 4_000_000,
        fsync: bool = False,
        flush_interval: int = 64,
    ) -> None:
        from repro.runtime.sharding import DETERMINISTIC

        if kernel.mode != DETERMINISTIC:
            raise JournalError(
                "ShardedJournal requires deterministic drain mode; the "
                "parallel drain has no global order to journal"
            )
        super().__init__(directory)
        self.kernel = kernel
        self.writers: list[JournalWriter] = []
        self._hooks: list[Callable[[RuntimeEvent], None]] = []
        for shard in kernel.shards:
            writer = JournalWriter(
                self.directory / f"{SHARD_DIR_PREFIX}{shard.index:02d}",
                segment_max_bytes=segment_max_bytes,
                fsync=fsync,
                flush_interval=flush_interval,
            )
            self.writers.append(writer)
            if shard.bus.write_ahead is not None:
                raise JournalError(
                    f"shard {shard.index} bus already has a write-ahead journal"
                )
            hook = self._make_hook(writer)
            self._hooks.append(hook)
            shard.bus.write_ahead = hook

    def _make_hook(self, writer: JournalWriter) -> Callable[[RuntimeEvent], None]:
        append_frame = writer.append_frame

        def write_event(event: RuntimeEvent) -> None:
            seq = self._next_seq
            self._next_seq = seq + 1
            self.events_journaled += 1
            frame = _event_frame(seq, event)
            if frame is None:
                frame = _frame(seq, KIND_EVENT, encode_event(event))
            append_frame(frame)

        return write_event

    def _append(self, writer_hint: Any, kind: str, payload: Any) -> int:
        seq = self._take_seq()
        self.writers[0].append(seq, kind, payload)
        return seq

    def flush(self) -> None:
        for writer in self.writers:
            writer.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard, hook in zip(self.kernel.shards, self._hooks):
            if shard.bus.write_ahead is hook:
                shard.bus.write_ahead = None
        for writer in self.writers:
            writer.close()


def attach_journal(
    runtime: Any, directory: str | Path, **options: Any
) -> KernelJournal | ShardedJournal:
    """Attach write-ahead journaling to a kernel (sharded or not)."""
    if hasattr(runtime, "shards"):
        return ShardedJournal(directory, runtime, **options)
    return KernelJournal(directory, runtime, **options)
