"""The runtime kernel: run-queue scheduler + event bus + observer API.

Every architecture in the repro — the monolithic, cooperative, and
distributed-interorg baselines as well as the advanced
:class:`~repro.core.integration.B2BEngine` — advances its workflow and
public-process instances through one :class:`Kernel`.  Components submit
*advance tasks* to the kernel's :class:`RunQueue`; ``drain()`` executes
them in FIFO order until the queue is empty, so each externally triggered
stimulus (a message delivery, a timer, an API call) runs the affected
instances to quiescence in a single batch rather than one step per call.

``drain()`` is **reentrant**: when a task itself submits work and drains
(a parent workflow starting a child synchronously), the nested drain
consumes the same shared queue.  This preserves the engines' synchronous
subtree semantics — a child failure still propagates as an exception
through the parent's activity frame — while keeping every instance
advancement routed through, and observable at, the kernel.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from repro.runtime.bus import EventBus, Subscription
from repro.runtime.events import BatchAbandoned, RuntimeEvent
from repro.runtime.observers import MetricsObserver, TraceRecorder
from repro.sim import Clock

__all__ = ["Kernel", "RunQueue", "Runtime", "Task"]


@dataclass
class Task:
    """A unit of work on the run queue (usually: advance one instance).

    A task is either a plain thunk (``action``) or **batchable**
    (``batcher`` + ``payload``): when the scheduler pops a batchable task
    whose queue head holds more tasks with the *same* ``batcher``, it
    coalesces the run and hands every payload to
    ``batcher.run_batch(payloads)`` in one call — the hook the columnar
    transformation path plugs into.  A batcher's contract is that
    ``run_batch([p])`` is observably identical to running each payload's
    task alone (same documents, same events, same order), so coalescing is
    a pure throughput optimisation.
    """

    action: Callable[[], None] | None
    label: str = ""
    batcher: Any = None
    payload: Any = None

    def run(self) -> None:
        if self.batcher is not None:
            self.batcher.run_batch([self.payload])
        else:
            assert self.action is not None
            self.action()


class RunQueue:
    """FIFO scheduler that runs submitted tasks to quiescence in batches.

    :param max_tasks_per_batch: runaway guard — a single outermost
        ``drain()`` refusing to execute more than this many tasks turns an
        accidental infinite submit loop into a loud error.
    """

    def __init__(
        self,
        max_tasks_per_batch: int = 1_000_000,
        on_abandoned: Callable[[int, BaseException], None] | None = None,
    ) -> None:
        self._queue: deque[Task] = deque()
        self.max_tasks_per_batch = max_tasks_per_batch
        self.depth = 0
        self.batches = 0
        self.tasks_executed = 0
        self.abandoned = 0
        self.on_abandoned = on_abandoned
        self._batch_budget = 0

    def submit(self, action: Callable[[], None], label: str = "") -> None:
        """Queue a task; it runs on the next (or the enclosing) ``drain()``."""
        self._queue.append(Task(action, label))

    def submit_batchable(self, batcher: Any, payload: Any, label: str = "") -> None:
        """Queue a coalescible task: adjacent queued tasks sharing
        ``batcher`` run as one ``batcher.run_batch(payloads)`` call."""
        self._queue.append(Task(None, label, batcher, payload))

    def pending(self) -> int:
        return len(self._queue)

    def drain(self) -> int:
        """Run queued tasks FIFO until none remain; returns tasks executed.

        Reentrant: a nested call keeps consuming the shared queue, so work
        submitted by a running task executes before the outer drain
        resumes.  If a task raises at the outermost level, the remaining
        queue is abandoned: it is cleared, ``abandoned`` counts the dropped
        tasks, the ``on_abandoned`` hook (if set) fires with the count and
        the error, and the exception propagates to the caller.
        """
        if self.depth == 0:
            self.batches += 1
            self._batch_budget = self.max_tasks_per_batch
        self.depth += 1
        executed = 0
        try:
            while self._queue:
                if self._batch_budget <= 0:
                    raise RuntimeError(
                        "RunQueue exceeded max_tasks_per_batch="
                        f"{self.max_tasks_per_batch}; likely a submit loop"
                    )
                self._batch_budget -= 1
                task = self._queue.popleft()
                self.tasks_executed += 1
                executed += 1
                batcher = task.batcher
                if batcher is None:
                    task.action()
                    continue
                payloads = [task.payload]
                queue = self._queue
                while (
                    queue
                    and queue[0].batcher is batcher
                    and self._batch_budget > 0
                ):
                    self._batch_budget -= 1
                    self.tasks_executed += 1
                    executed += 1
                    payloads.append(queue.popleft().payload)
                batcher.run_batch(payloads)
        except BaseException as error:
            if self.depth == 1:
                dropped = len(self._queue)
                self._queue.clear()
                if dropped:
                    self.abandoned += dropped
                    if self.on_abandoned is not None:
                        self.on_abandoned(dropped, error)
            raise
        finally:
            self.depth -= 1
        return executed


@runtime_checkable
class Runtime(Protocol):
    """What engines require of their runtime substrate.

    :class:`Kernel` is the (only) shipped implementation; the protocol
    exists so tests can swap in instrumented doubles and so future
    sharded/async kernels can slot in without touching the engines.
    """

    clock: Clock
    bus: EventBus
    metrics: MetricsObserver

    def submit(
        self,
        action: Callable[[], None],
        label: str = "",
        partner_key: str | None = None,
    ) -> None:
        """Queue an advance task for the next drain.

        ``partner_key`` is a routing hint for sharded runtimes: tasks with
        the same key land on the same shard.  Single-queue runtimes ignore
        it.
        """
        ...

    def submit_batchable(
        self,
        batcher: Any,
        payload: Any,
        label: str = "",
        partner_key: str | None = None,
    ) -> None:
        """Queue a coalescible task (see :class:`Task`): adjacent tasks
        with the same ``batcher`` run as one ``run_batch(payloads)`` call."""
        ...

    def drain(self) -> int:
        """Run queued tasks to quiescence; returns the number executed."""
        ...

    def subscribe(
        self,
        observer: Callable[[RuntimeEvent], None],
        events: Iterable[type[RuntimeEvent] | str] | None = None,
    ) -> Subscription:
        """Attach an observer to the event bus."""
        ...

    def publish(self, event: RuntimeEvent) -> None:
        """Put an already-built event on the bus."""
        ...

    def emit(self, event_cls: type[RuntimeEvent], source: str, **fields: Any) -> None:
        """Build an event stamped with the current clock time and publish it."""
        ...


@dataclass
class Kernel:
    """The shared runtime: clock + run queue + event bus + shipped observers.

    A :class:`~repro.runtime.observers.MetricsObserver` is always attached
    (architecture counters are views over it); a
    :class:`~repro.runtime.observers.TraceRecorder` attaches on demand via
    :meth:`enable_trace`.
    """

    clock: Clock = field(default_factory=Clock)
    bus: EventBus = field(default_factory=EventBus)
    run_queue: RunQueue = field(default_factory=RunQueue)

    def __post_init__(self) -> None:
        self.metrics = MetricsObserver()
        self.bus.subscribe(self.metrics)
        self.trace: TraceRecorder | None = None
        if self.run_queue.on_abandoned is None:
            self.run_queue.on_abandoned = self._on_batch_abandoned

    def _on_batch_abandoned(self, dropped: int, error: BaseException) -> None:
        self.emit(BatchAbandoned, "kernel", abandoned=dropped, error=str(error))

    # -- scheduling --------------------------------------------------------

    def submit(
        self,
        action: Callable[[], None],
        label: str = "",
        partner_key: str | None = None,
    ) -> None:
        # partner_key is a sharding hint; the single-queue kernel has one
        # shard, so every key routes to the same place.
        self.run_queue.submit(action, label)

    def submit_batchable(
        self,
        batcher: Any,
        payload: Any,
        label: str = "",
        partner_key: str | None = None,
    ) -> None:
        self.run_queue.submit_batchable(batcher, payload, label)

    def drain(self) -> int:
        return self.run_queue.drain()

    # -- observation -------------------------------------------------------

    def subscribe(
        self,
        observer: Callable[[RuntimeEvent], None],
        events: Iterable[type[RuntimeEvent] | str] | None = None,
    ) -> Subscription:
        return self.bus.subscribe(observer, events)

    def publish(self, event: RuntimeEvent) -> None:
        self.bus.publish(event)

    def emit(self, event_cls: type[RuntimeEvent], source: str, **fields: Any) -> None:
        self.publish(event_cls(at=self.clock.now(), source=source, **fields))

    def enable_trace(self, capacity: int = 10_000) -> TraceRecorder:
        """Attach (or return the already-attached) ring-buffered trace.

        Raises ``ValueError`` if a trace is already attached with a
        different capacity — silently returning the old recorder would
        make the caller's capacity request a no-op.
        """
        if self.trace is None:
            self.trace = TraceRecorder(capacity)
            self.bus.subscribe(self.trace)
        elif self.trace.capacity != capacity:
            raise ValueError(
                f"trace already attached with capacity={self.trace.capacity}; "
                f"cannot re-enable with capacity={capacity}"
            )
        return self.trace
