"""Shipped kernel observers: a structured trace recorder and a metrics sink.

Both are plain callables — the bus invokes them with each event — so any
test helper or ad-hoc lambda can sit beside them on the same bus.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any

from repro.runtime.events import RuntimeEvent

__all__ = ["TraceRecorder", "MetricsObserver", "Histogram"]


class TraceRecorder:
    """Ring-buffered structured trace of kernel events, queryable in tests.

    :param capacity: maximum retained events; older events fall off the
        front (``recorded`` still counts everything ever seen).
    """

    def __init__(self, capacity: int = 10_000) -> None:
        self.capacity = capacity
        self._events: deque[RuntimeEvent] = deque(maxlen=capacity)
        self.recorded = 0

    def __call__(self, event: RuntimeEvent) -> None:
        self._events.append(event)
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._events)

    def events(
        self,
        type: str | type[RuntimeEvent] | None = None,
        source: str | None = None,
        instance_id: str | None = None,
    ) -> list[RuntimeEvent]:
        """Retained events, optionally filtered by type/source/instance."""
        wanted = type if type is None or isinstance(type, str) else type.type
        results = []
        for event in self._events:
            if wanted is not None and event.type != wanted:
                continue
            if source is not None and event.source != source:
                continue
            if instance_id is not None and getattr(event, "instance_id", None) != instance_id:
                continue
            results.append(event)
        return results

    def event_types(self) -> set[str]:
        """The distinct event type strings currently retained."""
        return {event.type for event in self._events}

    def last(self, type: str | type[RuntimeEvent] | None = None) -> RuntimeEvent | None:
        """Most recent retained event (of ``type``, if given)."""
        matches = self.events(type=type)
        return matches[-1] if matches else None

    def render(self, limit: int | None = None) -> str:
        """Human-readable trace, one line per event (most recent last)."""
        events = list(self._events)
        if limit is not None:
            events = events[-limit:]
        return "\n".join(event.describe() for event in events)

    def clear(self) -> None:
        self._events.clear()


class Histogram:
    """Fixed-bucket histogram for non-negative observations (durations)."""

    def __init__(self, bounds: tuple[float, ...] = (0.1, 1.0, 5.0, 20.0, 100.0)) -> None:
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        labels = [f"<={bound:g}" for bound in self.bounds] + [f">{self.bounds[-1]:g}"]
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": dict(zip(labels, self.buckets)),
        }


class MetricsObserver:
    """Counts every event by type and by (type, source); tracks durations.

    This is the single place architectures' runtime tallies live: engine
    step counters, message counters, and conversation counters are all
    views over these counts (see e.g.
    :attr:`repro.workflow.engine.WorkflowEngine.steps_executed`).
    """

    def __init__(self) -> None:
        self.counters: Counter[str] = Counter()
        self._by_source: Counter[tuple[str, str]] = Counter()
        self.instance_durations = Histogram()

    def __call__(self, event: RuntimeEvent) -> None:
        self.counters[event.type] += 1
        self._by_source[(event.type, event.source)] += 1
        if event.type == "instance_completed":
            self.instance_durations.observe(event.duration)

    def count(self, event_type: str | type[RuntimeEvent], source: str | None = None) -> int:
        """Total events of ``event_type`` (optionally from one ``source``)."""
        name = event_type if isinstance(event_type, str) else event_type.type
        if source is None:
            return self.counters[name]
        return self._by_source[(name, source)]

    def sources(self, event_type: str | type[RuntimeEvent]) -> dict[str, int]:
        """Per-source breakdown for one event type."""
        name = event_type if isinstance(event_type, str) else event_type.type
        return {
            source: count
            for (type_name, source), count in sorted(self._by_source.items())
            if type_name == name
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "events": dict(sorted(self.counters.items())),
            "instance_durations": self.instance_durations.as_dict(),
        }
