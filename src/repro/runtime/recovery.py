"""Crash recovery: rebuild hub state from snapshot + journal tail.

The counterpart of :mod:`repro.runtime.journal`.  A journal directory
(single-kernel, or per-shard subdirectories under a sharded root) plus
the snapshot store it contains are everything needed to rebuild the
hub's durable state after a crash:

1. read every whole record from the segment files, stopping at the
   first torn/corrupt frame (the checksummed framing makes a mid-append
   crash detectable rather than silently poisonous);
2. for a sharded journal, k-way-merge the per-shard logs by the global
   record sequence and keep only the **longest contiguous prefix** — a
   crash tears each shard's tail independently, and any record beyond
   the first missing sequence may causally depend on a lost one, so the
   deterministic global-order invariant is preserved by cutting there;
3. load the newest valid snapshot *at or before* the cut and replay
   only the records after it through a :class:`Projector`.

The projector is a pure fold over the journal: a JSON-serializable view
of workflow-instance status, conversation state (which conversations
are mid-exchange and what documents each side has seen), the
reliable-messaging dedup window, the write-ahead command log, and any
registry-version markers.  Exactly-once across a crash falls out of the
command log: a command journaled before the crash is re-executed by
deterministic replay; one that never reached the journal is re-submitted
by the client; the two sets are disjoint by construction, so no order is
lost and none is duplicated (asserted end-to-end by
:mod:`repro.analysis.crash`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.runtime.events import RuntimeEvent
from repro.runtime.journal import (
    KIND_COMMAND,
    KIND_EVENT,
    KIND_MARKER,
    SHARD_DIR_PREFIX,
    JournalRecord,
    SnapshotStore,
    Truncation,
    decode_event,
    read_segment_dir,
)

__all__ = ["Projector", "RecoveredState", "recover"]


class Projector:
    """A deterministic, JSON-serializable fold over the journal.

    Applying the same record sequence always yields the same state, and
    ``state()`` round-trips through JSON — the two properties snapshots
    depend on.  The projection tracks exactly the state the ISSUE calls
    out as crash-fragile: the workflow database, conversation state, and
    reliable-messaging dedup windows, plus the command WAL and registry
    markers.
    """

    def __init__(self) -> None:
        self.workflows: dict[str, dict[str, Any]] = {}
        self.conversations: dict[str, dict[str, Any]] = {}
        self.dedup: dict[str, list[str]] = {}
        self.commands: dict[str, dict[str, Any]] = {}
        self.command_order: list[str] = []
        self.registry_versions: dict[str, dict[str, Any]] = {}
        self.markers: dict[str, dict[str, Any]] = {}
        self.counters: dict[str, int] = {}
        self.events_applied = 0

    # -- folding ----------------------------------------------------------

    def apply_event(self, event: RuntimeEvent) -> None:
        """Fold one bus event into the projection."""
        self.events_applied += 1
        kind = event.type
        self.counters[kind] = self.counters.get(kind, 0) + 1
        if kind.startswith("instance_"):
            entry = self.workflows.setdefault(
                event.instance_id, {"type": event.type_name, "steps": {}}
            )
            entry["status"] = kind.removeprefix("instance_")
            if kind == "instance_failed":
                entry["error"] = event.error
            elif kind == "instance_cancelled":
                entry["reason"] = event.reason
        elif kind.startswith("step_"):
            entry = self.workflows.setdefault(
                event.instance_id, {"type": "?", "steps": {}}
            )
            status = kind.removeprefix("step_")
            if kind == "step_waiting":
                status = f"waiting:{event.wait_key}"
            entry["steps"][event.step_id] = status
        elif kind == "conversation_started":
            self.conversations[self._conv_key(event)] = {
                "protocol": event.protocol,
                "partner_id": event.partner_id,
                "role": event.role,
                "status": "open",
                "sent": [],
                "received": [],
            }
        elif kind in ("conversation_completed", "conversation_failed"):
            entry = self._conversation(event)
            entry["status"] = kind.removeprefix("conversation_")
            if kind == "conversation_failed":
                entry["reason"] = event.reason
        elif kind == "document_sent":
            self._conversation(event)["sent"].append(event.doc_type)
        elif kind == "document_received":
            self._conversation(event)["received"].append(event.doc_type)
        elif kind == "message_delivered" and event.kind == "business":
            # Only business deliveries enter an endpoint's at-most-once
            # window (acks are correlated, never deduplicated), so only
            # they belong in the recovered dedup state.
            seen = self.dedup.setdefault(event.receiver, [])
            if event.message_id not in seen:
                seen.append(event.message_id)

    def _conv_key(self, event: RuntimeEvent) -> str:
        # Both sides of a pair publish on one bus; the emitting engine's
        # name (event.source) disambiguates the two halves of a
        # conversation that share an id.
        return f"{event.source}:{event.conversation_id}"

    def _conversation(self, event: RuntimeEvent) -> dict[str, Any]:
        key = f"{event.source}:{event.conversation_id}"
        entry = self.conversations.get(key)
        if entry is None:
            entry = {
                "protocol": "?",
                "partner_id": getattr(event, "partner_id", "?"),
                "role": "?",
                "status": "open",
                "sent": [],
                "received": [],
            }
            self.conversations[key] = entry
        return entry

    def apply_command(self, payload: dict[str, Any]) -> None:
        """Fold one write-ahead command record."""
        command_id = payload["id"]
        if command_id not in self.commands:
            self.command_order.append(command_id)
        self.commands[command_id] = {"op": payload["op"], "args": payload["args"]}

    def apply_marker(self, payload: dict[str, Any]) -> None:
        """Fold one marker record (latest marker of a name wins)."""
        name = payload["name"]
        data = payload["data"]
        if name == "registry_version":
            self.registry_versions[data["model"]] = {
                "digest": data["digest"],
                "transforms_version": data["transforms_version"],
            }
        self.markers[name] = data

    # -- snapshot round-trip ----------------------------------------------

    def state(self) -> dict[str, Any]:
        """The projection as a JSON-serializable dict (snapshot payload)."""
        return {
            "workflows": self.workflows,
            "conversations": self.conversations,
            "dedup": self.dedup,
            "commands": self.commands,
            "command_order": self.command_order,
            "registry_versions": self.registry_versions,
            "markers": self.markers,
            "counters": self.counters,
            "events_applied": self.events_applied,
        }

    def load(self, state: dict[str, Any]) -> None:
        """Restore the projection from a snapshot payload (deep-copied)."""
        state = json.loads(json.dumps(state))
        self.workflows = state.get("workflows", {})
        self.conversations = state.get("conversations", {})
        self.dedup = state.get("dedup", {})
        self.commands = state.get("commands", {})
        self.command_order = state.get("command_order", [])
        self.registry_versions = state.get("registry_versions", {})
        self.markers = state.get("markers", {})
        self.counters = state.get("counters", {})
        self.events_applied = state.get("events_applied", 0)

    # -- queries ----------------------------------------------------------

    def command_ids(self) -> set[str]:
        """Ids of every write-ahead command that reached the journal."""
        return set(self.commands)

    def open_conversations(self) -> list[str]:
        """Keys of conversations that were mid-exchange at the crash."""
        return sorted(
            key
            for key, entry in self.conversations.items()
            if entry.get("status") == "open"
        )

    def received_documents(self) -> dict[str, int]:
        """Conversation key -> count of documents received (dup detector)."""
        return {
            key: len(entry.get("received", []))
            for key, entry in self.conversations.items()
        }

    def dedup_ids(self, receiver: str) -> list[str]:
        """Delivered message ids for ``receiver`` (restores its dedup window)."""
        return list(self.dedup.get(receiver, []))


@dataclass
class RecoveredState:
    """Everything :func:`recover` learned from a journal directory."""

    directory: Path
    sharded: bool
    projector: Projector
    records: list[JournalRecord] = field(default_factory=list)
    truncations: list[Truncation] = field(default_factory=list)
    dropped_records: int = 0
    snapshot_seq: int = -1
    replayed: int = 0

    @property
    def last_seq(self) -> int:
        """Highest recovered record sequence (-1 for an empty journal)."""
        return self.records[-1].seq if self.records else -1

    def events(self) -> Iterator[RuntimeEvent]:
        """Decoded bus events, in global deterministic order."""
        for record in self.records:
            if record.kind == KIND_EVENT:
                yield decode_event(record.payload)

    def commands(self) -> list[dict[str, Any]]:
        """Write-ahead command payloads, in journal order."""
        return [
            record.payload for record in self.records if record.kind == KIND_COMMAND
        ]

    def markers(self) -> list[dict[str, Any]]:
        return [
            record.payload for record in self.records if record.kind == KIND_MARKER
        ]

    def describe(self) -> str:
        """One human-readable recovery summary line."""
        parts = [
            f"recovered {len(self.records)} records (last seq {self.last_seq})",
            f"snapshot@{self.snapshot_seq}" if self.snapshot_seq >= 0 else "no snapshot",
            f"replayed {self.replayed}",
        ]
        if self.dropped_records:
            parts.append(f"dropped {self.dropped_records} past seq gap")
        if self.truncations:
            cut = self.truncations[0]
            parts.append(f"truncated {cut.segment}@{cut.offset}: {cut.reason}")
        return ", ".join(parts)


def _shard_dirs(directory: Path) -> list[Path]:
    if not directory.is_dir():
        return []
    return sorted(
        path
        for path in directory.iterdir()
        if path.is_dir() and path.name.startswith(SHARD_DIR_PREFIX)
    )


def recover(directory: str | Path) -> RecoveredState:
    """Rebuild durable state from a journal directory.

    Auto-detects layout: ``shard-NN/`` subdirectories mean a
    :class:`~repro.runtime.journal.ShardedJournal` wrote it, and the
    per-shard logs are merged by global sequence; otherwise the directory
    itself holds a single kernel's segments.  Only the longest
    contiguous sequence prefix is kept (see module docstring), and the
    newest valid snapshot at or before the cut seeds the projector so
    only the tail is replayed.
    """
    directory = Path(directory)
    shard_dirs = _shard_dirs(directory)
    truncations: list[Truncation] = []
    if shard_dirs:
        merged: list[JournalRecord] = []
        for shard_dir in shard_dirs:
            shard_records, shard_truncations = read_segment_dir(shard_dir)
            merged.extend(shard_records)
            truncations.extend(shard_truncations)
        merged.sort(key=lambda record: record.seq)
        records = merged
    else:
        records, truncations = read_segment_dir(directory)

    kept: list[JournalRecord] = []
    for record in records:
        if record.seq != len(kept):
            break
        kept.append(record)
    dropped = len(records) - len(kept)

    projector = Projector()
    snapshot_seq = -1
    loaded = SnapshotStore(directory).load_latest(
        max_seq=kept[-1].seq if kept else -1
    )
    if loaded is not None:
        state, snapshot_seq = loaded
        projector.load(state)

    replayed = 0
    for record in kept:
        if record.seq <= snapshot_seq:
            continue
        if record.kind == KIND_EVENT:
            projector.apply_event(decode_event(record.payload))
        elif record.kind == KIND_COMMAND:
            projector.apply_command(record.payload)
        elif record.kind == KIND_MARKER:
            projector.apply_marker(record.payload)
        replayed += 1

    return RecoveredState(
        directory=directory,
        sharded=bool(shard_dirs),
        projector=projector,
        records=kept,
        truncations=truncations,
        dropped_records=dropped,
        snapshot_seq=snapshot_seq,
        replayed=replayed,
    )
