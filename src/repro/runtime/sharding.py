"""Sharded multi-tenant kernel: partner-partitioned run queues.

The paper's §4.6 scalability argument is that a *hub* absorbs partner
growth.  :class:`ShardedKernel` makes that concrete: it implements the
same :class:`~repro.runtime.kernel.Runtime` protocol as the single-queue
:class:`~repro.runtime.kernel.Kernel`, but partitions work across N
**shards**.  Each shard owns its own task queue, bounded inter-shard
inbox, event-bus segment, metrics observer, and read-only clock view —
shards never share mutable state, which is what makes the parallel drain
mode safe.

Routing
    ``submit(..., partner_key=...)`` routes through a pluggable
    :class:`ShardRouter` (default: stable CRC-32 hash of the partner id),
    so every task for one partner lands on one shard.  Tasks submitted
    *while executing on a shard* without a key stay on that shard;
    ingress tasks without a key go to shard 0.

Cross-shard traffic
    A task executing on shard A that targets shard B never touches B's
    queue directly: it travels as an explicit inter-shard message into
    B's bounded inbox (per-link counters in ``link_counters``), or — when
    a :class:`~repro.messaging.network.SimulatedNetwork` transport plane
    is attached via :meth:`ShardedKernel.attach_network` — as a real wire
    message between ``shard:<i>`` addresses, subject to the network's
    loss/latency model and visible in its per-link stats.

Backpressure
    When a shard's combined queue+inbox load crosses its watermark the
    kernel emits :class:`~repro.runtime.events.ShardSaturated`; when the
    load falls back under half the watermark it emits
    :class:`~repro.runtime.events.ShardDrained` (hysteresis, so the pair
    brackets each overload episode instead of toggling per task).

Drain modes
    ``deterministic`` (default) executes tasks in **global submission
    order**: every task carries a monotonically increasing sequence
    number and the single-threaded drain repeatedly pops the smallest
    head across all shard queues and inboxes.  A k-way merge of per-shard
    FIFOs ordered by a global sequence *is* the single FIFO, so traces
    and metrics are identical for every shard count — including 1, where
    they are byte-identical to the plain ``Kernel``.  ``parallel`` runs
    one worker thread per shard in waves until all queues and inboxes are
    empty; event segments stay per-shard (no cross-thread bus writes) and
    the global views aggregate on read.
"""

from __future__ import annotations

import itertools
import threading
import time
import zlib
from collections import Counter, deque
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from repro.runtime.bus import EventBus
from repro.runtime.events import (
    BatchAbandoned,
    RuntimeEvent,
    ShardDrained,
    ShardSaturated,
)
from repro.runtime.kernel import Task
from repro.runtime.observers import Histogram, MetricsObserver, TraceRecorder
from repro.sim import Clock

__all__ = [
    "HashShardRouter",
    "Shard",
    "ShardClockView",
    "ShardRouter",
    "ShardedKernel",
]

DETERMINISTIC = "deterministic"
PARALLEL = "parallel"


@runtime_checkable
class ShardRouter(Protocol):
    """Maps a partner key to a shard index; must be stable across calls."""

    def route(self, partner_key: str, shard_count: int) -> int:
        """Return the owning shard index in ``[0, shard_count)``."""
        ...


class HashShardRouter:
    """Stable CRC-32 partitioning: same key -> same shard, forever."""

    def route(self, partner_key: str, shard_count: int) -> int:
        return zlib.crc32(partner_key.encode("utf-8")) % shard_count


class ShardClockView:
    """A shard's read-only view of the shared kernel clock."""

    def __init__(self, clock: Clock, shard: int) -> None:
        self._clock = clock
        self.shard = shard

    def now(self) -> float:
        return self._clock.now()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShardClockView(shard={self.shard}, t={self.now():.6f})"


class Shard:
    """One partition: task queue + bounded inbox + bus segment + metrics.

    Only the shard's own worker pops its queues; other shards only
    *append* to the inbox (``deque.append`` is atomic under the GIL), so
    the shard's mutable state never needs cross-thread locking.
    """

    def __init__(
        self,
        index: int,
        clock: Clock,
        inbox_capacity: int,
        watermark: int,
    ) -> None:
        self.index = index
        self.clock = ShardClockView(clock, index)
        self.bus = EventBus()
        self.metrics = MetricsObserver()
        self.bus.subscribe(self.metrics)
        self.tasks: deque[tuple[int, Task]] = deque()
        self.inbox: deque[tuple[int, Task]] = deque()
        self.inbox_capacity = inbox_capacity
        self.watermark = watermark
        self.saturated = False
        self.tasks_executed = 0
        self.inbox_received = 0
        self.inbox_overflows = 0

    def load(self) -> int:
        """Combined queue + inbox depth (the backpressure signal)."""
        return len(self.tasks) + len(self.inbox)


class _AggregateMetrics:
    """Read-only merge of the per-shard metrics observers.

    Mirrors the :class:`~repro.runtime.observers.MetricsObserver` query
    API so engine counters (views over ``runtime.metrics``) work
    unchanged; with one shard every value is byte-identical to a single
    observer's.
    """

    def __init__(self, shards: list[Shard]) -> None:
        self._shards = shards

    def count(
        self, event_type: str | type[RuntimeEvent], source: str | None = None
    ) -> int:
        return sum(shard.metrics.count(event_type, source) for shard in self._shards)

    def sources(self, event_type: str | type[RuntimeEvent]) -> dict[str, int]:
        merged: Counter[str] = Counter()
        for shard in self._shards:
            merged.update(shard.metrics.sources(event_type))
        return dict(sorted(merged.items()))

    @property
    def counters(self) -> Counter[str]:
        merged: Counter[str] = Counter()
        for shard in self._shards:
            merged.update(shard.metrics.counters)
        return merged

    @property
    def instance_durations(self) -> Histogram:
        first = self._shards[0].metrics.instance_durations
        merged = Histogram(bounds=first.bounds)
        for shard in self._shards:
            histogram = shard.metrics.instance_durations
            merged.count += histogram.count
            merged.total += histogram.total
            merged.min = min(merged.min, histogram.min)
            merged.max = max(merged.max, histogram.max)
            for index, value in enumerate(histogram.buckets):
                merged.buckets[index] += value
        return merged

    def as_dict(self) -> dict[str, Any]:
        return {
            "events": dict(sorted(self.counters.items())),
            "instance_durations": self.instance_durations.as_dict(),
        }


class _AggregateRunQueue:
    """Read-only run-queue statistics across shards (reporting surface)."""

    def __init__(self, kernel: "ShardedKernel") -> None:
        self._kernel = kernel

    @property
    def batches(self) -> int:
        return self._kernel._batches

    @property
    def tasks_executed(self) -> int:
        return sum(shard.tasks_executed for shard in self._kernel.shards)

    @property
    def abandoned(self) -> int:
        return self._kernel._abandoned

    @property
    def depth(self) -> int:
        return self._kernel._depth

    @property
    def max_tasks_per_batch(self) -> int:
        return self._kernel.max_tasks_per_batch

    def pending(self) -> int:
        return sum(shard.load() for shard in self._kernel.shards) + len(
            self._kernel._in_flight
        )


class _MergedTrace:
    """Read view over per-shard trace recorders (parallel mode only).

    Parallel shards have no global event order; the merge sorts by event
    timestamp (stable by shard index) which is the best available total
    order.  Deterministic mode never uses this — it records one globally
    ordered trace on the kernel bus.
    """

    def __init__(self, recorders: list[TraceRecorder], capacity: int) -> None:
        self.capacity = capacity
        self._recorders = recorders

    @property
    def recorded(self) -> int:
        return sum(recorder.recorded for recorder in self._recorders)

    def _merged(self) -> list[RuntimeEvent]:
        events: list[RuntimeEvent] = []
        for recorder in self._recorders:
            events.extend(recorder.events())
        events.sort(key=lambda event: event.at)
        return events

    def __len__(self) -> int:
        return sum(len(recorder) for recorder in self._recorders)

    def events(self, **filters: Any) -> list[RuntimeEvent]:
        merged: list[RuntimeEvent] = []
        for recorder in self._recorders:
            merged.extend(recorder.events(**filters))
        merged.sort(key=lambda event: event.at)
        return merged

    def event_types(self) -> set[str]:
        types: set[str] = set()
        for recorder in self._recorders:
            types |= recorder.event_types()
        return types

    def last(self, type: str | type[RuntimeEvent] | None = None) -> RuntimeEvent | None:
        matches = self.events(type=type)
        return matches[-1] if matches else None

    def render(self, limit: int | None = None) -> str:
        events = self._merged()
        if limit is not None:
            events = events[-limit:]
        return "\n".join(event.describe() for event in events)

    def clear(self) -> None:
        for recorder in self._recorders:
            recorder.clear()


class _CompositeSubscription:
    """One handle over per-shard bus subscriptions (parallel mode)."""

    def __init__(self, subscriptions: list) -> None:
        self._subscriptions = subscriptions

    def unsubscribe(self) -> None:
        for subscription in self._subscriptions:
            subscription.unsubscribe()


class ShardedKernel:
    """N-shard implementation of the :class:`~repro.runtime.kernel.Runtime`
    protocol.

    :param shards: number of partitions (>= 1).
    :param clock: shared logical clock (each shard gets a read-only view).
    :param mode: ``"deterministic"`` (global-order single-threaded merge)
        or ``"parallel"`` (one worker thread per shard).
    :param router: partner-key partitioner; defaults to
        :class:`HashShardRouter`.
    :param inbox_capacity: bound on each shard's inter-shard inbox.
    :param saturation_watermark: queue+inbox load that triggers a
        :class:`~repro.runtime.events.ShardSaturated` event.
    :param max_tasks_per_batch: runaway-submit guard, as on
        :class:`~repro.runtime.kernel.RunQueue`.
    """

    def __init__(
        self,
        shards: int = 1,
        clock: Clock | None = None,
        mode: str = DETERMINISTIC,
        router: ShardRouter | None = None,
        inbox_capacity: int = 100_000,
        saturation_watermark: int = 50_000,
        max_tasks_per_batch: int = 1_000_000,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if mode not in (DETERMINISTIC, PARALLEL):
            raise ValueError(f"mode must be deterministic|parallel, got {mode!r}")
        self.clock = clock or Clock()
        self.mode = mode
        self.shard_count = shards
        self.router = router or HashShardRouter()
        self.max_tasks_per_batch = max_tasks_per_batch
        self.bus = EventBus()
        self.shards = [
            Shard(index, self.clock, inbox_capacity, saturation_watermark)
            for index in range(shards)
        ]
        self.metrics = _AggregateMetrics(self.shards)
        self.run_queue = _AggregateRunQueue(self)
        self.trace: TraceRecorder | _MergedTrace | None = None
        self.link_counters: Counter[tuple[int, int]] = Counter()
        self._seq = itertools.count()
        self._tls = threading.local()
        self._batches = 0
        self._depth = 0
        self._batch_budget = 0
        self._abandoned = 0
        self._network = None
        self._in_flight: dict[str, tuple[int, Task]] = {}
        if mode == DETERMINISTIC:
            # Forward every segment onto the kernel bus: single-threaded
            # drains publish in global order, so the kernel bus carries
            # the same totally ordered stream a plain Kernel's bus would.
            for shard in self.shards:
                shard.bus.subscribe(self.bus.publish)

    # -- routing -----------------------------------------------------------

    def _current_shard(self) -> int | None:
        return getattr(self._tls, "shard", None)

    def shard_for(self, partner_key: str) -> int:
        """The shard that owns ``partner_key`` under the current router."""
        return self.router.route(partner_key, self.shard_count)

    def submit(
        self,
        action: Callable[[], None],
        label: str = "",
        partner_key: str | None = None,
    ) -> None:
        """Queue a task on its owning shard.

        Keyed tasks go to ``router.route(partner_key)``; unkeyed tasks
        stay on the submitting shard (or shard 0 from outside a drain).
        A cross-shard submit becomes an explicit inter-shard message.
        """
        seq = next(self._seq)
        current = self._current_shard()
        if partner_key is not None:
            target = self.router.route(partner_key, self.shard_count)
        elif current is not None:
            target = current
        else:
            target = 0
        task = Task(action, label)
        if current is None or current == target:
            shard = self.shards[target]
            shard.tasks.append((seq, task))
            self._check_watermark(shard)
        else:
            self._send_cross_shard(current, target, seq, task)

    def submit_batchable(
        self,
        batcher: Any,
        payload: Any,
        label: str = "",
        partner_key: str | None = None,
    ) -> None:
        """Queue a coalescible task on its owning shard (same routing as
        :meth:`submit`).  During a drain, runs of tasks sharing ``batcher``
        that are adjacent *in execution order* collapse into one
        ``batcher.run_batch(payloads)`` call."""
        seq = next(self._seq)
        current = self._current_shard()
        if partner_key is not None:
            target = self.router.route(partner_key, self.shard_count)
        elif current is not None:
            target = current
        else:
            target = 0
        task = Task(None, label, batcher, payload)
        if current is None or current == target:
            shard = self.shards[target]
            shard.tasks.append((seq, task))
            self._check_watermark(shard)
        else:
            self._send_cross_shard(current, target, seq, task)

    def _send_cross_shard(
        self, sender: int, target_index: int, seq: int, task: Task
    ) -> None:
        self.link_counters[(sender, target_index)] += 1
        if self._network is not None:
            self._send_over_network(sender, target_index, seq, task)
            return
        target = self.shards[target_index]
        if len(target.inbox) >= target.inbox_capacity:
            if self.mode == DETERMINISTIC:
                raise RuntimeError(
                    f"shard {target_index} inbox overflow "
                    f"(capacity={target.inbox_capacity})"
                )
            # Parallel: wait briefly for the target worker to make room,
            # then force-append — dropping work would be worse than
            # briefly exceeding the bound.
            for _ in range(200):
                if len(target.inbox) < target.inbox_capacity:
                    break
                time.sleep(0.0005)
            else:
                target.inbox_overflows += 1
        target.inbox.append((seq, task))
        target.inbox_received += 1
        self._check_watermark(target)

    def _check_watermark(self, shard: Shard) -> None:
        load = shard.load()
        if not shard.saturated and load > shard.watermark:
            shard.saturated = True
            self.emit(
                ShardSaturated,
                "kernel",
                shard=shard.index,
                pending=load,
                watermark=shard.watermark,
            )
        elif shard.saturated and load <= shard.watermark // 2:
            shard.saturated = False
            self.emit(ShardDrained, "kernel", shard=shard.index, pending=load)

    # -- inter-shard transport over SimulatedNetwork -----------------------

    def attach_network(self, network) -> None:
        """Route cross-shard tasks over a ``SimulatedNetwork`` transport.

        Deterministic mode only (the event scheduler is single-threaded).
        Each shard registers a ``shard:<i>`` address; cross-shard submits
        then travel as wire messages subject to the network's conditions
        and counted in its per-link stats.  Use a dedicated transport
        network (its own runtime kernel) so transport-plane events don't
        interleave with the workload's own trace.
        """
        if self.mode != DETERMINISTIC:
            raise ValueError("attach_network requires deterministic mode")
        self._network = network
        for shard in self.shards:
            address = f"shard:{shard.index}"
            if not network.is_registered(address):
                network.register(address, self._receive_inter_shard)

    def _send_over_network(
        self, sender: int, target_index: int, seq: int, task: Task
    ) -> None:
        from repro.messaging.envelope import KIND_BUSINESS, Message

        message_id = f"ishard-{seq:010d}"
        self._in_flight[message_id] = (seq, task)
        self._network.send(
            Message(
                message_id=message_id,
                sender=f"shard:{sender}",
                receiver=f"shard:{target_index}",
                kind=KIND_BUSINESS,
                protocol="inter-shard",
                doc_type="task",
                body=task.label or "task",
                sent_at=self.clock.now(),
            )
        )

    def _receive_inter_shard(self, message) -> None:
        entry = self._in_flight.pop(message.message_id, None)
        if entry is None:  # duplicate delivery; first copy won
            return
        seq, task = entry
        target = self.shards[int(message.receiver.split(":", 1)[1])]
        target.inbox.append((seq, task))
        target.inbox_received += 1
        self._check_watermark(target)

    # -- draining ----------------------------------------------------------

    def drain(self) -> int:
        """Run every queued task to quiescence; returns tasks executed."""
        if self.mode == PARALLEL:
            return self._drain_parallel()
        return self._drain_deterministic()

    def _next_deterministic(self) -> tuple[Shard, deque] | None:
        """The (shard, deque) holding the globally smallest sequence head."""
        best_seq = None
        best: tuple[Shard, deque] | None = None
        for shard in self.shards:
            for queue in (shard.tasks, shard.inbox):
                if queue and (best_seq is None or queue[0][0] < best_seq):
                    best_seq = queue[0][0]
                    best = (shard, queue)
        return best

    def _drain_deterministic(self) -> int:
        if self._depth == 0:
            self._batches += 1
            self._batch_budget = self.max_tasks_per_batch
        self._depth += 1
        previous = self._current_shard()
        executed = 0
        try:
            while True:
                head = self._next_deterministic()
                if head is None:
                    if self._in_flight and self._network is not None:
                        self._network.scheduler.run_until_idle()
                        if any(shard.load() for shard in self.shards):
                            continue
                        if self._in_flight:
                            # transport dropped them; nothing will arrive
                            lost = len(self._in_flight)
                            self._in_flight.clear()
                            self._abandoned += lost
                    break
                if self._batch_budget <= 0:
                    raise RuntimeError(
                        "ShardedKernel exceeded max_tasks_per_batch="
                        f"{self.max_tasks_per_batch}; likely a submit loop"
                    )
                self._batch_budget -= 1
                shard, queue = head
                seq, task = queue.popleft()
                shard.tasks_executed += 1
                executed += 1
                self._tls.shard = shard.index
                batcher = task.batcher
                if batcher is None:
                    task.action()
                else:
                    # Coalesce the run of same-batcher tasks with strictly
                    # consecutive sequence numbers at this queue's head.
                    # Consecutive seqs guarantee global adjacency: every
                    # other pending task has a larger seq, so executing the
                    # run in one call preserves the global submission order.
                    payloads = [task.payload]
                    expected = seq + 1
                    while (
                        queue
                        and queue[0][0] == expected
                        and queue[0][1].batcher is batcher
                        and self._batch_budget > 0
                    ):
                        self._batch_budget -= 1
                        shard.tasks_executed += 1
                        executed += 1
                        payloads.append(queue.popleft()[1].payload)
                        expected += 1
                    batcher.run_batch(payloads)
                if shard.saturated:
                    self._check_watermark(shard)
        except BaseException as error:
            if self._depth == 1:
                self._abandon_all(error)
            raise
        finally:
            self._depth -= 1
            self._tls.shard = previous
        return executed

    def _drain_parallel(self) -> int:
        current = self._current_shard()
        if current is not None:
            # Nested drain from inside a worker: run the local shard's
            # backlog synchronously (shards never touch peers' queues).
            return self._drain_local(self.shards[current])
        self._batches += 1
        self._depth += 1
        executed = 0
        errors: list[BaseException] = []
        try:
            while True:
                if not any(shard.load() for shard in self.shards):
                    break
                tallies = [0] * self.shard_count
                workers = [
                    threading.Thread(
                        target=self._shard_worker,
                        args=(shard, tallies, errors),
                        name=f"shard-{shard.index}",
                        daemon=True,
                    )
                    for shard in self.shards
                ]
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join()
                executed += sum(tallies)
                if errors:
                    raise errors[0]
                if executed > self.max_tasks_per_batch:
                    raise RuntimeError(
                        "ShardedKernel exceeded max_tasks_per_batch="
                        f"{self.max_tasks_per_batch}; likely a submit loop"
                    )
        except BaseException as error:
            self._abandon_all(error)
            raise
        finally:
            self._depth -= 1
        return executed

    def _shard_worker(
        self, shard: Shard, tallies: list[int], errors: list[BaseException]
    ) -> None:
        self._tls.shard = shard.index
        try:
            tallies[shard.index] = self._drain_local(shard)
        except BaseException as error:  # surfaced by the coordinating drain
            errors.append(error)
        finally:
            self._tls.shard = None

    def _drain_local(self, shard: Shard) -> int:
        """Pop and run the shard's own queue+inbox until both are empty.

        Only this shard's worker pops, so no locks: peers merely append
        to the inbox.  Heads are merged by sequence number for fairness
        between local work and inter-shard arrivals.
        """
        executed = 0
        tasks, inbox = shard.tasks, shard.inbox

        def pop_merged() -> Task | None:
            if tasks:
                if inbox and inbox[0][0] < tasks[0][0]:
                    return inbox.popleft()[1]
                return tasks.popleft()[1]
            if inbox:
                return inbox.popleft()[1]
            return None

        def peek_merged() -> Task | None:
            if tasks:
                if inbox and inbox[0][0] < tasks[0][0]:
                    return inbox[0][1]
                return tasks[0][1]
            if inbox:
                return inbox[0][1]
            return None

        while True:
            task = pop_merged()
            if task is None:
                break
            shard.tasks_executed += 1
            executed += 1
            batcher = task.batcher
            if batcher is None:
                task.action()
            else:
                # Adjacent-in-execution-order same-batcher tasks coalesce;
                # this worker is the only popper, so merged heads seen here
                # are exactly the tasks that would have run next anyway.
                payloads = [task.payload]
                while executed < self.max_tasks_per_batch:
                    upcoming = peek_merged()
                    if upcoming is None or upcoming.batcher is not batcher:
                        break
                    pop_merged()
                    shard.tasks_executed += 1
                    executed += 1
                    payloads.append(upcoming.payload)
                batcher.run_batch(payloads)
            if shard.saturated:
                self._check_watermark(shard)
            if executed > self.max_tasks_per_batch:
                raise RuntimeError(
                    "ShardedKernel exceeded max_tasks_per_batch="
                    f"{self.max_tasks_per_batch}; likely a submit loop"
                )
        return executed

    def _abandon_all(self, error: BaseException) -> None:
        dropped = sum(shard.load() for shard in self.shards) + len(self._in_flight)
        for shard in self.shards:
            shard.tasks.clear()
            shard.inbox.clear()
        self._in_flight.clear()
        if dropped:
            self._abandoned += dropped
            self.emit(BatchAbandoned, "kernel", abandoned=dropped, error=str(error))

    # -- observation -------------------------------------------------------

    def _segment(self) -> Shard:
        current = self._current_shard()
        return self.shards[current if current is not None else 0]

    def subscribe(
        self,
        observer: Callable[[RuntimeEvent], None],
        events: Iterable[type[RuntimeEvent] | str] | None = None,
    ):
        if self.mode == DETERMINISTIC:
            return self.bus.subscribe(observer, events)
        # Parallel: the kernel bus receives nothing (no cross-thread
        # forwarding), so attach to every segment.  The observer may be
        # invoked concurrently from different shard workers.
        return _CompositeSubscription(
            [shard.bus.subscribe(observer, events) for shard in self.shards]
        )

    def publish(self, event: RuntimeEvent) -> None:
        self._segment().bus.publish(event)

    def emit(self, event_cls: type[RuntimeEvent], source: str, **fields: Any) -> None:
        self.publish(event_cls(at=self.clock.now(), source=source, **fields))

    def enable_trace(self, capacity: int = 10_000):
        """Attach (or return) the trace; same contract as ``Kernel``."""
        if self.trace is not None:
            if self.trace.capacity != capacity:
                raise ValueError(
                    f"trace already attached with capacity={self.trace.capacity}; "
                    f"cannot re-enable with capacity={capacity}"
                )
            return self.trace
        if self.mode == DETERMINISTIC:
            self.trace = TraceRecorder(capacity)
            self.bus.subscribe(self.trace)
        else:
            recorders = []
            for shard in self.shards:
                recorder = TraceRecorder(capacity)
                shard.bus.subscribe(recorder)
                recorders.append(recorder)
            self.trace = _MergedTrace(recorders, capacity)
        return self.trace

    # -- reporting ---------------------------------------------------------

    def link_report(self) -> dict[str, int]:
        """Inter-shard traffic counts keyed ``"<from>-><to>"``."""
        return {
            f"{sender}->{receiver}": count
            for (sender, receiver), count in sorted(self.link_counters.items())
        }

    def shard_report(self) -> list[dict[str, int]]:
        """Per-shard execution/inbox statistics for the benchmark output."""
        return [
            {
                "shard": shard.index,
                "tasks_executed": shard.tasks_executed,
                "inbox_received": shard.inbox_received,
                "inbox_overflows": shard.inbox_overflows,
            }
            for shard in self.shards
        ]
