"""Discrete-event simulation core shared by messaging and workflow timers.

Every runtime component in repro (the simulated network, RNIF-style
reliable-messaging timers, workflow deadlines) advances against a single
logical :class:`Clock` driven by an :class:`EventScheduler`.  Nothing in the
library reads wall-clock time: runs are fully deterministic given a seed,
which is what makes the reliability experiments (message loss / duplication
sweeps) reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Clock", "ScheduledEvent", "EventScheduler"]


class Clock:
    """A logical clock measured in abstract time units (call them seconds).

    The clock only moves when the scheduler advances it; components read it
    via :meth:`now`.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Return the current logical time."""
        return self._now

    def _advance_to(self, when: float) -> None:
        if when < self._now:
            raise ValueError(
                f"clock cannot move backwards: {when} < {self._now}"
            )
        self._now = when

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clock(t={self._now:.6f})"


@dataclass(order=True)
class ScheduledEvent:
    """An event queued on the scheduler.

    Ordered by ``(when, seq)`` so that events scheduled for the same instant
    fire in FIFO order, keeping runs deterministic.
    """

    when: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler drops it instead of firing it."""
        self.cancelled = True


class EventScheduler:
    """A deterministic discrete-event loop around a :class:`Clock`.

    Components schedule callbacks at absolute or relative times; ``run``
    variants pop events in time order, advancing the clock to each event's
    timestamp before firing it.
    """

    def __init__(self, clock: Clock | None = None):
        self.clock = clock or Clock()
        self._queue: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self.fired = 0

    # -- scheduling ---------------------------------------------------------

    def at(self, when: float, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``action`` at absolute time ``when``."""
        if when < self.clock.now():
            raise ValueError(
                f"cannot schedule in the past: {when} < {self.clock.now()}"
            )
        event = ScheduledEvent(when, next(self._seq), action, label)
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: float, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``action`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.at(self.clock.now() + delay, action, label)

    def soon(self, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``action`` at the current time (after queued peers)."""
        return self.at(self.clock.now(), action, label)

    # -- introspection ------------------------------------------------------

    def pending(self) -> int:
        """Return the number of live (non-cancelled) queued events."""
        return sum(1 for event in self._queue if not event.cancelled)

    def next_event_time(self) -> float | None:
        """Return the timestamp of the next live event, or ``None``."""
        for event in sorted(self._queue):
            if not event.cancelled:
                return event.when
        return None

    # -- running ------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next live event.  Returns ``False`` if none was queued."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock._advance_to(event.when)
            self.fired += 1
            event.action()
            return True
        return False

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Fire events until the queue drains.  Returns the count fired.

        ``max_events`` guards against non-terminating feedback loops (e.g. a
        retry timer that re-arms forever); exceeding it raises RuntimeError
        because that always indicates a bug in the simulated protocol.
        """
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"scheduler exceeded {max_events} events; "
                    "probable non-terminating simulation"
                )
        return fired

    def run_until(self, deadline: float, max_events: int = 1_000_000) -> int:
        """Fire events with timestamps <= ``deadline``; then set the clock
        to ``deadline`` if it has not reached it.  Returns the count fired.
        """
        fired = 0
        while True:
            upcoming = self.next_event_time()
            if upcoming is None or upcoming > deadline:
                break
            self.step()
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"scheduler exceeded {max_events} events before "
                    f"deadline {deadline}"
                )
        if self.clock.now() < deadline:
            self.clock._advance_to(deadline)
        return fired
