"""Transformation substrate: declarative mappings between document layouts.

Section 3.2 of the paper: "defining transformations pose[s] a significant
manual task ... a domain expert familiar with the business data content"
must define them.  This package is the machinery those experts would use —
a declarative field-mapping language (:mod:`repro.transform.mapping`), a
library of conversion functions (:mod:`repro.transform.functions`), a
registry/router (:mod:`repro.transform.transformer`) and the concrete
catalog of expert-written mappings between every wire/back-end layout and
the normalized layout (:mod:`repro.transform.catalog`).

In the paper's advanced architecture, transformations execute exclusively
inside *bindings* (Section 4.2); in the naive baseline they are entangled
with the workflow itself (Figures 9–10).  Both consume this same substrate,
which is what makes the complexity comparison fair.
"""

from repro.transform.mapping import Compute, Const, Each, Field, Mapping
from repro.transform.transformer import TransformationRegistry
from repro.transform.catalog import build_standard_registry

__all__ = [
    "Field",
    "Const",
    "Compute",
    "Each",
    "Mapping",
    "TransformationRegistry",
    "build_standard_registry",
]
