"""Columnar batch transformation: apply one compiled mapping to many documents.

The per-document path (:meth:`CompiledMapping.apply`) pays generic costs per
message: schema validation walks ``FieldSpec`` objects, every rule goes
through ``Document.get``/``Document.set`` machinery, and every ``Each`` item
allocates wrapper documents.  B2B traffic is vectors of near-identical
documents, so this module hoists that dispatch out of the loop:

* :func:`build_batch_program` lowers a compiled mapping ONCE into
  *vector runners* — closures that run one rule across the whole document
  vector with direct dict indexing — plus *clean checks*, boolean schema
  validators specialized from the mapping's ``FieldSpec`` list.
* :meth:`_BatchProgram.apply` runs the fast path and falls back to the
  reference per-document path on **any** doubt: a clean check fails, a
  vector runner raises, a document has an unexpected shape.  The fallback
  re-runs the whole batch through ``CompiledMapping.apply`` in document
  order, so outputs — and errors, and error *ordering* — are byte-identical
  to ``[compiled.apply(d) for d in docs]`` (property-tested across the full
  standard catalog).

The fast path assumes what the rule language already promises: rules do not
mutate sources and compute functions are pure (rule-major execution calls a
rule on every document before the next rule runs; an impure compute would
observe that reordering).  Mappings with ``post`` hooks, or with indexed
(``[0]``/``[+]``) rule paths, are not vectorized at all — ``apply_batch``
degrades to the per-document loop for them.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping as TypingMapping

from repro.documents.model import Document, DocumentPath
from repro.documents.schema import _TYPE_NAMES, DocumentSchema
from repro.transform.mapping import MISSING, Compute, Const, Each, Field, Rule

__all__ = ["build_batch_program"]

Context = TypingMapping[str, Any]


class _Fallback(Exception):
    """Internal signal: the fast path cannot prove equivalence — rerun the
    batch through the reference per-document path."""


def _str_steps(path_text: str) -> tuple[str, ...] | None:
    """The path's steps when they are all plain field names, else None.

    Indexed paths (``lines[0]``, ``lines[+]``) keep their reference
    semantics by punting the whole mapping to the per-document path.
    """
    steps = DocumentPath(path_text).steps
    if any(not isinstance(step, str) for step in steps):
        return None
    return steps


_MISS = object()


def _read(root: Any, steps: tuple[str, ...]) -> Any:
    """Descend ``steps`` through raw containers; ``_MISS`` when absent.

    (KeyError, TypeError, IndexError) covers exactly the shapes
    ``Document._descend`` maps to "path does not resolve": a missing dict
    key, or indexing a scalar/list with a field name.
    """
    try:
        for step in steps:
            root = root[step]
    except (KeyError, TypeError, IndexError):
        return _MISS
    return root


def _make_reader(steps: tuple[str, ...]) -> Callable[[Any], Any]:
    """A specialized ``_read``: every root handed to a reader is a dict
    (document roots by :class:`Document` invariant, list items by the Each
    runner's type check), so single- and double-step paths skip the
    generic loop + exception machinery entirely."""
    if len(steps) == 1:
        step = steps[0]

        def read_one(root: Any) -> Any:
            return root.get(step, _MISS)

        return read_one
    if len(steps) == 2:
        first, second = steps

        def read_two(root: Any) -> Any:
            node = root.get(first, _MISS)
            if type(node) is dict:
                return node.get(second, _MISS)
            if node is _MISS:
                return _MISS
            return _read(node, (second,))

        return read_two

    def read_deep(root: Any) -> Any:
        return _read(root, steps)

    return read_deep


def _write(target: dict, steps: tuple[str, ...], value: Any) -> None:
    """Set ``value`` under ``steps``, creating dict levels like
    ``Document.set`` — any conflicting intermediate raises and triggers
    the fallback, which reproduces the reference error."""
    for step in steps[:-1]:
        target = target.setdefault(step, {})
    target[steps[-1]] = value


# ---------------------------------------------------------------------------
# Schema clean checks
# ---------------------------------------------------------------------------


def _compile_spec_check(spec) -> Callable[[dict], bool] | None:
    """A boolean predicate mirroring ``FieldSpec.violations_for``.

    True means provably clean; False means *some* violation exists (the
    fallback recomputes the exact message list).  None when the spec uses
    a feature this compiler does not model — the whole program is then
    unsupported.
    """
    steps = _str_steps(spec.path)
    if steps is None:
        return None
    reader = _make_reader(steps)
    required = spec.required
    type_name = spec.type_name
    choices = spec.choices
    check = spec.check

    if type_name == "list":
        min_items = spec.min_items
        item_checks: list[Callable[[dict], bool]] | None = None
        if spec.items is not None:
            item_checks = []
            for item_spec in spec.items.fields:
                compiled = _compile_spec_check(item_spec)
                if compiled is None:
                    return None
                item_checks.append(compiled)

        def check_list(root: dict) -> bool:
            value = reader(root)
            if value is _MISS:
                return not required
            if type(value) is not list or len(value) < min_items:
                return False
            if item_checks is not None:
                for element in value:
                    if type(element) is not dict:
                        return False
                    for item_check in item_checks:
                        if not item_check(element):
                            return False
            return True

        return check_list

    if type_name == "dict":

        def check_dict(root: dict) -> bool:
            value = reader(root)
            if value is _MISS:
                return not required
            return type(value) is dict

        return check_dict

    expected = _TYPE_NAMES[type_name]
    numeric = type_name in ("int", "float", "number")

    def check_scalar(root: dict) -> bool:
        value = reader(root)
        if value is _MISS:
            return not required
        if numeric:
            if isinstance(value, bool) or not isinstance(value, expected):
                return False
        elif not isinstance(value, expected):
            return False
        if choices is not None and value not in choices:
            return False
        if check is not None:
            try:
                if not check(value):
                    return False
            except Exception:
                return False
        return True

    return check_scalar


def _compile_clean_check(
    schema: DocumentSchema | None, format_name: str, doc_type: str
) -> Callable[[dict], bool] | None | bool:
    """A root-dict predicate equivalent (as a boolean) to ``schema.violations``.

    Returns True when there is no schema (always clean), None when the
    schema cannot be modelled (program unsupported).  The format/doc_type
    half of ``violations`` is static here: every batch document carries
    the mapping's own format and doc_type.
    """
    if schema is None:
        return True
    if schema.format_name and schema.format_name != format_name:
        return None  # every document would fail; keep reference messages
    if schema.doc_type and schema.doc_type != doc_type:
        return None
    checks = []
    for spec in schema.fields:
        compiled = _compile_spec_check(spec)
        if compiled is None:
            return None
        checks.append(compiled)

    def clean(root: dict) -> bool:
        for spec_check in checks:
            if not spec_check(root):
                return False
        return True

    return clean


# ---------------------------------------------------------------------------
# Vector rule runners
# ---------------------------------------------------------------------------
#
# A top-level runner has signature (docs, roots, targets, context):
#   docs    — the original Documents (compute functions receive them);
#   roots   — [doc.data for doc in docs];
#   targets — the raw target dicts being built, parallel to roots;
#   context — the shared caller context.
#
# A nested (per-item) runner has signature (item_docs, items, outs, ictxs):
#   item_docs — per-item Document wrappers, or None when no compute rule
#               in the subtree needs them;
#   items     — the raw item dicts of ONE parent document;
#   outs      — the item target dicts being built;
#   ictxs     — per-item contexts ({**context, _index, _ordinal}), or None.


def _needs_item_context(rules: tuple[Rule, ...]) -> bool:
    """True when some rule in the subtree receives documents/contexts."""
    return any(
        isinstance(rule, Compute)
        or (isinstance(rule, Each) and _needs_item_context(rule.rules))
        for rule in rules
    )


def _make_field(rule: Field, nested: bool):
    source_steps = _str_steps(rule.source)
    target_steps = _str_steps(rule.target)
    if source_steps is None or target_steps is None:
        return None
    convert = rule.convert
    default = rule.default
    has_default = default is not MISSING
    required = rule.required
    reader = _make_reader(source_steps)
    single_target = target_steps[0] if len(target_steps) == 1 else None

    def run(docs, roots, targets, context):
        for index, root in enumerate(roots):
            value = reader(root)
            if value is _MISS:
                if has_default:
                    value = default
                elif required:
                    raise _Fallback
                else:
                    continue
            elif convert is not None:
                value = convert(value)
            if single_target is not None:
                targets[index][single_target] = value
            else:
                _write(targets[index], target_steps, value)

    return run


def _make_const(rule: Const, nested: bool):
    target_steps = _str_steps(rule.target)
    if target_steps is None:
        return None
    value = rule.value
    single_target = target_steps[0] if len(target_steps) == 1 else None

    def run(docs, roots, targets, context):
        if single_target is not None:
            for target in targets:
                target[single_target] = value
        else:
            for target in targets:
                _write(target, target_steps, value)

    return run


def _make_compute(rule: Compute, nested: bool):
    target_steps = _str_steps(rule.target)
    if target_steps is None:
        return None
    fn = rule.fn
    single_target = target_steps[0] if len(target_steps) == 1 else None

    if nested:
        # Per-item contexts carry _index/_ordinal, exactly as run_each builds.
        def run_nested(item_docs, items, outs, ictxs):
            for index, doc in enumerate(item_docs):
                value = fn(doc, ictxs[index])
                if single_target is not None:
                    outs[index][single_target] = value
                else:
                    _write(outs[index], target_steps, value)

        return run_nested

    def run(docs, roots, targets, context):
        for index, doc in enumerate(docs):
            value = fn(doc, context)
            if single_target is not None:
                targets[index][single_target] = value
            else:
                _write(targets[index], target_steps, value)

    return run


def _make_each(rule: Each, source_format: str, nested: bool):
    source_steps = _str_steps(rule.source)
    target_steps = _str_steps(rule.target)
    if source_steps is None or target_steps is None:
        return None
    min_items = rule.min_items
    reader = _make_reader(source_steps)
    item_runners = []
    for inner in rule.rules:
        runner = _compile_rule(inner, source_format, nested=True)
        if runner is None:
            return None
        item_runners.append(runner)
    needs_context = _needs_item_context(rule.rules)
    single_target = target_steps[0] if len(target_steps) == 1 else None

    def map_items(items: list, parent_context) -> list[dict]:
        if type(items) is not list or len(items) < min_items:
            raise _Fallback
        for element in items:
            # The reference rejects non-dict items even when no nested rule
            # reads them; mirror that before running any rule.
            if type(element) is not dict:
                raise _Fallback
        outs: list[dict] = [{} for _ in items]
        if needs_context:
            item_docs = [Document(source_format, "item", element) for element in items]
            ictxs = [
                {**parent_context, "_index": index, "_ordinal": index + 1}
                for index in range(len(items))
            ]
        else:
            item_docs = None
            ictxs = None
        for runner in item_runners:
            runner(item_docs, items, outs, ictxs)
        return outs

    if nested:
        # An Each inside an Each: expand per parent item.
        def run_nested(item_docs, items, outs, ictxs):
            for index, item in enumerate(items):
                node = reader(item)
                if node is _MISS:
                    raise _Fallback
                built = map_items(node, ictxs[index] if ictxs is not None else {})
                if single_target is not None:
                    outs[index][single_target] = built
                else:
                    _write(outs[index], target_steps, built)

        return run_nested

    def run(docs, roots, targets, context):
        for index, root in enumerate(roots):
            node = reader(root)
            if node is _MISS:
                raise _Fallback
            built = map_items(node, context)
            if single_target is not None:
                targets[index][single_target] = built
            else:
                _write(targets[index], target_steps, built)

    return run


def _compile_rule(rule: Rule, source_format: str, nested: bool):
    if isinstance(rule, Field):
        return _make_field(rule, nested)
    if isinstance(rule, Const):
        return _make_const(rule, nested)
    if isinstance(rule, Compute):
        return _make_compute(rule, nested)
    if isinstance(rule, Each):
        return _make_each(rule, source_format, nested)
    return None


# ---------------------------------------------------------------------------
# The program
# ---------------------------------------------------------------------------


class _BatchProgram:
    """The vectorized form of one compiled mapping."""

    __slots__ = ("compiled", "runners", "source_clean", "target_clean", "fallbacks")

    def __init__(self, compiled, runners, source_clean, target_clean):
        self.compiled = compiled
        self.runners = runners
        self.source_clean = source_clean
        self.target_clean = target_clean
        #: batches that could not be proven equivalent and were re-run
        #: through the reference path (visible in registry cache stats).
        self.fallbacks = 0

    def apply(self, documents: list[Document], context: Context | None = None) -> list[Document]:
        context = context or {}
        try:
            results = self._fast(documents, context)
        except Exception:
            results = None
        if results is None:
            self.fallbacks += 1
            compiled = self.compiled
            return [compiled.apply(document, context) for document in documents]
        return results

    def _fast(self, documents: list[Document], context: Context) -> list[Document] | None:
        mapping = self.compiled.mapping
        source_format = mapping.source_format
        doc_type = mapping.doc_type
        for document in documents:
            if document.format_name != source_format or document.doc_type != doc_type:
                return None
        roots = [document.data for document in documents]
        source_clean = self.source_clean
        if source_clean is not True:
            for root in roots:
                if not source_clean(root):
                    return None
        targets: list[dict] = [{} for _ in documents]
        for runner in self.runners:
            runner(documents, roots, targets, context)
        target_clean = self.target_clean
        if target_clean is not True:
            for target in targets:
                if not target_clean(target):
                    return None
        target_format = mapping.target_format
        return [Document(target_format, doc_type, target) for target in targets]


def build_batch_program(compiled) -> _BatchProgram | None:
    """Vectorize ``compiled`` (a :class:`CompiledMapping`); None when the
    mapping uses features the fast path does not model (``post`` hooks,
    indexed rule paths, unmodellable schema specs)."""
    mapping = compiled.mapping
    if mapping.post is not None:
        return None
    source_clean = _compile_clean_check(
        mapping.source_schema, mapping.source_format, mapping.doc_type
    )
    target_clean = _compile_clean_check(
        mapping.target_schema, mapping.target_format, mapping.doc_type
    )
    if source_clean is None or target_clean is None:
        return None
    runners = []
    for rule in mapping.rules:
        runner = _compile_rule(rule, mapping.source_format, nested=False)
        if runner is None:
            return None
        runners.append(runner)
    return _BatchProgram(compiled, runners, source_clean, target_clean)
