"""Content-addressed transformation result cache.

B2B traffic is highly repetitive — the same purchase orders and acks flow
through the same mapping chains all day — so the registry can memoize
whole transformations.  An entry is keyed on::

    (document.content_digest(), chain fingerprint tuple, registry.version)

following the repo's two existing digest caches (the fingerprint-keyed
binding plan cache and the incremental-lint verdict cache): the *content*
digest makes identical payloads collide on purpose, the *fingerprint*
chain pins the exact mapping definitions, and the registry *version*
(also bumped on every registration) makes stale entries unreachable even
before ``clear()`` drops them.

Only **cacheable** chains consult the cache.  Cacheability is a static
property computed at compile time by the shared effect analyzer
(:mod:`repro.verify.effects`): a mapping with a ``post`` hook or a
compute function that is not provably pure — it reads its ``context``
parameter, or has no bytecode the analyzer can see — may produce
different output for the same document, so those chains bypass the cache
entirely (counted per route in ``bypasses``).  The analyzer sees through
``functools.partial`` and bound methods, so partial applications of pure
document readers stay cacheable.

Entries store a deep copy of the result and hits return fresh deep
copies, so callers may freely mutate what they receive — exactly as they
can with the uncached path, which builds a new document per call.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Any

from repro.documents.model import Document

__all__ = ["TransformCache"]


def _copy_tree(node: Any) -> Any:
    """Deep-copy the dict/list/scalar tree of a document payload.

    Hand-rolled because this runs per hit on the hot path;
    ``copy.deepcopy`` pays memo-dict overhead documents never need
    (scalars are immutable, cycles cannot be built through ``Document.set``).
    """
    if type(node) is dict:
        return {key: _copy_tree(value) for key, value in node.items()}
    if type(node) is list:
        return [_copy_tree(item) for item in node]
    return node


class TransformCache:
    """A bounded LRU of transformation results with per-route counters.

    :param capacity: maximum number of entries; the least recently *used*
        entry is evicted on overflow.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Any, tuple[str, str, Any, str]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
        #: per-route ("src->tgt/doc_type") breakdowns of the four counters
        self.route_hits: Counter[str] = Counter()
        self.route_misses: Counter[str] = Counter()
        self.route_evictions: Counter[str] = Counter()
        self.route_bypasses: Counter[str] = Counter()

    def __len__(self) -> int:
        return len(self._entries)

    # -- the cache protocol --------------------------------------------------

    def lookup(self, key: Any, route: str) -> Document | None:
        """Return a fresh copy of the cached result, or None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self.route_misses[route] += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self.route_hits[route] += 1
        format_name, doc_type, data, _ = entry
        return Document(format_name, doc_type, _copy_tree(data))

    def store(self, key: Any, result: Document, route: str) -> None:
        """Remember ``result`` under ``key`` (a private deep copy is kept)."""
        entries = self._entries
        entries[key] = (
            result.format_name,
            result.doc_type,
            _copy_tree(result.data),
            route,
        )
        entries.move_to_end(key)
        if len(entries) > self.capacity:
            _, (_, _, _, evicted_route) = entries.popitem(last=False)
            self.evictions += 1
            self.route_evictions[evicted_route] += 1

    def note_bypass(self, route: str) -> None:
        """Record that a context-sensitive chain skipped the cache."""
        self.bypasses += 1
        self.route_bypasses[route] += 1

    def clear(self) -> None:
        """Drop every entry (registration invalidation); counters survive."""
        self._entries.clear()

    # -- reporting -----------------------------------------------------------

    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        looked_up = self.hits + self.misses
        return self.hits / looked_up if looked_up else 0.0

    def snapshot(self) -> dict[str, Any]:
        """Aggregate + per-route statistics for stats surfaces and benches."""
        routes = sorted(
            set(self.route_hits)
            | set(self.route_misses)
            | set(self.route_evictions)
            | set(self.route_bypasses)
        )
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "hit_rate": self.hit_rate(),
            "routes": {
                route: {
                    "hits": self.route_hits[route],
                    "misses": self.route_misses[route],
                    "evictions": self.route_evictions[route],
                    "bypasses": self.route_bypasses[route],
                }
                for route in routes
            },
        }

    def publish(self, runtime, source: str = "transform-cache") -> None:
        """Emit a :class:`~repro.runtime.events.TransformCacheSnapshot` on
        ``runtime``'s bus, surfacing the counters to the MetricsObserver."""
        from repro.runtime.events import TransformCacheSnapshot

        runtime.emit(
            TransformCacheSnapshot,
            source,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            bypasses=self.bypasses,
            entries=len(self._entries),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TransformCache(entries={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
