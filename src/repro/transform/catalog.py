"""The concrete mapping catalog: every layout <-> the normalized layout.

These are the transformations the paper says "require a domain expert
familiar with the business data content" (Section 3.2): 2 directions x
2 document kinds (PO, POA) x 5 formats (EDI X12, RosettaNet XML, OAGIS
BOD, SAP IDoc, Oracle OIF) = 20 mappings, all through the normalized hub.

Context keys honoured (all optional; sensible defaults are derived from the
document itself):

================= =========================================================
``sender_id``     overrides the envelope sender (bindings set it from the
                  enterprise's own id)
``receiver_id``   overrides the envelope receiver
``control_number``X12 interchange control number
``st_control``    X12 transaction-set control number
``pip_instance_id`` RosettaNet PIP instance id
``bod_id``        OAGIS BOD id
``idoc_number``   SAP IDoc number
``sender_port`` / ``receiver_port``  SAP port names
================= =========================================================
"""

from __future__ import annotations

from typing import Any, Callable, Mapping as TypingMapping

from repro.documents import edi, idoc, normalized, oagis, oracle_oif, rosettanet
from repro.documents.model import Document, DocumentPath
from repro.errors import MappingError
from repro.transform import functions
from repro.transform.mapping import Compute, Const, Each, Field, Mapping
from repro.transform.transformer import TransformationRegistry

__all__ = ["standard_mappings", "build_standard_registry"]

NORM = normalized.NORMALIZED

Context = TypingMapping[str, Any]


# ---------------------------------------------------------------------------
# Compute helpers
# ---------------------------------------------------------------------------


# Helper factories precompile their DocumentPaths once at catalog build
# time: compute functions run per document on the hot path, and a string
# path would re-parse inside every ``document.get`` call.


def _ctx_or_path(key: str, fallback_path: str) -> Callable[[Document, Context], Any]:
    fallback = DocumentPath(fallback_path)

    def compute(document: Document, context: Context) -> Any:
        if key in context:
            return context[key]
        return document.get(fallback)

    compute.__name__ = f"ctx_{key}_or_{fallback_path}"
    return compute


def _ctx_or_derived(key: str, prefix: str, path: str) -> Callable[[Document, Context], Any]:
    compiled = DocumentPath(path)

    def compute(document: Document, context: Context) -> Any:
        if key in context:
            return str(context[key])
        return f"{prefix}{document.get(compiled)}"

    compute.__name__ = f"ctx_{key}_or_derived"
    return compute


def _str_of(path: str) -> Callable[[Document, Context], str]:
    compiled = DocumentPath(path)

    def compute(document: Document, context: Context) -> str:
        return str(document.get(compiled))

    compute.__name__ = f"str_of_{path}"
    return compute


def _len_of(path: str) -> Callable[[Document, Context], int]:
    compiled = DocumentPath(path)

    def compute(document: Document, context: Context) -> int:
        return len(document.get(compiled))

    compute.__name__ = f"len_of_{path}"
    return compute


def _derived_doc_id(prefix: str, path: str) -> Callable[[Document, Context], str]:
    compiled = DocumentPath(path)

    def compute(document: Document, context: Context) -> str:
        return f"{prefix}{document.get(compiled)}"

    compute.__name__ = f"doc_id_{prefix}"
    return compute


_BUYER_ID = DocumentPath("header.buyer_id")
_SELLER_ID = DocumentPath("header.seller_id")
_PARTNERS = DocumentPath("partners")


def _sap_partners(document: Document, context: Context) -> list[dict[str, str]]:
    """Build the IDoc partner segments: AG = sold-to (buyer), LF = vendor."""
    return [
        {"parvw": "AG", "partn": str(document.get(_BUYER_ID))},
        {"parvw": "LF", "partn": str(document.get(_SELLER_ID))},
    ]


def _sap_partner(role: str) -> Callable[[Document, Context], str]:
    def compute(document: Document, context: Context) -> str:
        for partner in document.get(_PARTNERS):
            if partner.get("parvw") == role:
                return partner["partn"]
        raise MappingError(f"IDoc has no partner with role {role!r}")

    compute.__name__ = f"sap_partner_{role}"
    return compute


# ---------------------------------------------------------------------------
# EDI X12
# ---------------------------------------------------------------------------


def _edi_mappings() -> list[Mapping]:
    po_out = Mapping(
        name="normalized__to__edi-x12/purchase_order",
        source_format=NORM,
        target_format=edi.EDI_X12,
        doc_type="purchase_order",
        source_schema=normalized.normalized_po_schema(),
        target_schema=edi.edi_po_schema(),
        rules=[
            Compute("isa.sender_id", _ctx_or_path("sender_id", "header.buyer_id")),
            Compute("isa.receiver_id", _ctx_or_path("receiver_id", "header.seller_id")),
            Compute("isa.date", _str_of("header.issued_at")),
            Compute(
                "isa.control_number",
                _ctx_or_derived("control_number", "CN", "header.po_number"),
            ),
            Const("st.transaction_set", "850"),
            Compute("st.control_number", _ctx_or_derived("st_control", "0001", "header.po_number")),
            Const("beg.purpose_code", "00"),
            Const("beg.type_code", "SA"),
            Field("header.po_number", "beg.po_number"),
            Compute("beg.date", _str_of("header.issued_at")),
            Field("header.currency", "cur.currency"),
            Field("header.payment_terms", "itd.terms_description", default=""),
            Each(
                "lines",
                "po1",
                [
                    Field("line_no", "line_no", functions.to_int),
                    Field("quantity", "quantity", functions.to_float),
                    Const("unit", "EA"),
                    Field("unit_price", "unit_price", functions.to_float),
                    Field("sku", "sku"),
                    Field("description", "description", default=""),
                ],
            ),
            Field("summary.line_count", "ctt.line_count", functions.to_int),
            Field("summary.total_amount", "amt.total_amount", functions.money),
        ],
    )
    po_in = Mapping(
        name="edi-x12__to__normalized/purchase_order",
        source_format=edi.EDI_X12,
        target_format=NORM,
        doc_type="purchase_order",
        source_schema=edi.edi_po_schema(),
        target_schema=normalized.normalized_po_schema(),
        rules=[
            Compute("header.document_id", _derived_doc_id("PO-DOC-", "beg.po_number")),
            Field("beg.po_number", "header.po_number"),
            Field("beg.date", "header.issued_at", functions.to_float),
            Field("isa.sender_id", "header.buyer_id"),
            Field("isa.receiver_id", "header.seller_id"),
            Field("cur.currency", "header.currency"),
            Field("itd.terms_description", "header.payment_terms", default=""),
            Each(
                "po1",
                "lines",
                [
                    Field("line_no", "line_no", functions.to_int),
                    Field("sku", "sku"),
                    Field("description", "description", default=""),
                    Field("quantity", "quantity", functions.to_float),
                    Field("unit_price", "unit_price", functions.money),
                ],
            ),
            Field("amt.total_amount", "summary.total_amount", functions.money),
            Field("ctt.line_count", "summary.line_count", functions.to_int),
        ],
    )
    poa_out = Mapping(
        name="normalized__to__edi-x12/po_ack",
        source_format=NORM,
        target_format=edi.EDI_X12,
        doc_type="po_ack",
        source_schema=normalized.normalized_poa_schema(),
        target_schema=edi.edi_poa_schema(),
        rules=[
            Compute("isa.sender_id", _ctx_or_path("sender_id", "header.seller_id")),
            Compute("isa.receiver_id", _ctx_or_path("receiver_id", "header.buyer_id")),
            Compute("isa.date", _str_of("header.issued_at")),
            Compute(
                "isa.control_number",
                _ctx_or_derived("control_number", "CN", "header.po_number"),
            ),
            Const("st.transaction_set", "855"),
            Compute("st.control_number", _ctx_or_derived("st_control", "0001", "header.po_number")),
            Const("bak.purpose_code", "00"),
            Field(
                "header.status", "bak.ack_type",
                functions.code_map(edi.ACK_TYPE_BY_STATUS, "POA status"),
            ),
            Field("header.po_number", "bak.po_number"),
            Compute("bak.date", _str_of("header.issued_at")),
            Each(
                "lines",
                "ack",
                [
                    Field(
                        "status", "line_status",
                        functions.code_map(edi.LINE_CODE_BY_STATUS, "line status"),
                    ),
                    Field("quantity", "quantity", functions.to_float),
                    Const("unit", "EA"),
                    Field("sku", "sku"),
                    Field("line_no", "line_no", functions.to_int),
                ],
            ),
            Compute("ctt.line_count", _len_of("lines")),
            Field("summary.accepted_amount", "amt.accepted_amount", functions.money),
        ],
    )
    poa_in = Mapping(
        name="edi-x12__to__normalized/po_ack",
        source_format=edi.EDI_X12,
        target_format=NORM,
        doc_type="po_ack",
        source_schema=edi.edi_poa_schema(),
        target_schema=normalized.normalized_poa_schema(),
        rules=[
            Compute("header.document_id", _derived_doc_id("POA-DOC-", "bak.po_number")),
            Field("bak.po_number", "header.po_number"),
            Field("bak.date", "header.issued_at", functions.to_float),
            Field("isa.receiver_id", "header.buyer_id"),
            Field("isa.sender_id", "header.seller_id"),
            Field(
                "bak.ack_type", "header.status",
                functions.code_map(edi.STATUS_BY_ACK_TYPE, "X12 ack type"),
            ),
            Each(
                "ack",
                "lines",
                [
                    Field("line_no", "line_no", functions.to_int),
                    Field("sku", "sku"),
                    Field(
                        "line_status", "status",
                        functions.code_map(edi.STATUS_BY_LINE_CODE, "X12 line code"),
                    ),
                    Field("quantity", "quantity", functions.to_float),
                ],
            ),
            Field("amt.accepted_amount", "summary.accepted_amount", functions.money),
        ],
    )
    return [po_out, po_in, poa_out, poa_in]


# ---------------------------------------------------------------------------
# RosettaNet
# ---------------------------------------------------------------------------


def _rosettanet_mappings() -> list[Mapping]:
    po_out = Mapping(
        name="normalized__to__rosettanet-xml/purchase_order",
        source_format=NORM,
        target_format=rosettanet.ROSETTANET,
        doc_type="purchase_order",
        source_schema=normalized.normalized_po_schema(),
        target_schema=rosettanet.rn_po_schema(),
        rules=[
            Const("service_header.pip_code", "3A4"),
            Compute(
                "service_header.pip_instance_id",
                _ctx_or_derived("pip_instance_id", "PIP-", "header.po_number"),
            ),
            Const("service_header.from_role", "Buyer"),
            Const("service_header.to_role", "Seller"),
            Compute("service_header.from_partner", _ctx_or_path("sender_id", "header.buyer_id")),
            Compute("service_header.to_partner", _ctx_or_path("receiver_id", "header.seller_id")),
            Field("header.document_id", "order.global_document_id"),
            Field("header.po_number", "order.po_number"),
            Field("header.currency", "order.currency_code"),
            Field("header.issued_at", "order.document_date", functions.to_float),
            Field("header.payment_terms", "order.payment_terms", default=""),
            Field("summary.total_amount", "order.total_amount", functions.money),
            Each(
                "lines",
                "order.product_lines",
                [
                    Field("line_no", "line_number", functions.to_int),
                    Field("sku", "global_product_id"),
                    Field("description", "description", default=""),
                    Field("quantity", "ordered_quantity", functions.to_float),
                    Field("unit_price", "unit_price", functions.money),
                ],
            ),
        ],
    )
    po_in = Mapping(
        name="rosettanet-xml__to__normalized/purchase_order",
        source_format=rosettanet.ROSETTANET,
        target_format=NORM,
        doc_type="purchase_order",
        source_schema=rosettanet.rn_po_schema(),
        target_schema=normalized.normalized_po_schema(),
        rules=[
            Field("order.global_document_id", "header.document_id"),
            Field("order.po_number", "header.po_number"),
            Field("order.document_date", "header.issued_at", functions.to_float),
            Field("service_header.from_partner", "header.buyer_id"),
            Field("service_header.to_partner", "header.seller_id"),
            Field("order.currency_code", "header.currency"),
            Field("order.payment_terms", "header.payment_terms", default=""),
            Each(
                "order.product_lines",
                "lines",
                [
                    Field("line_number", "line_no", functions.to_int),
                    Field("global_product_id", "sku"),
                    Field("description", "description", default=""),
                    Field("ordered_quantity", "quantity", functions.to_float),
                    Field("unit_price", "unit_price", functions.money),
                ],
            ),
            Field("order.total_amount", "summary.total_amount", functions.money),
            Compute("summary.line_count", _len_of("order.product_lines")),
        ],
    )
    poa_out = Mapping(
        name="normalized__to__rosettanet-xml/po_ack",
        source_format=NORM,
        target_format=rosettanet.ROSETTANET,
        doc_type="po_ack",
        source_schema=normalized.normalized_poa_schema(),
        target_schema=rosettanet.rn_poa_schema(),
        rules=[
            Const("service_header.pip_code", "3A4"),
            Compute(
                "service_header.pip_instance_id",
                _ctx_or_derived("pip_instance_id", "PIP-", "header.po_number"),
            ),
            Const("service_header.from_role", "Seller"),
            Const("service_header.to_role", "Buyer"),
            Compute("service_header.from_partner", _ctx_or_path("sender_id", "header.seller_id")),
            Compute("service_header.to_partner", _ctx_or_path("receiver_id", "header.buyer_id")),
            Field("header.document_id", "acknowledgment.global_document_id"),
            Field("header.po_number", "acknowledgment.po_number"),
            Field("header.issued_at", "acknowledgment.document_date", functions.to_float),
            Field(
                "header.status", "acknowledgment.global_response_code",
                functions.code_map(rosettanet.RESPONSE_CODE_BY_STATUS, "POA status"),
            ),
            Field(
                "summary.accepted_amount", "acknowledgment.accepted_amount",
                functions.money,
            ),
            Each(
                "lines",
                "acknowledgment.ack_lines",
                [
                    Field("line_no", "line_number", functions.to_int),
                    Field("sku", "global_product_id"),
                    Field(
                        "status", "response_code",
                        functions.code_map(rosettanet.LINE_CODE_BY_STATUS, "line status"),
                    ),
                    Field("quantity", "accepted_quantity", functions.to_float),
                ],
            ),
        ],
    )
    poa_in = Mapping(
        name="rosettanet-xml__to__normalized/po_ack",
        source_format=rosettanet.ROSETTANET,
        target_format=NORM,
        doc_type="po_ack",
        source_schema=rosettanet.rn_poa_schema(),
        target_schema=normalized.normalized_poa_schema(),
        rules=[
            Field("acknowledgment.global_document_id", "header.document_id"),
            Field("acknowledgment.po_number", "header.po_number"),
            Field("acknowledgment.document_date", "header.issued_at", functions.to_float),
            Field("service_header.to_partner", "header.buyer_id"),
            Field("service_header.from_partner", "header.seller_id"),
            Field(
                "acknowledgment.global_response_code", "header.status",
                functions.code_map(rosettanet.STATUS_BY_RESPONSE_CODE, "RN response code"),
            ),
            Each(
                "acknowledgment.ack_lines",
                "lines",
                [
                    Field("line_number", "line_no", functions.to_int),
                    Field("global_product_id", "sku"),
                    Field(
                        "response_code", "status",
                        functions.code_map(rosettanet.STATUS_BY_LINE_CODE, "RN line code"),
                    ),
                    Field("accepted_quantity", "quantity", functions.to_float),
                ],
            ),
            Field(
                "acknowledgment.accepted_amount", "summary.accepted_amount",
                functions.money,
            ),
        ],
    )
    return [po_out, po_in, poa_out, poa_in]


# ---------------------------------------------------------------------------
# OAGIS
# ---------------------------------------------------------------------------


def _oagis_mappings() -> list[Mapping]:
    po_out = Mapping(
        name="normalized__to__oagis-bod/purchase_order",
        source_format=NORM,
        target_format=oagis.OAGIS,
        doc_type="purchase_order",
        source_schema=normalized.normalized_po_schema(),
        target_schema=oagis.oagis_po_schema(),
        rules=[
            Compute("application_area.sender_id", _ctx_or_path("sender_id", "header.buyer_id")),
            Compute(
                "application_area.receiver_id",
                _ctx_or_path("receiver_id", "header.seller_id"),
            ),
            Field("header.issued_at", "application_area.creation_time", functions.to_float),
            Compute(
                "application_area.bod_id",
                _ctx_or_derived("bod_id", "BOD-", "header.po_number"),
            ),
            Field("header.document_id", "order_header.document_id"),
            Field("header.po_number", "order_header.po_number"),
            Field("header.currency", "order_header.currency"),
            Field("summary.total_amount", "order_header.total_value", functions.money),
            Field("header.payment_terms", "order_header.terms", default=""),
            Each(
                "lines",
                "order_lines",
                [
                    Field("line_no", "line_num", functions.to_int),
                    Field("sku", "item_id"),
                    Field("description", "item_description", default=""),
                    Field("quantity", "quantity", functions.to_float),
                    Field("unit_price", "price", functions.money),
                ],
            ),
        ],
    )
    po_in = Mapping(
        name="oagis-bod__to__normalized/purchase_order",
        source_format=oagis.OAGIS,
        target_format=NORM,
        doc_type="purchase_order",
        source_schema=oagis.oagis_po_schema(),
        target_schema=normalized.normalized_po_schema(),
        rules=[
            Field("order_header.document_id", "header.document_id"),
            Field("order_header.po_number", "header.po_number"),
            Field("application_area.creation_time", "header.issued_at", functions.to_float),
            Field("application_area.sender_id", "header.buyer_id"),
            Field("application_area.receiver_id", "header.seller_id"),
            Field("order_header.currency", "header.currency"),
            Field("order_header.terms", "header.payment_terms", default=""),
            Each(
                "order_lines",
                "lines",
                [
                    Field("line_num", "line_no", functions.to_int),
                    Field("item_id", "sku"),
                    Field("item_description", "description", default=""),
                    Field("quantity", "quantity", functions.to_float),
                    Field("price", "unit_price", functions.money),
                ],
            ),
            Field("order_header.total_value", "summary.total_amount", functions.money),
            Compute("summary.line_count", _len_of("order_lines")),
        ],
    )
    poa_out = Mapping(
        name="normalized__to__oagis-bod/po_ack",
        source_format=NORM,
        target_format=oagis.OAGIS,
        doc_type="po_ack",
        source_schema=normalized.normalized_poa_schema(),
        target_schema=oagis.oagis_poa_schema(),
        rules=[
            Compute("application_area.sender_id", _ctx_or_path("sender_id", "header.seller_id")),
            Compute(
                "application_area.receiver_id",
                _ctx_or_path("receiver_id", "header.buyer_id"),
            ),
            Field("header.issued_at", "application_area.creation_time", functions.to_float),
            Compute(
                "application_area.bod_id",
                _ctx_or_derived("bod_id", "BOD-ACK-", "header.po_number"),
            ),
            Field("header.document_id", "ack_header.document_id"),
            Field("header.po_number", "ack_header.po_number"),
            Field(
                "header.status", "ack_header.acknowledge_code",
                functions.code_map(oagis.ACK_CODE_BY_STATUS, "POA status"),
            ),
            Field("summary.accepted_amount", "ack_header.total_accepted", functions.money),
            Each(
                "lines",
                "ack_lines",
                [
                    Field("line_no", "line_num", functions.to_int),
                    Field("sku", "item_id"),
                    Field(
                        "status", "line_code",
                        functions.code_map(oagis.LINE_CODE_BY_STATUS, "line status"),
                    ),
                    Field("quantity", "quantity", functions.to_float),
                ],
            ),
        ],
    )
    poa_in = Mapping(
        name="oagis-bod__to__normalized/po_ack",
        source_format=oagis.OAGIS,
        target_format=NORM,
        doc_type="po_ack",
        source_schema=oagis.oagis_poa_schema(),
        target_schema=normalized.normalized_poa_schema(),
        rules=[
            Field("ack_header.document_id", "header.document_id"),
            Field("ack_header.po_number", "header.po_number"),
            Field("application_area.creation_time", "header.issued_at", functions.to_float),
            Field("application_area.receiver_id", "header.buyer_id"),
            Field("application_area.sender_id", "header.seller_id"),
            Field(
                "ack_header.acknowledge_code", "header.status",
                functions.code_map(oagis.STATUS_BY_ACK_CODE, "OAGIS ack code"),
            ),
            Each(
                "ack_lines",
                "lines",
                [
                    Field("line_num", "line_no", functions.to_int),
                    Field("item_id", "sku"),
                    Field(
                        "line_code", "status",
                        functions.code_map(oagis.STATUS_BY_LINE_CODE, "OAGIS line code"),
                    ),
                    Field("quantity", "quantity", functions.to_float),
                ],
            ),
            Field("ack_header.total_accepted", "summary.accepted_amount", functions.money),
        ],
    )
    return [po_out, po_in, poa_out, poa_in]


# ---------------------------------------------------------------------------
# SAP IDoc
# ---------------------------------------------------------------------------


def _sap_mappings() -> list[Mapping]:
    po_out = Mapping(
        name="normalized__to__sap-idoc/purchase_order",
        source_format=NORM,
        target_format=idoc.SAP_IDOC,
        doc_type="purchase_order",
        source_schema=normalized.normalized_po_schema(),
        target_schema=idoc.idoc_po_schema(),
        rules=[
            Compute(
                "control.idoc_number",
                _ctx_or_path("idoc_number", "header.document_id"),
            ),
            Const("control.idoc_type", "ORDERS05"),
            Const("control.message_type", "ORDERS"),
            Compute(
                "control.sender_port",
                lambda document, context: context.get("sender_port", "B2BHUB"),
                label="sender_port",
            ),
            Compute(
                "control.receiver_port",
                lambda document, context: context.get("receiver_port", "SAPERP"),
                label="receiver_port",
            ),
            Field("header.issued_at", "control.created_at", functions.to_float),
            Const("header.action", "000"),
            Field("header.currency", "header.curcy", functions.truncated(3)),
            Field("header.po_number", "header.belnr"),
            Const("header.bsart", "NB"),
            Field("header.payment_terms", "header.zterm", functions.truncated(10), default=""),
            Compute("partners", _sap_partners, label="sap_partners"),
            Each(
                "lines",
                "items",
                [
                    Field("line_no", "posex", functions.to_int),
                    Field("quantity", "menge", functions.to_float),
                    Field("unit_price", "vprei", functions.money),
                    Field("sku", "matnr"),
                    Field("description", "arktx", functions.truncated(40), default=""),
                ],
            ),
            Field("summary.total_amount", "summary.summe", functions.money),
        ],
    )
    po_in = Mapping(
        name="sap-idoc__to__normalized/purchase_order",
        source_format=idoc.SAP_IDOC,
        target_format=NORM,
        doc_type="purchase_order",
        source_schema=idoc.idoc_po_schema(),
        target_schema=normalized.normalized_po_schema(),
        rules=[
            Field("control.idoc_number", "header.document_id"),
            Field("header.belnr", "header.po_number"),
            Field("control.created_at", "header.issued_at", functions.to_float),
            Compute("header.buyer_id", _sap_partner("AG")),
            Compute("header.seller_id", _sap_partner("LF")),
            Field("header.curcy", "header.currency"),
            Field("header.zterm", "header.payment_terms", default=""),
            Each(
                "items",
                "lines",
                [
                    Field("posex", "line_no", functions.to_int),
                    Field("matnr", "sku"),
                    Field("arktx", "description", default=""),
                    Field("menge", "quantity", functions.to_float),
                    Field("vprei", "unit_price", functions.money),
                ],
            ),
            Field("summary.summe", "summary.total_amount", functions.money),
            Compute("summary.line_count", _len_of("items")),
        ],
    )
    poa_out = Mapping(
        name="normalized__to__sap-idoc/po_ack",
        source_format=NORM,
        target_format=idoc.SAP_IDOC,
        doc_type="po_ack",
        source_schema=normalized.normalized_poa_schema(),
        target_schema=idoc.idoc_poa_schema(),
        rules=[
            Compute(
                "control.idoc_number",
                _ctx_or_path("idoc_number", "header.document_id"),
            ),
            Const("control.idoc_type", "ORDERS05"),
            Const("control.message_type", "ORDRSP"),
            Compute(
                "control.sender_port",
                lambda document, context: context.get("sender_port", "SAPERP"),
                label="sender_port",
            ),
            Compute(
                "control.receiver_port",
                lambda document, context: context.get("receiver_port", "B2BHUB"),
                label="receiver_port",
            ),
            Field("header.issued_at", "control.created_at", functions.to_float),
            Field(
                "header.status", "header.action",
                functions.code_map(idoc.ACTION_BY_STATUS, "POA status"),
            ),
            Const("header.curcy", ""),
            Field("header.po_number", "header.belnr"),
            Const("header.bsart", "NB"),
            Const("header.zterm", ""),
            Compute("partners", _sap_partners, label="sap_partners"),
            Each(
                "lines",
                "items",
                [
                    Field("line_no", "posex", functions.to_int),
                    Field("quantity", "menge", functions.to_float),
                    Field("sku", "matnr"),
                    Field(
                        "status", "action",
                        functions.code_map(idoc.ITEM_ACTION_BY_STATUS, "line status"),
                    ),
                ],
            ),
            Field("summary.accepted_amount", "summary.summe", functions.money),
        ],
    )
    poa_in = Mapping(
        name="sap-idoc__to__normalized/po_ack",
        source_format=idoc.SAP_IDOC,
        target_format=NORM,
        doc_type="po_ack",
        source_schema=idoc.idoc_poa_schema(),
        target_schema=normalized.normalized_poa_schema(),
        rules=[
            Field("control.idoc_number", "header.document_id"),
            Field("header.belnr", "header.po_number"),
            Field("control.created_at", "header.issued_at", functions.to_float),
            Compute("header.buyer_id", _sap_partner("AG")),
            Compute("header.seller_id", _sap_partner("LF")),
            Field(
                "header.action", "header.status",
                functions.code_map(idoc.STATUS_BY_ACTION, "IDoc action"),
            ),
            Each(
                "items",
                "lines",
                [
                    Field("posex", "line_no", functions.to_int),
                    Field("matnr", "sku"),
                    Field(
                        "action", "status",
                        functions.code_map(idoc.STATUS_BY_ITEM_ACTION, "IDoc item action"),
                    ),
                    Field("menge", "quantity", functions.to_float),
                ],
            ),
            Field("summary.summe", "summary.accepted_amount", functions.money),
        ],
    )
    return [po_out, po_in, poa_out, poa_in]


# ---------------------------------------------------------------------------
# Oracle OIF
# ---------------------------------------------------------------------------


def _oracle_mappings() -> list[Mapping]:
    po_out = Mapping(
        name="normalized__to__oracle-oif/purchase_order",
        source_format=NORM,
        target_format=oracle_oif.ORACLE_OIF,
        doc_type="purchase_order",
        source_schema=normalized.normalized_po_schema(),
        target_schema=oracle_oif.oif_po_schema(),
        rules=[
            Field("header.document_id", "header.interface_header_id"),
            Field("header.po_number", "header.document_num"),
            Field("header.currency", "header.currency_code"),
            Field("header.buyer_id", "header.buyer_org"),
            Field("header.seller_id", "header.vendor_org"),
            Field("header.payment_terms", "header.terms", default=""),
            Field("summary.total_amount", "header.total_amount", functions.money),
            Field("header.issued_at", "header.creation_date", functions.to_float),
            Each(
                "lines",
                "lines",
                [
                    Field("line_no", "line_num", functions.to_int),
                    Field("sku", "item_id"),
                    Field("description", "item_description", default=""),
                    Field("quantity", "quantity", functions.to_float),
                    Field("unit_price", "unit_price", functions.money),
                ],
            ),
        ],
    )
    po_in = Mapping(
        name="oracle-oif__to__normalized/purchase_order",
        source_format=oracle_oif.ORACLE_OIF,
        target_format=NORM,
        doc_type="purchase_order",
        source_schema=oracle_oif.oif_po_schema(),
        target_schema=normalized.normalized_po_schema(),
        rules=[
            Field("header.interface_header_id", "header.document_id"),
            Field("header.document_num", "header.po_number"),
            Field("header.creation_date", "header.issued_at", functions.to_float),
            Field("header.buyer_org", "header.buyer_id"),
            Field("header.vendor_org", "header.seller_id"),
            Field("header.currency_code", "header.currency"),
            Field("header.terms", "header.payment_terms", default=""),
            Each(
                "lines",
                "lines",
                [
                    Field("line_num", "line_no", functions.to_int),
                    Field("item_id", "sku"),
                    Field("item_description", "description", default=""),
                    Field("quantity", "quantity", functions.to_float),
                    Field("unit_price", "unit_price", functions.money),
                ],
            ),
            Field("header.total_amount", "summary.total_amount", functions.money),
            Compute("summary.line_count", _len_of("lines")),
        ],
    )
    poa_out = Mapping(
        name="normalized__to__oracle-oif/po_ack",
        source_format=NORM,
        target_format=oracle_oif.ORACLE_OIF,
        doc_type="po_ack",
        source_schema=normalized.normalized_poa_schema(),
        target_schema=oracle_oif.oif_poa_schema(),
        rules=[
            Field("header.document_id", "header.interface_header_id"),
            Field("header.po_number", "header.document_num"),
            Field(
                "header.status", "header.acceptance_code",
                functions.code_map(oracle_oif.ACCEPTANCE_BY_STATUS, "POA status"),
            ),
            Field("header.buyer_id", "header.buyer_org"),
            Field("header.seller_id", "header.vendor_org"),
            Field("summary.accepted_amount", "header.accepted_amount", functions.money),
            Field("header.issued_at", "header.creation_date", functions.to_float),
            Each(
                "lines",
                "lines",
                [
                    Field("line_no", "line_num", functions.to_int),
                    Field("sku", "item_id"),
                    Field(
                        "status", "line_status",
                        functions.code_map(oracle_oif.LINE_STATUS_BY_STATUS, "line status"),
                    ),
                    Field("quantity", "quantity", functions.to_float),
                ],
            ),
        ],
    )
    poa_in = Mapping(
        name="oracle-oif__to__normalized/po_ack",
        source_format=oracle_oif.ORACLE_OIF,
        target_format=NORM,
        doc_type="po_ack",
        source_schema=oracle_oif.oif_poa_schema(),
        target_schema=normalized.normalized_poa_schema(),
        rules=[
            Field("header.interface_header_id", "header.document_id"),
            Field("header.document_num", "header.po_number"),
            Field("header.creation_date", "header.issued_at", functions.to_float),
            Field("header.buyer_org", "header.buyer_id"),
            Field("header.vendor_org", "header.seller_id"),
            Field(
                "header.acceptance_code", "header.status",
                functions.code_map(oracle_oif.STATUS_BY_ACCEPTANCE, "OIF acceptance code"),
            ),
            Each(
                "lines",
                "lines",
                [
                    Field("line_num", "line_no", functions.to_int),
                    Field("item_id", "sku"),
                    Field(
                        "line_status", "status",
                        functions.code_map(oracle_oif.STATUS_BY_LINE_STATUS, "OIF line status"),
                    ),
                    Field("quantity", "quantity", functions.to_float),
                ],
            ),
            Field("header.accepted_amount", "summary.accepted_amount", functions.money),
        ],
    )
    return [po_out, po_in, poa_out, poa_in]


# ---------------------------------------------------------------------------
# OAGIS fulfillment documents (ship notice, invoice)
# ---------------------------------------------------------------------------


def _oagis_fulfillment_mappings() -> list[Mapping]:
    asn_out = Mapping(
        name="normalized__to__oagis-bod/ship_notice",
        source_format=NORM,
        target_format=oagis.OAGIS,
        doc_type="ship_notice",
        source_schema=normalized.normalized_ship_notice_schema(),
        target_schema=oagis.oagis_asn_schema(),
        rules=[
            Compute("application_area.sender_id", _ctx_or_path("sender_id", "header.seller_id")),
            Compute(
                "application_area.receiver_id",
                _ctx_or_path("receiver_id", "header.buyer_id"),
            ),
            Field("header.issued_at", "application_area.creation_time", functions.to_float),
            Compute(
                "application_area.bod_id",
                _ctx_or_derived("bod_id", "BOD-ASN-", "header.shipment_id"),
            ),
            Field("header.document_id", "shipment_header.document_id"),
            Field("header.shipment_id", "shipment_header.shipment_id"),
            Field("header.po_number", "shipment_header.po_number"),
            Field("header.carrier", "shipment_header.carrier"),
            Field("summary.package_count", "shipment_header.package_count", functions.to_int),
            Each(
                "lines",
                "shipment_lines",
                [
                    Field("line_no", "line_num", functions.to_int),
                    Field("sku", "item_id"),
                    Field("quantity_shipped", "quantity_shipped", functions.to_float),
                ],
            ),
        ],
    )
    asn_in = Mapping(
        name="oagis-bod__to__normalized/ship_notice",
        source_format=oagis.OAGIS,
        target_format=NORM,
        doc_type="ship_notice",
        source_schema=oagis.oagis_asn_schema(),
        target_schema=normalized.normalized_ship_notice_schema(),
        rules=[
            Field("shipment_header.document_id", "header.document_id"),
            Field("shipment_header.shipment_id", "header.shipment_id"),
            Field("shipment_header.po_number", "header.po_number"),
            Field("application_area.creation_time", "header.issued_at", functions.to_float),
            Field("application_area.receiver_id", "header.buyer_id"),
            Field("application_area.sender_id", "header.seller_id"),
            Field("shipment_header.carrier", "header.carrier"),
            Each(
                "shipment_lines",
                "lines",
                [
                    Field("line_num", "line_no", functions.to_int),
                    Field("item_id", "sku"),
                    Field("quantity_shipped", "quantity_shipped", functions.to_float),
                ],
            ),
            Field("shipment_header.package_count", "summary.package_count", functions.to_int),
        ],
    )
    invoice_out = Mapping(
        name="normalized__to__oagis-bod/invoice",
        source_format=NORM,
        target_format=oagis.OAGIS,
        doc_type="invoice",
        source_schema=normalized.normalized_invoice_schema(),
        target_schema=oagis.oagis_invoice_schema(),
        rules=[
            Compute("application_area.sender_id", _ctx_or_path("sender_id", "header.seller_id")),
            Compute(
                "application_area.receiver_id",
                _ctx_or_path("receiver_id", "header.buyer_id"),
            ),
            Field("header.issued_at", "application_area.creation_time", functions.to_float),
            Compute(
                "application_area.bod_id",
                _ctx_or_derived("bod_id", "BOD-INV-", "header.invoice_number"),
            ),
            Field("header.document_id", "invoice_header.document_id"),
            Field("header.invoice_number", "invoice_header.invoice_number"),
            Field("header.po_number", "invoice_header.po_number"),
            Field("header.currency", "invoice_header.currency"),
            Field("summary.subtotal", "invoice_header.subtotal", functions.money),
            Field("summary.tax", "invoice_header.tax", functions.money),
            Field("summary.total_due", "invoice_header.total_due", functions.money),
            Each(
                "lines",
                "invoice_lines",
                [
                    Field("line_no", "line_num", functions.to_int),
                    Field("sku", "item_id"),
                    Field("quantity", "quantity", functions.to_float),
                    Field("unit_price", "unit_price", functions.money),
                    Field("amount", "amount", functions.money),
                ],
            ),
        ],
    )
    invoice_in = Mapping(
        name="oagis-bod__to__normalized/invoice",
        source_format=oagis.OAGIS,
        target_format=NORM,
        doc_type="invoice",
        source_schema=oagis.oagis_invoice_schema(),
        target_schema=normalized.normalized_invoice_schema(),
        rules=[
            Field("invoice_header.document_id", "header.document_id"),
            Field("invoice_header.invoice_number", "header.invoice_number"),
            Field("invoice_header.po_number", "header.po_number"),
            Field("application_area.creation_time", "header.issued_at", functions.to_float),
            Field("application_area.receiver_id", "header.buyer_id"),
            Field("application_area.sender_id", "header.seller_id"),
            Field("invoice_header.currency", "header.currency"),
            Each(
                "invoice_lines",
                "lines",
                [
                    Field("line_num", "line_no", functions.to_int),
                    Field("item_id", "sku"),
                    Field("quantity", "quantity", functions.to_float),
                    Field("unit_price", "unit_price", functions.money),
                    Field("amount", "amount", functions.money),
                ],
            ),
            Field("invoice_header.subtotal", "summary.subtotal", functions.money),
            Field("invoice_header.tax", "summary.tax", functions.money),
            Field("invoice_header.total_due", "summary.total_due", functions.money),
        ],
    )
    return [asn_out, asn_in, invoice_out, invoice_in]


# ---------------------------------------------------------------------------
# EDI fulfillment documents (856 ship notice, 810 invoice)
# ---------------------------------------------------------------------------


def _edi_fulfillment_mappings() -> list[Mapping]:
    asn_out = Mapping(
        name="normalized__to__edi-x12/ship_notice",
        source_format=NORM,
        target_format=edi.EDI_X12,
        doc_type="ship_notice",
        source_schema=normalized.normalized_ship_notice_schema(),
        target_schema=edi.edi_asn_schema(),
        rules=[
            Compute("isa.sender_id", _ctx_or_path("sender_id", "header.seller_id")),
            Compute("isa.receiver_id", _ctx_or_path("receiver_id", "header.buyer_id")),
            Compute("isa.date", _str_of("header.issued_at")),
            Compute(
                "isa.control_number",
                _ctx_or_derived("control_number", "CN", "header.shipment_id"),
            ),
            Const("st.transaction_set", "856"),
            Compute("st.control_number", _ctx_or_derived("st_control", "0001", "header.shipment_id")),
            Const("bsn.purpose_code", "00"),
            Field("header.shipment_id", "bsn.shipment_id"),
            Compute("bsn.date", _str_of("header.issued_at")),
            Field("header.po_number", "prf.po_number"),
            Field("header.carrier", "td5.carrier"),
            Field("summary.package_count", "td1.package_count", functions.to_int),
            Each(
                "lines",
                "lines",
                [
                    Field("line_no", "line_no", functions.to_int),
                    Field("sku", "sku"),
                    Field("quantity_shipped", "quantity_shipped", functions.to_float),
                ],
            ),
            Compute("ctt.line_count", _len_of("lines")),
        ],
    )
    asn_in = Mapping(
        name="edi-x12__to__normalized/ship_notice",
        source_format=edi.EDI_X12,
        target_format=NORM,
        doc_type="ship_notice",
        source_schema=edi.edi_asn_schema(),
        target_schema=normalized.normalized_ship_notice_schema(),
        rules=[
            Compute("header.document_id", _derived_doc_id("ASN-DOC-", "bsn.shipment_id")),
            Field("bsn.shipment_id", "header.shipment_id"),
            Field("prf.po_number", "header.po_number"),
            Field("bsn.date", "header.issued_at", functions.to_float),
            Field("isa.receiver_id", "header.buyer_id"),
            Field("isa.sender_id", "header.seller_id"),
            Field("td5.carrier", "header.carrier"),
            Each(
                "lines",
                "lines",
                [
                    Field("line_no", "line_no", functions.to_int),
                    Field("sku", "sku"),
                    Field("quantity_shipped", "quantity_shipped", functions.to_float),
                ],
            ),
            Field("td1.package_count", "summary.package_count", functions.to_int),
        ],
    )
    invoice_out = Mapping(
        name="normalized__to__edi-x12/invoice",
        source_format=NORM,
        target_format=edi.EDI_X12,
        doc_type="invoice",
        source_schema=normalized.normalized_invoice_schema(),
        target_schema=edi.edi_invoice_schema(),
        rules=[
            Compute("isa.sender_id", _ctx_or_path("sender_id", "header.seller_id")),
            Compute("isa.receiver_id", _ctx_or_path("receiver_id", "header.buyer_id")),
            Compute("isa.date", _str_of("header.issued_at")),
            Compute(
                "isa.control_number",
                _ctx_or_derived("control_number", "CN", "header.invoice_number"),
            ),
            Const("st.transaction_set", "810"),
            Compute("st.control_number", _ctx_or_derived("st_control", "0001", "header.invoice_number")),
            Compute("big.date", _str_of("header.issued_at")),
            Field("header.invoice_number", "big.invoice_number"),
            Field("header.po_number", "big.po_number"),
            Field("header.currency", "cur.currency"),
            Each(
                "lines",
                "it1",
                [
                    Field("line_no", "line_no", functions.to_int),
                    Field("quantity", "quantity", functions.to_float),
                    Const("unit", "EA"),
                    Field("unit_price", "unit_price", functions.money),
                    Field("sku", "sku"),
                    Field("amount", "amount", functions.money),
                ],
            ),
            # X12 TDS carries the total in cents
            Field("summary.total_due", "tds.total_cents", functions.to_cents),
            Field("summary.subtotal", "amt_subtotal.subtotal", functions.money),
            Field("summary.tax", "amt_tax.tax", functions.money),
            Compute("ctt.line_count", _len_of("lines")),
        ],
    )
    invoice_in = Mapping(
        name="edi-x12__to__normalized/invoice",
        source_format=edi.EDI_X12,
        target_format=NORM,
        doc_type="invoice",
        source_schema=edi.edi_invoice_schema(),
        target_schema=normalized.normalized_invoice_schema(),
        rules=[
            Compute("header.document_id", _derived_doc_id("INV-DOC-", "big.invoice_number")),
            Field("big.invoice_number", "header.invoice_number"),
            Field("big.po_number", "header.po_number"),
            Field("big.date", "header.issued_at", functions.to_float),
            Field("isa.receiver_id", "header.buyer_id"),
            Field("isa.sender_id", "header.seller_id"),
            Field("cur.currency", "header.currency"),
            Each(
                "it1",
                "lines",
                [
                    Field("line_no", "line_no", functions.to_int),
                    Field("sku", "sku"),
                    Field("quantity", "quantity", functions.to_float),
                    Field("unit_price", "unit_price", functions.money),
                    Field("amount", "amount", functions.money),
                ],
            ),
            Field("amt_subtotal.subtotal", "summary.subtotal", functions.money),
            Field("amt_tax.tax", "summary.tax", functions.money),
            Field("tds.total_cents", "summary.total_due", functions.from_cents),
        ],
    )
    return [asn_out, asn_in, invoice_out, invoice_in]


# ---------------------------------------------------------------------------
# OAGIS quotation documents (RFQ, quote)
# ---------------------------------------------------------------------------


def _oagis_quotation_mappings() -> list[Mapping]:
    rfq_out = Mapping(
        name="normalized__to__oagis-bod/request_for_quote",
        source_format=NORM,
        target_format=oagis.OAGIS,
        doc_type="request_for_quote",
        source_schema=normalized.normalized_rfq_schema(),
        target_schema=oagis.oagis_rfq_schema(),
        rules=[
            Compute("application_area.sender_id", _ctx_or_path("sender_id", "header.buyer_id")),
            Compute(
                "application_area.receiver_id",
                _ctx_or_path("receiver_id", "header.seller_id"),
            ),
            Field("header.issued_at", "application_area.creation_time", functions.to_float),
            Compute(
                "application_area.bod_id",
                _ctx_or_derived("bod_id", "BOD-RFQ-", "header.rfq_number"),
            ),
            Field("header.document_id", "rfq_header.document_id"),
            Field("header.rfq_number", "rfq_header.rfq_number"),
            Field("header.respond_by", "rfq_header.respond_by", functions.to_float),
            Each(
                "lines",
                "rfq_lines",
                [
                    Field("line_no", "line_num", functions.to_int),
                    Field("sku", "item_id"),
                    Field("description", "item_description", default=""),
                    Field("quantity", "quantity", functions.to_float),
                ],
            ),
        ],
    )
    rfq_in = Mapping(
        name="oagis-bod__to__normalized/request_for_quote",
        source_format=oagis.OAGIS,
        target_format=NORM,
        doc_type="request_for_quote",
        source_schema=oagis.oagis_rfq_schema(),
        target_schema=normalized.normalized_rfq_schema(),
        rules=[
            Field("rfq_header.document_id", "header.document_id"),
            Field("rfq_header.rfq_number", "header.rfq_number"),
            Field("application_area.creation_time", "header.issued_at", functions.to_float),
            Field("application_area.sender_id", "header.buyer_id"),
            Field("application_area.receiver_id", "header.seller_id"),
            Field("rfq_header.respond_by", "header.respond_by", functions.to_float),
            Each(
                "rfq_lines",
                "lines",
                [
                    Field("line_num", "line_no", functions.to_int),
                    Field("item_id", "sku"),
                    Field("item_description", "description", default=""),
                    Field("quantity", "quantity", functions.to_float),
                ],
            ),
            Compute("summary.line_count", _len_of("rfq_lines")),
        ],
    )
    quote_out = Mapping(
        name="normalized__to__oagis-bod/quote",
        source_format=NORM,
        target_format=oagis.OAGIS,
        doc_type="quote",
        source_schema=normalized.normalized_quote_schema(),
        target_schema=oagis.oagis_quote_schema(),
        rules=[
            Compute("application_area.sender_id", _ctx_or_path("sender_id", "header.seller_id")),
            Compute(
                "application_area.receiver_id",
                _ctx_or_path("receiver_id", "header.buyer_id"),
            ),
            Field("header.issued_at", "application_area.creation_time", functions.to_float),
            Compute(
                "application_area.bod_id",
                _ctx_or_derived("bod_id", "BOD-QUO-", "header.quote_number"),
            ),
            Field("header.document_id", "quote_header.document_id"),
            Field("header.quote_number", "quote_header.quote_number"),
            Field("header.rfq_number", "quote_header.rfq_number"),
            Field("header.currency", "quote_header.currency"),
            Field("header.valid_until", "quote_header.valid_until", functions.to_float),
            Field("summary.total_amount", "quote_header.total_amount", functions.money),
            Each(
                "lines",
                "quote_lines",
                [
                    Field("line_no", "line_num", functions.to_int),
                    Field("sku", "item_id"),
                    Field("quantity", "quantity", functions.to_float),
                    Field("unit_price", "unit_price", functions.money),
                ],
            ),
        ],
    )
    quote_in = Mapping(
        name="oagis-bod__to__normalized/quote",
        source_format=oagis.OAGIS,
        target_format=NORM,
        doc_type="quote",
        source_schema=oagis.oagis_quote_schema(),
        target_schema=normalized.normalized_quote_schema(),
        rules=[
            Field("quote_header.document_id", "header.document_id"),
            Field("quote_header.quote_number", "header.quote_number"),
            Field("quote_header.rfq_number", "header.rfq_number"),
            Field("application_area.creation_time", "header.issued_at", functions.to_float),
            Field("application_area.receiver_id", "header.buyer_id"),
            Field("application_area.sender_id", "header.seller_id"),
            Field("quote_header.currency", "header.currency"),
            Field("quote_header.valid_until", "header.valid_until", functions.to_float),
            Each(
                "quote_lines",
                "lines",
                [
                    Field("line_num", "line_no", functions.to_int),
                    Field("item_id", "sku"),
                    Field("quantity", "quantity", functions.to_float),
                    Field("unit_price", "unit_price", functions.money),
                ],
            ),
            Field("quote_header.total_amount", "summary.total_amount", functions.money),
        ],
    )
    return [rfq_out, rfq_in, quote_out, quote_in]


def standard_mappings() -> list[Mapping]:
    """Return the expert mappings of the standard catalog: 20 PO/POA
    mappings (5 formats x 2 kinds x 2 directions), 8 fulfillment mappings
    (ship notice + invoice over OAGIS and EDI 856/810), and 4 quotation
    mappings (RFQ + quote over OAGIS)."""
    return [
        *_edi_mappings(),
        *_edi_fulfillment_mappings(),
        *_rosettanet_mappings(),
        *_oagis_mappings(),
        *_oagis_fulfillment_mappings(),
        *_oagis_quotation_mappings(),
        *_sap_mappings(),
        *_oracle_mappings(),
    ]


def build_standard_registry() -> TransformationRegistry:
    """Return a registry loaded with the full standard catalog.

    All mappings are pre-compiled so the first message through a fresh
    enterprise pays no path-lowering cost.
    """
    registry = TransformationRegistry()
    registry.register_all(standard_mappings())
    registry.precompile()
    return registry
