"""Conversion-function library for mapping rules.

Small, composable value converters used by the mapping catalog.  Factories
(`code_map`, `scaled`, ...) return converters; plain functions are
converters themselves.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import MappingError

__all__ = [
    "to_str",
    "to_int",
    "to_float",
    "money",
    "to_cents",
    "from_cents",
    "upper",
    "lower",
    "strip",
    "code_map",
    "scaled",
    "truncated",
    "chained",
]


def to_str(value: Any) -> str:
    """Render any scalar as a string."""
    return "" if value is None else str(value)


def to_int(value: Any) -> int:
    """Coerce a scalar to int (floats must be integral)."""
    if isinstance(value, bool):
        raise MappingError(f"cannot convert bool {value!r} to int")
    if isinstance(value, int):
        return value
    as_float = float(value)
    if as_float != int(as_float):
        raise MappingError(f"non-integral value {value!r} where int required")
    return int(as_float)


def to_float(value: Any) -> float:
    """Coerce a scalar to float."""
    if isinstance(value, bool):
        raise MappingError(f"cannot convert bool {value!r} to float")
    return float(value)


def money(value: Any) -> float:
    """Coerce to float rounded to 2 decimals (currency amounts)."""
    return round(to_float(value), 2)


def to_cents(value: Any) -> int:
    """Currency amount -> integer cents (X12 TDS segments carry cents)."""
    return int(round(to_float(value) * 100))


def from_cents(value: Any) -> float:
    """Integer cents -> currency amount."""
    return round(to_float(value) / 100, 2)


def upper(value: Any) -> str:
    """Uppercase string conversion."""
    return to_str(value).upper()


def lower(value: Any) -> str:
    """Lowercase string conversion."""
    return to_str(value).lower()


def strip(value: Any) -> str:
    """Whitespace-stripped string conversion."""
    return to_str(value).strip()


def code_map(table: Mapping[Any, Any], label: str = "code") -> Callable[[Any], Any]:
    """Return a converter translating through a closed code table.

    Unknown codes raise :class:`MappingError` — semantic mismatches between
    formats must surface, not pass through silently.
    """
    frozen = dict(table)

    def convert(value: Any) -> Any:
        if value not in frozen:
            raise MappingError(f"unknown {label} {value!r}; known: {sorted(map(str, frozen))}")
        return frozen[value]

    convert.__name__ = f"code_map_{label}"
    return convert


def scaled(factor: float) -> Callable[[Any], float]:
    """Return a converter multiplying numeric values by ``factor``."""

    def convert(value: Any) -> float:
        return to_float(value) * factor

    convert.__name__ = f"scaled_{factor}"
    return convert


def truncated(width: int) -> Callable[[Any], str]:
    """Return a converter truncating strings to ``width`` characters
    (fixed-width back-end fields)."""

    def convert(value: Any) -> str:
        return to_str(value)[:width]

    convert.__name__ = f"truncated_{width}"
    return convert


def chained(*converters: Callable[[Any], Any]) -> Callable[[Any], Any]:
    """Return a converter applying ``converters`` left to right."""

    def convert(value: Any) -> Any:
        for converter in converters:
            value = converter(value)
        return value

    convert.__name__ = "chained_" + "_".join(
        getattr(converter, "__name__", "fn") for converter in converters
    )
    return convert
