"""Declarative field-mapping language for document transformations.

A :class:`Mapping` is a named, directed transformation between two document
layouts (``source_format -> target_format`` for one ``doc_type``).  It is a
list of rules applied in order:

* :class:`Field` — copy one leaf from a source path to a target path,
  optionally through a conversion function;
* :class:`Const` — set a target path to a constant;
* :class:`Compute` — set a target path from a function of the whole source
  document and the transformation context;
* :class:`Each` — map a source list to a target list, applying nested rules
  to each element (elements are addressed with paths relative to the item).

The *context* is a plain dict the caller (a binding, at runtime) supplies
for environmental values a pure field copy cannot know: control numbers,
logical timestamps, sender/receiver ids.  Rules never mutate the source
document.

Two application paths exist and must stay byte-identical (property-tested
against the whole catalog):

* ``Mapping.apply`` — the reference interpreter; every rule re-splits its
  path strings on every document;
* ``Mapping.compile()`` — lowers the rule list once into
  :class:`CompiledMapping`, whose rules hold pre-resolved
  :class:`~repro.documents.model.DocumentPath` accessors.  This is the
  per-message hot path the transformation registry uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Callable, Mapping as TypingMapping, Sequence

from repro.documents.model import Document, DocumentPath
from repro.documents.schema import DocumentSchema
from repro.errors import MappingError, TransformError

__all__ = [
    "Field",
    "Const",
    "Compute",
    "Each",
    "Mapping",
    "CompiledMapping",
    "MISSING",
    "rules_context_free",
]


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "MISSING"


MISSING = _Missing()

Context = TypingMapping[str, Any]
Converter = Callable[[Any], Any]
ComputeFn = Callable[[Document, Context], Any]


@dataclass(frozen=True)
class Field:
    """Copy ``source`` to ``target``, optionally converting the value.

    When the source path is absent: raise if ``required`` (the default),
    write ``default`` when one is given, otherwise skip the rule.
    """

    source: str
    target: str
    convert: Converter | None = None
    default: Any = MISSING
    required: bool = True

    def apply(self, source_doc: Document, target_doc: Document, context: Context) -> None:
        marker = object()
        value = source_doc.get(self.source, default=marker)
        if value is marker:
            if self.default is not MISSING:
                target_doc.set(self.target, self.default)
                return
            if self.required:
                raise MappingError(
                    f"source path {self.source!r} missing "
                    f"(mapping to {self.target!r})"
                )
            return
        if self.convert is not None:
            try:
                value = self.convert(value)
            except TransformError:
                raise
            except Exception as exc:
                raise MappingError(
                    f"converter failed on {self.source!r} -> {self.target!r}: {exc!r}"
                ) from exc
        target_doc.set(self.target, value)


@dataclass(frozen=True)
class Const:
    """Set ``target`` to the constant ``value``."""

    target: str
    value: Any

    def apply(self, source_doc: Document, target_doc: Document, context: Context) -> None:
        target_doc.set(self.target, self.value)


@dataclass(frozen=True)
class Compute:
    """Set ``target`` to ``fn(source_document, context)``.

    ``label`` names the computation in error messages; supply one whenever
    ``fn`` is a lambda.
    """

    target: str
    fn: ComputeFn
    label: str = ""

    def apply(self, source_doc: Document, target_doc: Document, context: Context) -> None:
        try:
            value = self.fn(source_doc, context)
        except TransformError:
            raise
        except Exception as exc:
            name = self.label or getattr(self.fn, "__name__", "<fn>")
            raise MappingError(
                f"compute {name!r} for target {self.target!r} failed: {exc!r}"
            ) from exc
        target_doc.set(self.target, value)


@dataclass(frozen=True)
class Each:
    """Map every element of a source list into a target list.

    ``rules`` are applied per element; their paths are relative to the
    element, which is wrapped as an anonymous sub-document.  The context of
    the per-item rules is extended with ``_index`` (0-based) and ``_ordinal``
    (1-based) so Compute rules can number lines.
    """

    source: str
    target: str
    rules: tuple[Any, ...] = ()
    min_items: int = 1

    def __init__(self, source: str, target: str, rules: Sequence[Any], min_items: int = 1):
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "rules", tuple(rules))
        object.__setattr__(self, "min_items", min_items)

    def apply(self, source_doc: Document, target_doc: Document, context: Context) -> None:
        items = source_doc.get(self.source, default=MISSING)
        if items is MISSING or not isinstance(items, list):
            raise MappingError(f"source path {self.source!r} is not a list")
        if len(items) < self.min_items:
            raise MappingError(
                f"source list {self.source!r} has {len(items)} item(s), "
                f"mapping requires at least {self.min_items}"
            )
        built: list[Any] = []
        for index, item in enumerate(items):
            if not isinstance(item, dict):
                raise MappingError(
                    f"{self.source}[{index}] is {type(item).__name__}, expected dict"
                )
            item_source = Document(source_doc.format_name, "item", item)
            item_target = Document(target_doc.format_name, "item", {})
            item_context = {**context, "_index": index, "_ordinal": index + 1}
            for rule in self.rules:
                rule.apply(item_source, item_target, item_context)
            built.append(item_target.data)
        target_doc.set(self.target, built)


Rule = Field | Const | Compute | Each


# ---------------------------------------------------------------------------
# Cacheability analysis (delegates to the shared effect analyzer)
# ---------------------------------------------------------------------------


def _function_reads_context(fn: Callable[..., Any]) -> bool:
    """Conservative static check: can ``fn(document, context)`` depend on
    ``context``?

    Thin wrapper over :func:`repro.verify.effects.analyze_function`, the
    shared bytecode effect analyzer both the transformation cache and the
    schema dataflow pass consume.  Anything the analysis cannot see
    through is treated as context-reading.
    """
    from repro.verify.effects import analyze_function

    return analyze_function(fn).reads_context


def rules_context_free(rules: Sequence[Rule]) -> bool:
    """True when no rule in the tree (recursing through Each) can read the
    transformation context — the static half of cacheability."""
    from repro.verify.effects import rules_read_context

    return not rules_read_context(rules)


# Sentinel for "source path absent" in compiled Field rules; private to this
# module so no document value can collide with it.
_ABSENT = object()

RuleRunner = Callable[[Document, Document, Context], None]


def _lower_rule(rule: Rule) -> RuleRunner:
    """Lower one rule into a closure over pre-compiled document paths.

    The closures replicate the interpreted ``apply`` methods exactly —
    same checks, same error messages — minus the per-document path
    re-parsing.
    """
    if isinstance(rule, Field):
        source_path = DocumentPath(rule.source)
        target_path = DocumentPath(rule.target)
        source_text, target_text = rule.source, rule.target
        convert, default, required = rule.convert, rule.default, rule.required

        def run_field(source_doc: Document, target_doc: Document, context: Context) -> None:
            value = source_doc.get(source_path, default=_ABSENT)
            if value is _ABSENT:
                if default is not MISSING:
                    target_doc.set(target_path, default)
                    return
                if required:
                    raise MappingError(
                        f"source path {source_text!r} missing "
                        f"(mapping to {target_text!r})"
                    )
                return
            if convert is not None:
                try:
                    value = convert(value)
                except TransformError:
                    raise
                except Exception as exc:
                    raise MappingError(
                        f"converter failed on {source_text!r} -> {target_text!r}: {exc!r}"
                    ) from exc
            target_doc.set(target_path, value)

        return run_field
    if isinstance(rule, Const):
        const_path = DocumentPath(rule.target)
        const_value = rule.value

        def run_const(source_doc: Document, target_doc: Document, context: Context) -> None:
            target_doc.set(const_path, const_value)

        return run_const
    if isinstance(rule, Compute):
        compute_path = DocumentPath(rule.target)
        compute_target, fn, label = rule.target, rule.fn, rule.label

        def run_compute(source_doc: Document, target_doc: Document, context: Context) -> None:
            try:
                value = fn(source_doc, context)
            except TransformError:
                raise
            except Exception as exc:
                name = label or getattr(fn, "__name__", "<fn>")
                raise MappingError(
                    f"compute {name!r} for target {compute_target!r} failed: {exc!r}"
                ) from exc
            target_doc.set(compute_path, value)

        return run_compute
    if isinstance(rule, Each):
        each_source_path = DocumentPath(rule.source)
        each_target_path = DocumentPath(rule.target)
        each_source, min_items = rule.source, rule.min_items
        item_rules = tuple(_lower_rule(nested) for nested in rule.rules)

        def run_each(source_doc: Document, target_doc: Document, context: Context) -> None:
            items = source_doc.get(each_source_path, default=MISSING)
            if items is MISSING or not isinstance(items, list):
                raise MappingError(f"source path {each_source!r} is not a list")
            if len(items) < min_items:
                raise MappingError(
                    f"source list {each_source!r} has {len(items)} item(s), "
                    f"mapping requires at least {min_items}"
                )
            built: list[Any] = []
            for index, item in enumerate(items):
                if not isinstance(item, dict):
                    raise MappingError(
                        f"{each_source}[{index}] is {type(item).__name__}, expected dict"
                    )
                item_source = Document(source_doc.format_name, "item", item)
                item_target = Document(target_doc.format_name, "item", {})
                item_context = {**context, "_index": index, "_ordinal": index + 1}
                for nested in item_rules:
                    nested(item_source, item_target, item_context)
                built.append(item_target.data)
            target_doc.set(each_target_path, built)

        return run_each
    raise MappingError(f"cannot compile rule of type {type(rule).__name__}")


class CompiledMapping:
    """A :class:`Mapping` lowered to pre-resolved path accessors.

    Built once by :meth:`Mapping.compile`; ``apply`` has the same contract
    (and raises the same errors) as the interpreted ``Mapping.apply``, but
    no rule re-parses a path string per document.
    """

    __slots__ = ("mapping", "name", "cacheable", "_rules", "_batch")

    def __init__(self, mapping: "Mapping"):
        self.mapping = mapping
        self.name = mapping.name
        from repro.verify.effects import rules_cacheable

        #: static cacheability: a post hook or a compute whose effects are
        #: not provably pure (context reads, or bytecode the analyzer
        #: cannot see) means identical documents may transform
        #: differently, so the result cache must be bypassed.  The shared
        #: effect analyzer sees through ``functools.partial`` and bound
        #: methods, so partial applications of pure document readers stay
        #: cacheable.  Computed once, at compile.
        self.cacheable: bool = mapping.post is None and rules_cacheable(
            mapping.rules
        )
        self._rules: tuple[RuleRunner, ...] = tuple(
            _lower_rule(rule) for rule in mapping.rules
        )
        # Lazily built batch program (False = vectorization unsupported).
        self._batch: Any = None

    def apply(self, document: Document, context: Context | None = None) -> Document:
        """Transform ``document`` exactly as the interpreted path would."""
        mapping = self.mapping
        context = context or {}
        if document.format_name != mapping.source_format:
            raise TransformError(
                f"mapping {mapping.name!r} expects format {mapping.source_format!r}, "
                f"got {document.format_name!r}"
            )
        if document.doc_type != mapping.doc_type:
            raise TransformError(
                f"mapping {mapping.name!r} expects doc_type {mapping.doc_type!r}, "
                f"got {document.doc_type!r}"
            )
        if mapping.source_schema is not None:
            mapping.source_schema.validate(document)
        target = Document(mapping.target_format, mapping.doc_type, {})
        for rule in self._rules:
            rule(document, target, context)
        if mapping.post is not None:
            mapping.post(document, target, context)
        if mapping.target_schema is not None:
            mapping.target_schema.validate(target)
        return target

    def apply_batch(
        self, documents: Sequence[Document], context: Context | None = None
    ) -> list[Document]:
        """Transform a vector of documents; equivalent to
        ``[self.apply(d, context) for d in documents]`` byte-for-byte.

        The first call lowers the mapping into a columnar batch program
        (see :mod:`repro.transform.batch`): one schema-spec walk and one
        rule-runner dispatch loop for the whole vector instead of per
        document.  Mappings the vectorizer cannot prove equivalent run
        the per-document loop instead.
        """
        documents = list(documents)
        if not documents:
            return []
        program = self._batch
        if program is None:
            from repro.transform.batch import build_batch_program

            program = build_batch_program(self)
            self._batch = program if program is not None else False
        if program is None or program is False:
            return [self.apply(document, context) for document in documents]
        return program.apply(documents, context)

    def __repr__(self) -> str:
        return f"CompiledMapping({self.name!r}, {len(self._rules)} rules)"


@dataclass
class Mapping:
    """A named transformation between two document layouts.

    :param name: unique id, conventionally ``"<source>__to__<target>/<doc_type>"``.
    :param source_format: format the input document must have.
    :param target_format: format of the produced document.
    :param doc_type: business document kind both sides share.
    :param rules: ordered mapping rules.
    :param source_schema: optional schema validated before mapping.
    :param target_schema: optional schema validated after mapping.
    :param post: optional ``fn(source_doc, target_doc, context)`` hook for
        adjustments the rule language cannot express.
    """

    name: str
    source_format: str
    target_format: str
    doc_type: str
    rules: list[Rule] = dataclass_field(default_factory=list)
    source_schema: DocumentSchema | None = None
    target_schema: DocumentSchema | None = None
    post: Callable[[Document, Document, Context], None] | None = None
    _compiled: CompiledMapping | None = dataclass_field(
        default=None, init=False, repr=False, compare=False
    )
    _compiled_rules: tuple[Rule, ...] | None = dataclass_field(
        default=None, init=False, repr=False, compare=False
    )

    _SCALAR_TYPES = frozenset({"str", "int", "float", "number", "bool"})

    def __post_init__(self) -> None:
        self._validate_targets()

    def compile(self) -> CompiledMapping:
        """Return the compiled form of this mapping (built once, cached).

        The cache is invalidated when the rule list is edited (rules are
        frozen, so edits replace rule objects).  The snapshot holds the
        rule objects themselves — a strong reference — and compares by
        identity, so a replaced rule can never false-hit by reusing a
        freed object's ``id()`` (the old ``tuple(map(id, ...))`` keying
        could).
        """
        snapshot = self._compiled_rules
        rules = self.rules
        if (
            self._compiled is None
            or snapshot is None
            or len(snapshot) != len(rules)
            or any(held is not current for held, current in zip(snapshot, rules))
        ):
            self._compiled = CompiledMapping(self)
            self._compiled_rules = tuple(rules)
        return self._compiled

    def _validate_targets(self) -> None:
        """Reject rules whose target paths contradict ``target_schema``.

        Two contradictions are decidable at construction time: a target
        path writing *below* a path the schema declares as a scalar, and an
        :class:`Each` rule (which always writes a list) targeting a path
        the schema declares as a non-list.  Both would fail on every
        document, so they are mapping bugs, not data bugs.

        The schema-shape questions are answered by the lowered field
        lattice of :mod:`repro.verify.dataflow` — one canonical
        interpretation of schema shapes shared with the dataflow pass.
        """
        if self.target_schema is None:
            return
        from repro.verify.dataflow import lower_schema

        lattice = lower_schema(self.target_schema)
        for index, rule in enumerate(self.rules):
            target = getattr(rule, "target", None)
            if target is None:
                continue
            conflict = lattice.scalar_ancestor(target)
            if conflict is not None:
                declared_path, type_name = conflict
                raise MappingError(
                    f"mapping {self.name!r} rule {index} "
                    f"({type(rule).__name__}) targets {target!r}, which "
                    f"writes below {declared_path!r} declared as "
                    f"{type_name} in schema {self.target_schema.name!r}"
                )
            if isinstance(rule, Each):
                state = lattice.fields.get(target)
                if state is not None and state.type_name != "list":
                    raise MappingError(
                        f"mapping {self.name!r} rule {index} (Each) targets "
                        f"{target!r}, declared as {state.type_name} (not list) "
                        f"in schema {self.target_schema.name!r}"
                    )

    def apply(self, document: Document, context: Context | None = None) -> Document:
        """Transform ``document`` and return the new target-format document."""
        context = context or {}
        if document.format_name != self.source_format:
            raise TransformError(
                f"mapping {self.name!r} expects format {self.source_format!r}, "
                f"got {document.format_name!r}"
            )
        if document.doc_type != self.doc_type:
            raise TransformError(
                f"mapping {self.name!r} expects doc_type {self.doc_type!r}, "
                f"got {document.doc_type!r}"
            )
        if self.source_schema is not None:
            self.source_schema.validate(document)
        target = Document(self.target_format, self.doc_type, {})
        for rule in self.rules:
            rule.apply(document, target, context)
        if self.post is not None:
            self.post(document, target, context)
        if self.target_schema is not None:
            self.target_schema.validate(target)
        return target

    def fingerprint(self) -> str:
        """Stable content hash over formats, rules and schemas.

        The counterpart of :meth:`Binding.fingerprint` for mappings.
        ``IntegrationModel.element_index`` summarizes a mapping by its
        rule *count*, which cannot see an in-place rule edit; incremental
        verification keys on this digest instead, so replacing one rule
        invalidates exactly the cached verdicts that depend on it.
        """
        from repro.verify.incremental import content_digest

        return content_digest(
            {
                "name": self.name,
                "source_format": self.source_format,
                "target_format": self.target_format,
                "doc_type": self.doc_type,
                "rules": list(self.rules),
                "source_schema": self.source_schema,
                "target_schema": self.target_schema,
                "post": self.post,
            }
        )

    def rule_count(self) -> int:
        """Total number of rules including those nested in Each (a
        complexity measure used by the model metrics)."""
        total = 0
        for rule in self.rules:
            total += 1
            if isinstance(rule, Each):
                total += len(rule.rules)
        return total

    def __repr__(self) -> str:
        return (
            f"Mapping({self.name!r}: {self.source_format} -> "
            f"{self.target_format} [{self.doc_type}], {self.rule_count()} rules)"
        )
