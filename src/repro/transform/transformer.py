"""Transformation registry and router.

The registry owns every :class:`~repro.transform.mapping.Mapping` deployed
in an enterprise and answers transformation requests:

* ``transform(document, target_format)`` — direct mapping when one is
  registered, otherwise routed **through the normalized format as a hub**
  (``wire -> normalized -> back-end``), which is exactly the paper's
  argument for a normalized format: with *n* formats you maintain ``2n``
  expert mappings instead of ``n*(n-1)`` pairwise ones (Section 4.2).

Application counters (`stats`) feed the transformation benchmarks.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Mapping as TypingMapping

from repro.documents.model import Document
from repro.documents.normalized import NORMALIZED
from repro.errors import ConfigurationError, NoRouteError
from repro.transform.mapping import Mapping

__all__ = ["TransformationRegistry"]


class TransformationRegistry:
    """A catalog of mappings keyed by ``(source_format, target_format, doc_type)``.

    :param hub_format: the pivot layout for two-step routing; the paper's
        normalized format by default.
    """

    def __init__(self, hub_format: str = NORMALIZED):
        self.hub_format = hub_format
        self._mappings: dict[tuple[str, str, str], Mapping] = {}
        self.stats: Counter[str] = Counter()
        #: bumped on every registration; binding plan caches key on it so a
        #: reconfigured registry invalidates every cached execution plan.
        self.version = 0
        self._route_cache: dict[tuple[str, str, str], tuple[Mapping, ...]] = {}

    # -- registration --------------------------------------------------------

    def register(self, mapping: Mapping) -> Mapping:
        """Register ``mapping``; duplicate routes are configuration bugs."""
        key = (mapping.source_format, mapping.target_format, mapping.doc_type)
        if key in self._mappings:
            raise ConfigurationError(
                f"a mapping for {key} is already registered "
                f"({self._mappings[key].name!r})"
            )
        self._mappings[key] = mapping
        self.version += 1
        self._route_cache.clear()
        return mapping

    def register_all(self, mappings: Iterable[Mapping]) -> None:
        """Register every mapping in ``mappings``."""
        for mapping in mappings:
            self.register(mapping)

    # -- lookup ---------------------------------------------------------------

    def find(self, source_format: str, target_format: str, doc_type: str) -> Mapping | None:
        """Return the direct mapping for the triple, or ``None``."""
        return self._mappings.get((source_format, target_format, doc_type))

    def route(self, source_format: str, target_format: str, doc_type: str) -> list[Mapping]:
        """Return the mapping chain from source to target (1 or 2 hops).

        Raises :class:`NoRouteError` when neither a direct mapping nor a
        hub route exists.  Successful resolutions are cached until the next
        registration.
        """
        key = (source_format, target_format, doc_type)
        cached = self._route_cache.get(key)
        if cached is not None:
            return list(cached)
        chain = self._resolve_route(source_format, target_format, doc_type)
        self._route_cache[key] = tuple(chain)
        return chain

    def _resolve_route(
        self, source_format: str, target_format: str, doc_type: str
    ) -> list[Mapping]:
        if source_format == target_format:
            return []
        direct = self.find(source_format, target_format, doc_type)
        if direct is not None:
            return [direct]
        inbound = self.find(source_format, self.hub_format, doc_type)
        outbound = self.find(self.hub_format, target_format, doc_type)
        if inbound is not None and outbound is not None:
            return [inbound, outbound]
        raise NoRouteError(
            f"no transformation route {source_format!r} -> {target_format!r} "
            f"for doc_type {doc_type!r}"
        )

    def formats(self) -> set[str]:
        """Return every format name appearing in a registered mapping."""
        names: set[str] = set()
        for source, target, _ in self._mappings:
            names.add(source)
            names.add(target)
        return names

    def mappings(self) -> list[Mapping]:
        """Return all registered mappings (for metrics and change analysis)."""
        return list(self._mappings.values())

    def __len__(self) -> int:
        return len(self._mappings)

    # -- execution -------------------------------------------------------------

    def transform(
        self,
        document: Document,
        target_format: str,
        context: TypingMapping[str, Any] | None = None,
    ) -> Document:
        """Transform ``document`` into ``target_format``.

        Identity when the document is already in the target format.
        """
        chain = self.route(document.format_name, target_format, document.doc_type)
        for mapping in chain:
            document = mapping.compile().apply(document, context)
            self.stats[mapping.name] += 1
        return document

    def precompile(self) -> int:
        """Compile every registered mapping eagerly; returns the count.

        Catalog construction calls this so the first message through a
        fresh registry pays no lowering cost.
        """
        for mapping in self._mappings.values():
            mapping.compile()
        return len(self._mappings)

    def applications(self) -> int:
        """Total number of mapping applications performed so far."""
        return sum(self.stats.values())
