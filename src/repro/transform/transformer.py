"""Transformation registry and router.

The registry owns every :class:`~repro.transform.mapping.Mapping` deployed
in an enterprise and answers transformation requests:

* ``transform(document, target_format)`` — direct mapping when one is
  registered, otherwise routed **through the normalized format as a hub**
  (``wire -> normalized -> back-end``), which is exactly the paper's
  argument for a normalized format: with *n* formats you maintain ``2n``
  expert mappings instead of ``n*(n-1)`` pairwise ones (Section 4.2).
* ``transform_batch(documents, target_format)`` — the same routes applied
  columnar: documents are grouped by (format, doc_type) and each group
  runs through the vectorized batch path
  (:meth:`~repro.transform.mapping.CompiledMapping.apply_batch`).

Resolved routes compile into cached :class:`RouteExecutor` objects, which
also consult the optional content-addressed result cache
(:meth:`enable_cache`): cacheable chains (a static property, computed at
compile time) are memoized on ``(content digest, chain fingerprints,
registry version)``; context-sensitive chains bypass the cache.

Application counters (`stats`) feed the transformation benchmarks; pass
``collect_stats=False`` to skip the per-application Counter update on
hot paths that do not need it.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Mapping as TypingMapping, Sequence

from repro.documents.model import Document
from repro.documents.normalized import NORMALIZED
from repro.errors import ConfigurationError, NoRouteError
from repro.transform.cache import TransformCache
from repro.transform.mapping import Mapping

__all__ = ["RouteExecutor", "TransformationRegistry"]


class RouteExecutor:
    """One resolved route, compiled and cache-aware.

    Built (and memoized) by :meth:`TransformationRegistry.executor`; holds
    the compiled mapping chain, the chain's fingerprint tuple (the mapping
    half of the cache key) and its static cacheability verdict.
    """

    __slots__ = ("registry", "route_label", "compiled", "names", "chain_key", "cacheable")

    def __init__(
        self,
        registry: "TransformationRegistry",
        key: tuple[str, str, str],
        chain: tuple[Mapping, ...],
    ):
        source_format, target_format, doc_type = key
        self.registry = registry
        self.route_label = f"{source_format}->{target_format}/{doc_type}"
        self.compiled = tuple(mapping.compile() for mapping in chain)
        self.names = tuple(compiled.name for compiled in self.compiled)
        self.chain_key = tuple(mapping.fingerprint() for mapping in chain)
        self.cacheable = all(compiled.cacheable for compiled in self.compiled)

    def _cache_key(self, document: Document) -> tuple:
        return (document.content_digest(), self.chain_key, self.registry.version)

    def apply(
        self, document: Document, context: TypingMapping[str, Any] | None = None
    ) -> Document:
        """Run the chain on one document, consulting the result cache.

        Cache hits still count as logical mapping applications in
        ``registry.stats`` — enabling the cache must not change what the
        engine counters report.
        """
        registry = self.registry
        cache = registry.cache
        use_cache = cache is not None and self.cacheable
        if use_cache:
            key = self._cache_key(document)
            hit = cache.lookup(key, self.route_label)
            if hit is not None:
                if registry.collect_stats:
                    stats = registry.stats
                    for name in self.names:
                        stats[name] += 1
                return hit
        elif cache is not None:
            cache.note_bypass(self.route_label)
        result = document
        if registry.collect_stats:
            stats = registry.stats
            for compiled in self.compiled:
                result = compiled.apply(result, context)
                stats[compiled.name] += 1
        else:
            for compiled in self.compiled:
                result = compiled.apply(result, context)
        if use_cache:
            cache.store(key, result, self.route_label)
        return result

    def apply_batch(
        self,
        documents: Sequence[Document],
        context: TypingMapping[str, Any] | None = None,
    ) -> list[Document]:
        """Run the chain columnar over ``documents`` (all of this route's
        source format and doc type), consulting the cache per document."""
        registry = self.registry
        cache = registry.cache
        use_cache = cache is not None and self.cacheable
        count = len(documents)
        results: list[Document | None] = [None] * count
        if use_cache:
            keys = [self._cache_key(document) for document in documents]
            miss_indexes = []
            missed_keys = set()
            deferred = []
            route = self.route_label
            for index in range(count):
                key = keys[index]
                if key in missed_keys:
                    # A duplicate of an earlier in-batch miss: sequential
                    # processing would find it cached by now, so serve it
                    # after the store pass (counting a hit, like sequential).
                    deferred.append(index)
                    continue
                hit = cache.lookup(key, route)
                if hit is not None:
                    results[index] = hit
                else:
                    missed_keys.add(key)
                    miss_indexes.append(index)
        else:
            if cache is not None:
                for _ in range(count):
                    cache.note_bypass(self.route_label)
            miss_indexes = list(range(count))
        if miss_indexes:
            vector = [documents[index] for index in miss_indexes]
            for compiled in self.compiled:
                vector = compiled.apply_batch(vector, context)
            for index, produced in zip(miss_indexes, vector):
                results[index] = produced
                if use_cache:
                    cache.store(keys[index], produced, self.route_label)
        if use_cache:
            for index in deferred:
                hit = cache.lookup(keys[index], self.route_label)
                if hit is None:
                    # Evicted between store and here (capacity < batch
                    # distinct count) — recompute and re-store, exactly
                    # what the sequential path would do on its miss.
                    hit = documents[index]
                    for compiled in self.compiled:
                        hit = compiled.apply(hit, context)
                    cache.store(keys[index], hit, self.route_label)
                results[index] = hit
        if registry.collect_stats:
            stats = registry.stats
            for name in self.names:
                stats[name] += count
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cached = "cacheable" if self.cacheable else "context-sensitive"
        return f"RouteExecutor({self.route_label!r}, {len(self.compiled)} hop(s), {cached})"


class TransformationRegistry:
    """A catalog of mappings keyed by ``(source_format, target_format, doc_type)``.

    :param hub_format: the pivot layout for two-step routing; the paper's
        normalized format by default.
    :param collect_stats: update the per-mapping application Counter on
        every transformation (the default).  Disable on hot paths where
        the Counter update itself is measurable.
    """

    def __init__(self, hub_format: str = NORMALIZED, collect_stats: bool = True):
        self.hub_format = hub_format
        self.collect_stats = collect_stats
        self._mappings: dict[tuple[str, str, str], Mapping] = {}
        self.stats: Counter[str] = Counter()
        #: bumped on every registration; binding plan caches and the result
        #: cache key on it so a reconfigured registry invalidates every
        #: cached execution plan and memoized result.
        self.version = 0
        #: optional content-addressed result cache (:meth:`enable_cache`).
        self.cache: TransformCache | None = None
        self._route_cache: dict[tuple[str, str, str], tuple[Mapping, ...]] = {}
        self._executors: dict[tuple[str, str, str], RouteExecutor] = {}

    # -- registration --------------------------------------------------------

    def register(self, mapping: Mapping) -> Mapping:
        """Register ``mapping``; duplicate routes are configuration bugs."""
        key = (mapping.source_format, mapping.target_format, mapping.doc_type)
        if key in self._mappings:
            raise ConfigurationError(
                f"a mapping for {key} is already registered "
                f"({self._mappings[key].name!r})"
            )
        self._mappings[key] = mapping
        self.version += 1
        self._route_cache.clear()
        self._executors.clear()
        if self.cache is not None:
            # The version bump already makes old keys unreachable; dropping
            # the entries too keeps them from squatting in the LRU.
            self.cache.clear()
        return mapping

    def register_all(self, mappings: Iterable[Mapping]) -> None:
        """Register every mapping in ``mappings``."""
        for mapping in mappings:
            self.register(mapping)

    # -- result cache --------------------------------------------------------

    def enable_cache(self, capacity: int = 4096) -> TransformCache:
        """Attach (or resize) the content-addressed result cache."""
        self.cache = TransformCache(capacity)
        return self.cache

    def disable_cache(self) -> None:
        """Detach the result cache (entries are dropped)."""
        self.cache = None

    def cache_stats(self) -> dict[str, Any]:
        """The cache's aggregate + per-route counters (empty dict when no
        cache is attached) — the registry stats surface for observability."""
        return self.cache.snapshot() if self.cache is not None else {}

    # -- lookup ---------------------------------------------------------------

    def find(self, source_format: str, target_format: str, doc_type: str) -> Mapping | None:
        """Return the direct mapping for the triple, or ``None``."""
        return self._mappings.get((source_format, target_format, doc_type))

    def route(
        self, source_format: str, target_format: str, doc_type: str
    ) -> tuple[Mapping, ...]:
        """Return the mapping chain from source to target (1 or 2 hops).

        Raises :class:`NoRouteError` when neither a direct mapping nor a
        hub route exists.  Successful resolutions are cached until the next
        registration; the cached tuple itself is returned (no per-call
        allocation), so callers must not assume a private list.
        """
        key = (source_format, target_format, doc_type)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        chain = tuple(self._resolve_route(source_format, target_format, doc_type))
        self._route_cache[key] = chain
        return chain

    def _resolve_route(
        self, source_format: str, target_format: str, doc_type: str
    ) -> list[Mapping]:
        if source_format == target_format:
            return []
        direct = self.find(source_format, target_format, doc_type)
        if direct is not None:
            return [direct]
        inbound = self.find(source_format, self.hub_format, doc_type)
        outbound = self.find(self.hub_format, target_format, doc_type)
        if inbound is not None and outbound is not None:
            return [inbound, outbound]
        raise NoRouteError(
            f"no transformation route {source_format!r} -> {target_format!r} "
            f"for doc_type {doc_type!r}"
        )

    def executor(
        self, source_format: str, target_format: str, doc_type: str
    ) -> RouteExecutor | None:
        """The compiled, cache-aware executor for a route; ``None`` for the
        identity route (document already in the target format).

        Executors are memoized alongside the route cache and dropped on
        registration, so a stale executor can never serve a reconfigured
        registry.
        """
        if source_format == target_format:
            return None
        key = (source_format, target_format, doc_type)
        executor = self._executors.get(key)
        if executor is None:
            executor = RouteExecutor(self, key, self.route(*key))
            self._executors[key] = executor
        return executor

    def formats(self) -> set[str]:
        """Return every format name appearing in a registered mapping."""
        names: set[str] = set()
        for source, target, _ in self._mappings:
            names.add(source)
            names.add(target)
        return names

    def mappings(self) -> list[Mapping]:
        """Return all registered mappings (for metrics and change analysis)."""
        return list(self._mappings.values())

    def __len__(self) -> int:
        return len(self._mappings)

    # -- execution -------------------------------------------------------------

    def transform(
        self,
        document: Document,
        target_format: str,
        context: TypingMapping[str, Any] | None = None,
    ) -> Document:
        """Transform ``document`` into ``target_format``.

        Identity when the document is already in the target format.
        """
        executor = self.executor(document.format_name, target_format, document.doc_type)
        if executor is None:
            return document
        return executor.apply(document, context)

    def transform_batch(
        self,
        documents: Sequence[Document],
        target_format: str,
        context: TypingMapping[str, Any] | None = None,
    ) -> list[Document]:
        """Transform a vector of documents into ``target_format``.

        Equivalent to ``[self.transform(d, target_format, context) for d
        in documents]``: documents are grouped by (format, doc_type) —
        preserving input order in the output — and each group runs through
        the columnar batch path.  If any group fails, the whole batch is
        re-run per document so the surfaced error (and which document it
        belongs to) matches the sequential path exactly.
        """
        documents = list(documents)
        if not documents:
            return []
        try:
            return self._transform_batch_grouped(documents, target_format, context)
        except Exception:
            return [
                self.transform(document, target_format, context)
                for document in documents
            ]

    def _transform_batch_grouped(
        self,
        documents: list[Document],
        target_format: str,
        context: TypingMapping[str, Any] | None,
    ) -> list[Document]:
        groups: dict[tuple[str, str], list[int]] = {}
        for index, document in enumerate(documents):
            groups.setdefault((document.format_name, document.doc_type), []).append(index)
        results: list[Document | None] = [None] * len(documents)
        for (format_name, doc_type), indexes in groups.items():
            executor = self.executor(format_name, target_format, doc_type)
            if executor is None:
                for index in indexes:
                    results[index] = documents[index]
                continue
            produced = executor.apply_batch(
                [documents[index] for index in indexes], context
            )
            for index, document in zip(indexes, produced):
                results[index] = document
        return results  # type: ignore[return-value]

    def precompile(self) -> int:
        """Compile every registered mapping eagerly; returns the count.

        Catalog construction calls this so the first message through a
        fresh registry pays no lowering cost.
        """
        for mapping in self._mappings.values():
            mapping.compile()
        return len(self._mappings)

    def applications(self) -> int:
        """Total number of mapping applications performed so far."""
        return sum(self.stats.values())
