"""Deployment-time static verification of integration models.

The paper's central argument is that B2B integration concepts must be
first-class so that tooling can analyze them *before* any message flows
(Section 5.2 lists analysis as a core benefit of explicit semantics).
This package is that tooling: it lints workflow types, bindings, mappings,
public processes, or a whole :class:`~repro.core.integration.IntegrationModel`
without executing anything, and reports findings as stable-coded
:class:`Diagnostic` records.

Code families::

    B2B1xx  workflow graph        (unreachable steps, dead/constant arcs,
                                   non-exhaustive XOR fan-outs)
    B2B2xx  expressions           (undeclared variables, unknown doc paths)
    B2B3xx  bindings & transform  (broken chains, dangling references,
                                   uncovered schema fields)
    B2B4xx  whole model           (unrouted protocols, orphaned processes,
                                   agreement integrity)

Entry points: ``repro lint`` on the CLI, ``IntegrationModel.verify()``
programmatically, and the scenario builders' ``verify=True`` opt-in.
"""

from repro.verify.binding_checks import (
    verify_binding,
    verify_mapping,
    verify_public_process,
)
from repro.verify.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
    at_or_above,
    count_by_severity,
    render_text,
    worst_severity,
)
from repro.verify.model_checks import verify_model
from repro.verify.workflow_checks import verify_workflow

__all__ = [
    "Diagnostic",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SEVERITY_INFO",
    "at_or_above",
    "count_by_severity",
    "render_text",
    "worst_severity",
    "verify_workflow",
    "verify_binding",
    "verify_mapping",
    "verify_public_process",
    "verify_model",
]
