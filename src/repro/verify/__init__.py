"""Deployment-time static verification of integration models.

The paper's central argument is that B2B integration concepts must be
first-class so that tooling can analyze them *before* any message flows
(Section 5.2 lists analysis as a core benefit of explicit semantics).
This package is that tooling: it lints workflow types, bindings, mappings,
public processes, or a whole :class:`~repro.core.integration.IntegrationModel`
without executing anything, and reports findings as stable-coded
:class:`Diagnostic` records.

Code families::

    B2B1xx  workflow graph        (unreachable steps, dead/constant arcs,
                                   non-exhaustive XOR fan-outs)
    B2B2xx  expressions           (undeclared variables, unknown doc paths)
    B2B3xx  bindings & transform  (broken chains, dangling references,
                                   uncovered schema fields)
    B2B4xx  whole model           (unrouted protocols, orphaned processes,
                                   agreement integrity)
    B2B5xx  conversations         (deadlock, unspecified reception, queue
                                   overflow, orphan messages, no terminal
                                   state — see :mod:`repro.verify.statespace`)
    B2B6xx  parallel races        (write/write and read/write conflicts in
                                   AND-parallel branches — see
                                   :mod:`repro.verify.race_checks`)
    B2B7xx  schema dataflow       (wrong output types, unwritten required
                                   fields, lossy conversions, dead rules,
                                   disagreeing intermediate schemas,
                                   provably-absent reads, unanalyzable
                                   computes — see :mod:`repro.verify.dataflow`
                                   and :mod:`repro.verify.effects`)

Entry points: ``repro lint`` on the CLI (``--deep`` enables the B2B5xx
conversation exploration and B2B6xx race analysis; ``--dataflow`` the
B2B7xx schema dataflow pass), ``IntegrationModel.verify()``
programmatically, and the scenario builders' ``verify=True`` opt-in.

Verification is *incremental*: every unit's verdict is keyed by a content
digest of exactly the elements it depends on (see
:mod:`repro.verify.incremental`), so ``repro lint --incremental`` and the
registry sweep (:mod:`repro.verify.registry`) re-verify only what changed.
"""

from repro.verify.binding_checks import (
    verify_binding,
    verify_mapping,
    verify_public_process,
)
from repro.verify.dataflow import (
    AbstractDocument,
    FieldState,
    RouteSpec,
    counterexample_document,
    iter_binding_routes,
    lower_schema,
    verify_dataflow,
)
from repro.verify.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
    at_or_above,
    count_by_severity,
    render_text,
    worst_severity,
)
from repro.verify.incremental import (
    IncrementalVerifier,
    ModelReport,
    VerificationCache,
    component_digests,
    content_digest,
    verification_digest,
    verify_unit,
)
from repro.verify.effects import (
    FunctionEffects,
    analyze_function,
    compute_effects,
    rules_cacheable,
)
from repro.verify.model_checks import verify_model
from repro.verify.race_checks import concurrent_step_pairs, verify_workflow_races
from repro.verify.registry import SweepReport, sweep_registry
from repro.verify.statespace import (
    DEFAULT_MAX_STATES,
    DEFAULT_QUEUE_BOUND,
    ExplorationResult,
    explore_pair,
    render_msc,
    verify_conversations,
)
from repro.verify.workflow_checks import verify_workflow

__all__ = [
    "Diagnostic",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SEVERITY_INFO",
    "at_or_above",
    "count_by_severity",
    "render_text",
    "worst_severity",
    "verify_workflow",
    "verify_binding",
    "verify_mapping",
    "verify_public_process",
    "verify_model",
    "DEFAULT_MAX_STATES",
    "DEFAULT_QUEUE_BOUND",
    "ExplorationResult",
    "explore_pair",
    "render_msc",
    "verify_conversations",
    "concurrent_step_pairs",
    "verify_workflow_races",
    "IncrementalVerifier",
    "ModelReport",
    "VerificationCache",
    "component_digests",
    "content_digest",
    "verification_digest",
    "verify_unit",
    "SweepReport",
    "sweep_registry",
    "AbstractDocument",
    "FieldState",
    "RouteSpec",
    "counterexample_document",
    "iter_binding_routes",
    "lower_schema",
    "verify_dataflow",
    "FunctionEffects",
    "analyze_function",
    "compute_effects",
    "rules_cacheable",
]
