"""Binding, mapping and public-process checks (B2B3xx).

Bindings are the place where format obligations concentrate: the inbound
chain must carry the wire (or back-end native) layout to the normalized
format, the outbound chain must carry normalized back out.  A transform
step whose source format cannot be routed to its target format is a
deployment bug the runtime would only discover on the first message —
these checks find it from the model alone, by *simulating the chain over
formats* instead of documents.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.binding import (
    KIND_CONSUME,
    KIND_PRODUCE,
    KIND_TRANSFORM,
    Binding,
    BindingStep,
)
from repro.core.public_process import (
    KIND_FROM_BINDING,
    KIND_PRODUCE,
    KIND_RECEIVE,
    KIND_SEND,
    KIND_TO_BINDING,
    PublicProcessDefinition,
)
from repro.errors import NoRouteError
from repro.transform.mapping import Compute, Const, Each, Field, Mapping
from repro.transform.transformer import TransformationRegistry
from repro.verify.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.integration import IntegrationModel

__all__ = ["verify_binding", "verify_mapping", "verify_public_process"]


# ---------------------------------------------------------------------------
# Bindings: B2B301 (broken chain), B2B302 (dangling endpoint references)
# ---------------------------------------------------------------------------


def verify_binding(
    binding: Binding, model: "IntegrationModel | None" = None
) -> list[Diagnostic]:
    """Lint one binding; ``model`` supplies the deployment context (the
    endpoint registries and the transformation catalog).  Without a model
    only the chain-local shape can be checked."""
    prefix = f"binding:{binding.name}"
    diagnostics: list[Diagnostic] = []
    if model is None:
        return diagnostics
    _check_endpoints(binding, model, prefix, diagnostics)
    inbound_docs, outbound_docs, inbound_start, outbound_start = _chain_context(
        binding, model
    )
    _check_chain(
        binding.inbound, "inbound", inbound_start, inbound_docs,
        model.transforms, prefix, diagnostics,
    )
    _check_chain(
        binding.outbound, "outbound", outbound_start, outbound_docs,
        model.transforms, prefix, diagnostics,
    )
    return diagnostics


def _check_endpoints(
    binding: Binding,
    model: "IntegrationModel",
    prefix: str,
    diagnostics: list[Diagnostic],
) -> None:
    def dangling(kind: str, name: str) -> None:
        diagnostics.append(
            Diagnostic(
                "B2B302",
                SEVERITY_ERROR,
                prefix,
                f"binding references {kind} {name!r}, which is not "
                "registered in the model",
                hint=f"register the {kind} or fix the binding",
            )
        )

    if binding.public_process and binding.public_process not in model.public_processes:
        dangling("public process", binding.public_process)
    if binding.application and binding.application not in model.applications:
        dangling("application", binding.application)
    if binding.private_process not in model.private_processes:
        dangling("private process", binding.private_process)


def _chain_context(
    binding: Binding, model: "IntegrationModel"
) -> tuple[list[str], list[str], str | None, str | None]:
    """Doc types and starting formats for the two chains.

    Protocol bindings: inbound starts at the public process's wire format
    and carries its ``to_binding`` doc types; outbound starts at the hub
    (normalized) format and carries the ``from_binding`` doc types.
    Application bindings: inbound starts at the application's native
    format, outbound at the hub, both carrying the private process's
    declared ``doc_types``.
    """
    hub = model.transforms.hub_format
    if binding.public_process:
        definition = model.public_processes.get(binding.public_process)
        if definition is None:
            return [], [], None, None
        inbound_docs = [
            step.doc_type
            for step in definition.steps
            if step.kind == KIND_TO_BINDING and step.doc_type
        ]
        outbound_docs = [
            step.doc_type
            for step in definition.steps
            if step.kind == KIND_FROM_BINDING and step.doc_type
        ]
        return inbound_docs, outbound_docs, definition.wire_format, hub
    native = model.applications.get(binding.application)
    workflow = model.private_processes.get(binding.private_process)
    doc_types = list((workflow.metadata.get("doc_types") if workflow else None) or [])
    return doc_types, doc_types, native, hub


def _check_chain(
    chain: list[BindingStep],
    direction: str,
    start_format: str | None,
    doc_types: list[str],
    transforms: TransformationRegistry,
    prefix: str,
    diagnostics: list[Diagnostic],
) -> None:
    if start_format is None or not doc_types:
        return
    for doc_type in doc_types:
        current: str | None = start_format
        for index, step in enumerate(chain):
            if step.kind == KIND_CONSUME:
                break
            if step.kind == KIND_PRODUCE:
                # the producer's output format is not statically known
                current = None
                continue
            if step.kind != KIND_TRANSFORM or current is None:
                continue
            try:
                transforms.route(current, step.target_format, doc_type)
            except NoRouteError:
                diagnostics.append(
                    Diagnostic(
                        "B2B301",
                        SEVERITY_ERROR,
                        f"{prefix}/{direction}[{index}]",
                        f"transform step {step.step_id!r} needs a route "
                        f"{current!r} -> {step.target_format!r} for doc_type "
                        f"{doc_type!r}, but the registry has none",
                        hint="register the missing mapping(s) or fix the "
                        "chain's formats",
                    )
                )
            current = step.target_format


# ---------------------------------------------------------------------------
# Mappings: B2B303 (required target fields unwritten), B2B304 (metadata
# disagrees with the attached schemas)
# ---------------------------------------------------------------------------


def verify_mapping(mapping: Mapping) -> list[Diagnostic]:
    """Lint one mapping against its attached schemas."""
    prefix = f"mapping:{mapping.name}"
    diagnostics: list[Diagnostic] = []
    _check_schema_metadata(mapping, prefix, diagnostics)
    _check_target_coverage(mapping, prefix, diagnostics)
    return diagnostics


def _check_schema_metadata(
    mapping: Mapping, prefix: str, diagnostics: list[Diagnostic]
) -> None:
    pairs = (
        ("source_schema", mapping.source_schema, "format_name", mapping.source_format),
        ("target_schema", mapping.target_schema, "format_name", mapping.target_format),
        ("source_schema", mapping.source_schema, "doc_type", mapping.doc_type),
        ("target_schema", mapping.target_schema, "doc_type", mapping.doc_type),
    )
    for role, schema, attribute, expected in pairs:
        if schema is None:
            continue
        actual = getattr(schema, attribute)
        if actual and actual != expected:
            diagnostics.append(
                Diagnostic(
                    "B2B304",
                    SEVERITY_ERROR,
                    prefix,
                    f"{role} {schema.name!r} declares {attribute} {actual!r} "
                    f"but the mapping declares {expected!r}",
                    hint="attach the schema matching the mapping's endpoints",
                )
            )


def _covered_paths(rules: tuple | list) -> set[str]:
    covered: set[str] = set()
    for rule in rules:
        if isinstance(rule, (Field, Const, Compute)):
            covered.add(rule.target)
        elif isinstance(rule, Each):
            covered.add(rule.target)
            covered.update(
                f"{rule.target}[].{nested}" for nested in _covered_paths(rule.rules)
            )
    return covered


def _is_covered(path: str, covered: set[str]) -> bool:
    return any(
        path == target or path.startswith(target + ".") or target.startswith(path + ".")
        for target in covered
    )


def _check_target_coverage(
    mapping: Mapping, prefix: str, diagnostics: list[Diagnostic]
) -> None:
    schema = mapping.target_schema
    if schema is None or mapping.post is not None:
        # a post hook can write fields the rule language cannot express;
        # coverage cannot be decided statically then
        return
    covered = _covered_paths(mapping.rules)
    for spec in schema.fields:
        if not spec.required:
            continue
        if not _is_covered(spec.path, covered):
            diagnostics.append(
                Diagnostic(
                    "B2B303",
                    SEVERITY_WARNING,
                    prefix,
                    f"no rule writes required target field {spec.path!r} "
                    f"of schema {schema.name!r}",
                    hint="add a Field/Const/Compute rule for the field or "
                    "mark it optional",
                )
            )
        if spec.type_name == "list" and spec.items is not None:
            for each in mapping.rules:
                if not isinstance(each, Each) or each.target != spec.path:
                    continue
                item_covered = _covered_paths(each.rules)
                for item_spec in spec.items.fields:
                    if item_spec.required and not _is_covered(
                        item_spec.path, item_covered
                    ):
                        diagnostics.append(
                            Diagnostic(
                                "B2B303",
                                SEVERITY_WARNING,
                                prefix,
                                f"Each rule for {spec.path!r} writes no "
                                f"required item field {item_spec.path!r} of "
                                f"schema {schema.name!r}",
                                hint="add a nested rule for the item field",
                            )
                        )


# ---------------------------------------------------------------------------
# Public processes: B2B305 (connection step without doc_type),
# B2B306 (no wire steps), B2B506 (no clean terminal state)
# ---------------------------------------------------------------------------


def verify_public_process(definition: PublicProcessDefinition) -> list[Diagnostic]:
    """Lint one public process definition in isolation."""
    prefix = f"public:{definition.name}"
    diagnostics: list[Diagnostic] = []
    _check_terminal_state(definition, prefix, diagnostics)
    for step in definition.steps:
        if step.kind in (KIND_TO_BINDING, KIND_FROM_BINDING) and not step.doc_type:
            diagnostics.append(
                Diagnostic(
                    "B2B305",
                    SEVERITY_INFO,
                    f"{prefix}/step:{step.step_id}",
                    f"connection step {step.step_id!r} carries no doc_type; "
                    "binding chain checks cannot cover it",
                    hint="declare the doc_type the connection step carries",
                )
            )
    if not any(step.kind in (KIND_SEND, KIND_RECEIVE) for step in definition.steps):
        diagnostics.append(
            Diagnostic(
                "B2B306",
                SEVERITY_WARNING,
                prefix,
                "public process has no send or receive step: it never "
                "exchanges a message with the partner",
                hint="add the wire steps or remove the definition",
            )
        )
    return diagnostics


def _check_terminal_state(
    definition: PublicProcessDefinition,
    prefix: str,
    diagnostics: list[Diagnostic],
) -> None:
    """B2B506: the step graph must end in a receive-less, send-less state.

    A public process is a strict step sequence, so its only terminal state
    is "after the last step".  That terminal is only quiescent if the last
    step neither consumes a document that nothing then hands over (a
    business ``receive`` or a ``from_binding``/``produce`` whose output is
    dropped on the floor) — otherwise the conversation's final document
    silently disappears at the very step that obtained it.  Protocol-level
    acknowledgements are exempt: a trailing ``receive`` marked with
    ``params={"ack": True}`` closes the exchange by design.
    """
    if not definition.steps:
        return
    last = definition.steps[-1]
    dropped: str | None = None
    if last.kind == KIND_RECEIVE and not (last.params or {}).get("ack"):
        dropped = "received from the wire"
    elif last.kind == KIND_FROM_BINDING:
        dropped = "fetched from the binding"
    elif last.kind == KIND_PRODUCE:
        dropped = "produced"
    if dropped is None:
        return
    diagnostics.append(
        Diagnostic(
            "B2B506",
            SEVERITY_WARNING,
            f"{prefix}/step:{last.step_id}",
            f"no terminal (receive-less, send-less) end state: the final "
            f"step {last.step_id!r} leaves the document it {dropped} "
            "unconsumed, so the conversation ends with work in flight",
            hint="forward the document (to_binding/send) after the final "
            "consuming step, or mark a trailing acknowledgement receive "
            "with params={'ack': True}",
        )
    )
